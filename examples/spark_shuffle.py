"""Spark-style shuffle compression: the paper's end-to-end motivation.

Models an analytics job whose shuffle blocks are compressed either in
software (stealing executor CPU) or on the NX accelerator, then shows
the per-stage and end-to-end effect — the experiment behind the
abstract's 23% TPC-DS claim.

Run:  python examples/spark_shuffle.py
"""

from __future__ import annotations

from repro.core.metrics import Table, human_bytes
from repro.nx.params import POWER9, Z15
from repro.workloads.spark import SparkJobModel, Stage, tpcds_like_profile


def custom_job() -> list[Stage]:
    """A small ETL-ish job you can edit: (name, cpu core-s, bytes...)."""
    gb = 10 ** 9
    return [
        Stage("ingest-parse", 60.0, int(0.8 * gb), 0),
        Stage("repartition", 30.0, int(0.8 * gb), int(1.5 * gb)),
        Stage("aggregate", 80.0, int(0.1 * gb), int(0.7 * gb),
              spill_bytes=int(0.2 * gb)),
        Stage("write-parquet", 40.0, int(0.3 * gb), int(0.1 * gb)),
    ]


def show(job_name: str, model: SparkJobModel, stages: list[Stage]) -> None:
    result = model.run(stages)
    table = Table(headers=["stage", "sw s", "NX s", "gain"])
    for timing in result.timings:
        table.add(timing.stage.name, timing.software_seconds,
                  timing.offload_seconds, timing.speedup)
    table.add("TOTAL", result.software_seconds, result.offload_seconds,
              result.speedup)
    print(table.render(
        f"{job_name} on {model.machine.name} "
        f"({model.executor_cores} cores)"))
    print(f"codec share of executor CPU: {result.codec_share:.1%}; "
          f"end-to-end gain: {result.speedup - 1:.1%}\n")


def main() -> None:
    total_shuffle = sum(s.shuffle_write_bytes
                        for s in tpcds_like_profile())
    print(f"TPC-DS-like profile shuffles "
          f"{human_bytes(total_shuffle)} per query run\n")

    show("TPC-DS-like job", SparkJobModel(machine=POWER9),
         tpcds_like_profile())
    show("custom ETL job", SparkJobModel(machine=POWER9), custom_job())
    show("custom ETL job", SparkJobModel(machine=Z15), custom_job())


if __name__ == "__main__":
    main()
