"""Quickstart: compress and decompress through the accelerator model.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import gzip

from repro import NxGzip
from repro.core.metrics import human_bytes
from repro.workloads.generators import generate


def main() -> None:
    # Something realistic to compress: 256 KB of JSON event records.
    data = generate("json_records", 256 * 1024, seed=1)

    # Open a session on a modelled POWER9 chip.  This allocates a VAS
    # send window, exactly like the production user-space library.
    with NxGzip("POWER9") as session:
        compressed = session.compress(data, strategy="auto", fmt="gzip")
        restored = session.decompress(compressed.data, fmt="gzip")

        assert restored.data == data
        # The output is a standard gzip member: any consumer works.
        assert gzip.decompress(compressed.data) == data

        ratio = len(data) / compressed.nbytes
        gbps = (len(data) / 1e9) / compressed.modelled_seconds
        print(f"input:            {human_bytes(len(data))}")
        print(f"compressed:       {human_bytes(compressed.nbytes)} "
              f"(ratio {ratio:.2f})")
        print(f"modelled time:    {compressed.modelled_seconds * 1e6:.1f} us"
              f"  ({gbps:.2f} GB/s end-to-end)")
        print(f"requests issued:  {session.stats.requests}")
        print(f"faults handled:   {session.stats.faults}")

    # The same API runs the z15 machine model (synchronous DFLTCC).
    with NxGzip("z15") as session:
        compressed = session.compress(data)
        gbps = (len(data) / 1e9) / compressed.modelled_seconds
        print(f"z15 modelled:     {compressed.modelled_seconds * 1e6:.1f} us"
              f"  ({gbps:.2f} GB/s end-to-end)")


if __name__ == "__main__":
    main()
