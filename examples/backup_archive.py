"""Backup archiving: a file set through the accelerator, end to end.

The storage/backup use case from the paper's introduction: compress a
directory's worth of files into a multi-member gzip archive.  The
compressibility analyzer routes each file (skip already-compressed
media, pick a Huffman strategy for the rest); the session accounts
modelled time; the archive verifies against stdlib gzip.

Run:  python examples/backup_archive.py
"""

from __future__ import annotations

import gzip as stdgzip

from repro import NxGzip, analyze
from repro.core.metrics import Table, human_bytes
from repro.workloads.filesets import (
    FileSetSpec,
    make_fileset,
    total_bytes,
)


def main() -> None:
    fileset = make_fileset(FileSetSpec(files=40, seed=7))
    original = total_bytes(fileset)
    print(f"file set: {len(fileset)} files, {human_bytes(original)}\n")

    archive = bytearray()
    skipped: list[str] = []
    per_ext: dict[str, list[float]] = {}

    with NxGzip("POWER9") as session:
        for name, data in sorted(fileset.items()):
            report = analyze(data)
            ext = name[name.rfind("."):]
            if not report.worth_compressing:
                skipped.append(name)
                archive += stdgzip.compress(data, 0)  # stored members
                continue
            result = session.compress(
                data, strategy=report.recommended.value, fmt="gzip")
            archive += result.data
            per_ext.setdefault(ext, []).append(len(data) / result.nbytes)

        stats = session.stats

    table = Table(headers=["type", "files", "mean ratio"])
    for ext, ratios in sorted(per_ext.items()):
        table.add(ext, len(ratios), sum(ratios) / len(ratios))
    print(table.render("per-type compression (accelerated members)"))
    print(f"\nskipped as incompressible: {len(skipped)} files "
          f"({', '.join(skipped[:3])}...)")
    print(f"archive: {human_bytes(original)} -> "
          f"{human_bytes(len(archive))} "
          f"(x{original / len(archive):.2f})")
    print(f"modelled accelerator time: {stats.modelled_seconds * 1e3:.2f} ms"
          f" for {stats.requests} requests")

    restored = stdgzip.decompress(bytes(archive))
    expected = b"".join(data for _name, data in sorted(fileset.items()))
    print(f"archive verifies with stdlib gzip: {restored == expected}")


if __name__ == "__main__":
    main()
