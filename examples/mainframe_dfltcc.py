"""z15 DFLTCC: driving the accelerator with a synchronous instruction.

On z15 there is no driver, no queue and no interrupt: software issues
DFLTCC in a loop, re-issuing on CC=3 (CPU-determined completion).  This
example walks the instruction-level protocol — QAF, GDHT, chunked CMPR
with the parameter-block continuation state, and XPND — and compares
the invocation cost against the POWER9 paste/poll path.

Run:  python examples/mainframe_dfltcc.py
"""

from __future__ import annotations

import zlib

from repro.core.metrics import Table, human_bytes
from repro.nx.params import POWER9
from repro.nx.z15 import (
    ConditionCode,
    Dfltcc,
    ParameterBlock,
    dfltcc_compress,
    dfltcc_expand,
)
from repro.perf.timing import OffloadTimingModel
from repro.workloads.generators import generate


def instruction_walkthrough() -> None:
    data = generate("log_lines", 300000, seed=12)
    facility = Dfltcc(processing_quantum=65536)

    print("QAF ->", sorted(f.name for f
                           in facility.query_available_functions()))

    block = ParameterBlock()
    facility.generate_dht(block, data[:4096])
    print(f"GDHT -> strategy={block.dht_strategy.value}")

    out = bytearray()
    offset = 0
    issue = 0
    while True:
        result = facility.compress(block, data[offset:])
        out += result.produced
        offset += result.consumed
        issue += 1
        print(f"CMPR #{issue}: CC={result.cc.name} consumed="
              f"{human_bytes(result.consumed)} "
              f"produced={human_bytes(len(result.produced))} "
              f"(continuation={block.continuation})")
        if result.cc is ConditionCode.DONE:
            break

    assert zlib.decompress(bytes(out), -15) == data
    assert block.check_value == zlib.crc32(data)
    print(f"stream valid; CRC in parameter block matches "
          f"({block.check_value:#010x})\n")

    restored, _seconds = dfltcc_expand(bytes(out))
    assert restored == data
    print(f"XPND restored {human_bytes(len(restored))}\n")


def invocation_cost_comparison() -> None:
    p9 = OffloadTimingModel(POWER9)
    table = Table(headers=["buffer", "P9 paste/poll us", "z15 DFLTCC us",
                           "gain"])
    for size in (4096, 65536, 1 << 20):
        data = generate("json_records", size, seed=13)
        _stream, z15_seconds, _i = dfltcc_compress(data)
        p9_seconds = p9.offload_latency(size).total
        table.add(human_bytes(size), p9_seconds * 1e6, z15_seconds * 1e6,
                  p9_seconds / z15_seconds)
    print(table.render("invocation path: async window vs sync instruction"))
    print("(small buffers: the sync path wins far beyond the 2x "
          "engine-rate ratio)")


def main() -> None:
    instruction_walkthrough()
    invocation_cost_comparison()


if __name__ == "__main__":
    main()
