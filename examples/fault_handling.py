"""Page-fault handling: the touch-and-resubmit protocol, observable.

The accelerator translates user addresses through the nest MMU; pages
can be non-resident at any time.  This example injects translation
faults and walks through exactly what the driver does about them —
the CSB condition codes, the page touches, the resubmissions, and the
last-resort software fallback.

Run:  python examples/fault_handling.py
"""

from __future__ import annotations

from repro.core.metrics import Table
from repro.nx.accelerator import NxAccelerator
from repro.nx.params import POWER9
from repro.sysstack.crb import CcCode, Op
from repro.sysstack.driver import NxDriver
from repro.sysstack.mmu import AddressSpace, FaultInjector
from repro.workloads.generators import generate


def single_fault_walkthrough() -> None:
    """Manually inject one fault and watch the protocol steps."""
    space = AddressSpace()
    accel = NxAccelerator(POWER9)
    driver = NxDriver(accel, space)
    driver.open()
    data = generate("markov_text", 32768, seed=2)

    # Build the job, then page out the source before the engine runs.
    source, target, csb_va = driver.prepare_buffers(data)
    space.page_out(source.address)

    from repro.sysstack.crb import Crb, FunctionCode

    crb = Crb(function=FunctionCode(op=Op.COMPRESS),
              source=source, target=target, csb_address=csb_va)
    outcome = accel.execute(crb, space)
    print(f"1. engine hits the fault:  CC={outcome.csb.cc.name} "
          f"addr=0x{outcome.csb.fault_address:x}")

    space.touch(outcome.csb.fault_address)
    print("2. driver touches the page (OS makes it resident)")

    outcome = accel.execute(crb, space)
    print(f"3. resubmitted job:        CC={outcome.csb.cc.name} "
          f"wrote {outcome.csb.target_written} bytes\n")
    assert outcome.csb.cc is CcCode.SUCCESS


def fault_rate_sweep() -> None:
    data = generate("json_records", 262144, seed=4)
    table = Table(headers=["fault prob", "submissions", "faults",
                           "time us", "fallback"])
    seeds = {0.0: 0, 0.05: 6, 0.25: 9, 1.0: 0}
    for prob in (0.0, 0.05, 0.25, 1.0):
        space = AddressSpace(
            fault_injector=FaultInjector(prob, seed=seeds[prob]))
        driver = NxDriver(NxAccelerator(POWER9), space, max_retries=20)
        driver.open()
        result = driver.run(Op.COMPRESS, data)
        table.add(prob, result.stats.submissions,
                  result.stats.translation_faults,
                  result.stats.elapsed_seconds * 1e6,
                  str(result.stats.fallback_to_software))
        # Output is correct no matter which path produced it.
        import zlib

        assert zlib.decompress(result.output, -15) == data
    print(table.render("driver behaviour vs injected fault rate"))
    print("(prob=1.0 exhausts retries -> software fallback, as in libnxz)")


def main() -> None:
    single_fault_walkthrough()
    fault_rate_sweep()


if __name__ == "__main__":
    main()
