"""Storage-tier compression service: offload policy + shared-engine load.

A storage node compresses pages before writing them out.  This example
uses the offload advisor to route requests (hardware vs software by
size), then pushes a realistic request mix through the queueing model to
see how latency behaves as the node approaches the engine's capacity —
the sharing story of the paper's system integration section.

Run:  python examples/storage_tier.py
"""

from __future__ import annotations

from repro import NxGzip, OffloadAdvisor, Route
from repro.core.metrics import Table, human_bytes
from repro.nx.params import POWER9
from repro.perf.queueing import AcceleratorQueueSim
from repro.workloads.generators import generate
from repro.workloads.traces import bimodal_size


def routing_demo() -> None:
    advisor = OffloadAdvisor(POWER9)
    table = Table(headers=["request", "route", "hw us", "sw us", "gain"])
    for size in (512, 4096, 65536, 1 << 20, 16 << 20):
        rec = advisor.recommend(size)
        table.add(human_bytes(size), rec.route.value,
                  rec.hw_latency_s * 1e6, rec.sw_latency_s * 1e6,
                  rec.gain)
    print(table.render("offload routing (zlib -6 equivalent)"))
    print(f"break-even: {human_bytes(advisor.break_even_bytes())}\n")


def congestion_demo() -> None:
    """What a congested engine does to the advisor's decision."""
    advisor = OffloadAdvisor(POWER9)
    rec = advisor.recommend(65536, queue_wait_s=0.0)
    busy = advisor.recommend(65536, queue_wait_s=5e-3)
    print("64 KB request, idle engine:      ->", rec.route.value)
    print("64 KB request, 5 ms queue wait:  ->", busy.route.value, "\n")
    assert rec.route is Route.HARDWARE


def load_demo() -> None:
    sim = AcceleratorQueueSim(
        POWER9, engines=1, seed=3,
        size_sampler=bimodal_size(8192, 4 << 20, small_fraction=0.9))
    table = Table(headers=["offered load", "mean us", "p99 us", "GB/s"])
    for load in (0.3, 0.6, 0.9):
        service = sim.service_seconds(8192) * 0.9 + \
            sim.service_seconds(4 << 20) * 0.1
        rate = load / service
        result = sim.run_open(arrival_rate_per_s=rate / 16, clients=16,
                              duration_s=0.2)
        table.add(load, result.mean_latency * 1e6,
                  result.latency_percentile(99) * 1e6,
                  result.throughput_gbps)
    print(table.render("shared engine under RPC+bulk mix"))
    print()


def correctness_demo() -> None:
    """And of course the bits that come out are real gzip."""
    import gzip

    page = generate("database_pages", 65536, seed=9)
    with NxGzip("POWER9") as session:
        compressed = session.compress(page, fmt="gzip")
    print(f"db page {human_bytes(len(page))} -> "
          f"{human_bytes(len(compressed.data))} "
          f"(x{len(page) / len(compressed.data):.1f}); "
          f"gzip-verified: {gzip.decompress(compressed.data) == page}")


def main() -> None:
    routing_demo()
    congestion_demo()
    load_demo()
    correctness_demo()


if __name__ == "__main__":
    main()
