"""Active Memory Expansion: the 842 engines' original job.

Before the gzip engines, the NX unit's 842 pipes compressed cold memory
pages so an LPAR could be configured with less physical DRAM (AIX AME).
This example runs a pool of synthetic memory pages through the 842 path
via the real CRB interface, sizes the expansion factor, and then shows
why the paper's gzip engines changed the game: same pages, better
ratio, at a throughput that is still far beyond software.

Run:  python examples/memory_expansion.py
"""

from __future__ import annotations

from repro.core.metrics import Table, human_bytes
from repro.nx.accelerator import NxAccelerator
from repro.nx.params import POWER9
from repro.sysstack.crb import Op
from repro.sysstack.driver import NxDriver
from repro.sysstack.mmu import AddressSpace
from repro.workloads.generators import generate

PAGE = 65536
POOL_PAGES = 24

_PAGE_KINDS = [
    ("heap (json)", "json_records"),
    ("page cache (text)", "markov_text"),
    ("db buffer pool", "database_pages"),
    ("code", "binary_executable"),
    ("zeroed", "zero_bytes"),
    ("encrypted", "random_bytes"),
]


def build_pool() -> list[tuple[str, bytes]]:
    pool = []
    for idx in range(POOL_PAGES):
        kind, generator = _PAGE_KINDS[idx % len(_PAGE_KINDS)]
        pool.append((kind, generate(generator, PAGE, seed=100 + idx)))
    return pool


def main() -> None:
    pool = build_pool()
    space = AddressSpace()
    driver = NxDriver(NxAccelerator(POWER9), space)
    driver.open()

    table = Table(headers=["page kind", "pages", "842 ratio",
                           "gzip ratio"])
    totals = {"in": 0, "e842": 0, "gzip": 0}
    per_kind: dict[str, list[tuple[int, int, int]]] = {}
    seconds_842 = 0.0

    for kind, page in pool:
        r842 = driver.run(Op.COMPRESS_842, page)
        rgz = driver.run(Op.COMPRESS, page, strategy="dynamic")
        seconds_842 += r842.stats.elapsed_seconds
        back = driver.run(Op.DECOMPRESS_842, r842.output)
        assert back.output == page
        per_kind.setdefault(kind, []).append(
            (len(page), len(r842.output), len(rgz.output)))
        totals["in"] += len(page)
        totals["e842"] += len(r842.output)
        totals["gzip"] += len(rgz.output)

    for kind, rows in per_kind.items():
        n_in = sum(r[0] for r in rows)
        n_842 = sum(r[1] for r in rows)
        n_gz = sum(r[2] for r in rows)
        table.add(kind, len(rows), n_in / n_842, n_in / n_gz)
    table.add("POOL", POOL_PAGES, totals["in"] / totals["e842"],
              totals["in"] / totals["gzip"])
    print(table.render("memory page pool through the NX 842 vs gzip pipes"))

    expansion_842 = totals["in"] / totals["e842"]
    expansion_gzip = totals["in"] / totals["gzip"]
    print(f"\npool: {human_bytes(totals['in'])} of pages")
    print(f"  842 expansion factor:  {expansion_842:.2f}x "
          f"(the AME story)")
    print(f"  gzip expansion factor: {expansion_gzip:.2f}x "
          f"(+{100 * (expansion_gzip / expansion_842 - 1):.0f}% more "
          "memory from the same DRAM)")
    print(f"  modelled 842 compress time for the pool: "
          f"{seconds_842 * 1e6:.0f} us")

    counters = driver.accelerator.e842_engine.counters
    print(f"  842 engine served {counters.jobs} jobs, "
          f"{human_bytes(counters.bytes_in)} in")


if __name__ == "__main__":
    main()
