"""Dictionary service: canned-DHT latency/ratio and result-cache hit cost.

Two claims back the dictionary service, and this bench puts numbers on
both:

* **Canned beats dynamic on small buffers.**  A dynamic DHT inserts a
  table-generation bubble per block — on a <=4 KB buffer that bubble
  dominates the request.  Tenant-trained canned tables skip it for a
  bounded compression-ratio loss.  The bench trains a registry on the
  seeded cloud-like corpus (exactly what ``repro dict train`` does),
  pushes the tables, and compares modelled engine latency and output
  size between ``canned`` and ``dynamic`` across every corpus family
  on 4 KB buffers.

* **A cache hit is far cheaper than a miss.**  The content-addressed
  result cache serves repeated payloads at hash-plus-lookup cost.  The
  bench measures wall time of a miss (hash + full engine compression)
  against a hit (hash + LRU lookup) for the same payloads.

Results are written to ``BENCH_dictsvc.json`` at the repo root;
``tools/perf_gate.py --dictsvc-only`` enforces the acceptance floors
(hit >= 10x cheaper than miss, canned faster than dynamic with <= 3 %
aggregate ratio loss).

Usage::

    PYTHONPATH=src python benchmarks/bench_dictsvc.py           # full
    PYTHONPATH=src python benchmarks/bench_dictsvc.py --quick   # CI
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.dictsvc import DictionaryRegistry, ResultCache, result_key
from repro.nx.compressor import NxCompressor
from repro.nx.dht import DhtStrategy, clear_trained_dhts
from repro.nx.params import POWER9
from repro.workloads.corpus import build_corpus

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_dictsvc.json"

#: The small-buffer regime the canned strategy targets (paper: the DHT
#: bubble dominates below a few KB).
SMALL_BUFFER = 4096

TRAIN_SEED = 7


def _train_and_push(corpus: dict[str, bytes]) -> DictionaryRegistry:
    """Train one dictionary per corpus family, engine tables pushed.

    Eight clusters per family: the full-scale corpus mixes enough
    regimes per family (telemetry bursts, page layouts) that four
    leaders blur distinct table shapes together.
    """
    registry = DictionaryRegistry(seed=TRAIN_SEED, max_clusters=8)
    for family, data in corpus.items():
        for offset in range(0, len(data), SMALL_BUFFER):
            registry.observe(family, data[offset:offset + SMALL_BUFFER])
    for family in corpus:
        registry.train(family)
    registry.push()
    return registry


def _small_buffers(corpus: dict[str, bytes],
                   per_family: int) -> list[tuple[str, bytes]]:
    buffers = []
    for family, data in corpus.items():
        for i in range(per_family):
            offset = i * SMALL_BUFFER
            if offset + SMALL_BUFFER > len(data):
                break
            buffers.append((family, data[offset:offset + SMALL_BUFFER]))
    return buffers


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_bench(quick: bool = False) -> dict:
    """Measure canned-vs-dynamic latency/ratio and cache hit/miss cost."""
    scale = 0.25 if quick else 1.0
    repeats = 3 if quick else 7
    per_family = 4 if quick else 8
    corpus = build_corpus("cloud-like", scale=scale)

    clear_trained_dhts()
    registry = _train_and_push(corpus)
    try:
        engine = NxCompressor(POWER9.engine)
        buffers = _small_buffers(corpus, per_family)

        # -- canned vs dynamic on <=4 KB buffers (modelled engine time)
        canned_s = dynamic_s = 0.0
        canned_bytes = dynamic_bytes = 0
        per_family_loss: dict[str, float] = {}
        fam_sizes: dict[str, list[int]] = {}
        for family, buf in buffers:
            canned = engine.compress(buf, strategy=DhtStrategy.CANNED)
            dynamic = engine.compress(buf, strategy=DhtStrategy.DYNAMIC)
            canned_s += canned.seconds
            dynamic_s += dynamic.seconds
            canned_bytes += len(canned.data)
            dynamic_bytes += len(dynamic.data)
            sizes = fam_sizes.setdefault(family, [0, 0])
            sizes[0] += len(canned.data)
            sizes[1] += len(dynamic.data)
        for family, (c, d) in fam_sizes.items():
            per_family_loss[family] = round((c / d - 1.0) * 100.0, 3)
        ratio_loss_pct = (canned_bytes / dynamic_bytes - 1.0) * 100.0
        canned_us = canned_s / len(buffers) * 1e6
        dynamic_us = dynamic_s / len(buffers) * 1e6

        # -- cache hit vs miss (wall time; miss = hash + engine compress)
        cache = ResultCache(max_bytes=64 << 20)
        epoch = registry.epoch(next(iter(corpus)))
        payloads = [buf for _family, buf in buffers]

        def _misses() -> None:
            for payload in payloads:
                key = result_key(payload, strategy="canned", epoch=epoch)
                cache.get_or_compute(
                    "bench", key,
                    lambda p=payload: engine.compress(
                        p, strategy=DhtStrategy.CANNED).data)

        def _hits() -> None:
            for payload in payloads:
                key = result_key(payload, strategy="canned", epoch=epoch)
                cache.get_or_compute("bench", key, lambda: b"")

        # One cold pass per repeat would need a fresh cache; instead
        # time the first (all-miss) pass once per repeat against a
        # fully warm pass, best-of across repeats.
        miss_s = float("inf")
        for _ in range(repeats):
            fresh = ResultCache(max_bytes=64 << 20)
            t0 = time.perf_counter()
            for payload in payloads:
                key = result_key(payload, strategy="canned", epoch=epoch)
                fresh.get_or_compute(
                    "bench", key,
                    lambda p=payload: engine.compress(
                        p, strategy=DhtStrategy.CANNED).data)
            miss_s = min(miss_s, time.perf_counter() - t0)
        _misses()  # warm the shared cache
        hit_s = _best_of(_hits, max(repeats, 5))
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == stats["requests"]

        cache_miss_us = miss_s / len(payloads) * 1e6
        cache_hit_us = hit_s / len(payloads) * 1e6
    finally:
        clear_trained_dhts()

    results = {
        "canned_small_us": round(canned_us, 3),
        "dynamic_small_us": round(dynamic_us, 3),
        "canned_latency_speedup": round(dynamic_us / canned_us, 3),
        "canned_ratio_loss_pct": round(ratio_loss_pct, 3),
        "per_family_ratio_loss_pct": per_family_loss,
        "cache_miss_us": round(cache_miss_us, 3),
        "cache_hit_us": round(cache_hit_us, 3),
        "cache_hit_speedup": round(cache_miss_us / cache_hit_us, 3),
        "trained_tables": len(registry.trained()),
    }
    meta = {
        "corpus": "cloud-like",
        "scale": scale,
        "buffer_bytes": SMALL_BUFFER,
        "buffers": len(buffers),
        "repeats": repeats,
        "train_seed": TRAIN_SEED,
        "machine": "POWER9",
        "quick": quick,
        "python": sys.version.split()[0],
    }
    return {"meta": meta, "results": results}


def render(report: dict) -> str:
    meta = report["meta"]
    lines = [f"dictionary service on {meta['buffers']} x "
             f"{meta['buffer_bytes']}-byte buffers "
             f"({meta['corpus']}, {meta['machine']}, "
             f"best of {meta['repeats']})"]
    for key, value in report["results"].items():
        if isinstance(value, dict):
            lines.append(f"  {key}:")
            for fam, loss in sorted(value.items()):
                lines.append(f"    {fam:20s} {loss:10.3f}%")
            continue
        unit = "%" if key.endswith("_pct") else (
            " us" if key.endswith("_us") else "")
        lines.append(f"  {key:32s} {value:10.3f}{unit}"
                     if isinstance(value, float)
                     else f"  {key:32s} {value:>10}{unit}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus, fewer repeats (CI smoke)")
    parser.add_argument("--no-write", action="store_true",
                        help="print results without updating the JSON")
    parser.add_argument("--out", type=pathlib.Path, default=RESULT_PATH,
                        help="output JSON path (default repo root)")
    args = parser.parse_args(argv)

    report = run_bench(quick=args.quick)
    print(render(report))
    if not args.no_write:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
