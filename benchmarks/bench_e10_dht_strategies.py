"""E10 — DHT strategy trade-off: fixed vs canned vs dynamic vs auto.

Ratio and throughput per strategy per data class, measured from real
bitstreams and the engine cycle model.  The documented trade-off: FIXED
is fastest/worst-ratio, DYNAMIC best-ratio with a generation bubble,
CANNED nearly both.
"""

from __future__ import annotations

from repro.core.metrics import Table
from repro.nx.dht import DhtStrategy
from repro.workloads.generators import generate

from _common import report, resolve_engine

DATASETS = [
    ("text", "markov_text"),
    ("logs", "log_lines"),
    ("json", "json_records"),
    ("binary", "binary_executable"),
]
SIZE = 65536


def compute() -> tuple[Table, dict]:
    backend = resolve_engine("nx")
    table = Table(headers=["data", "strategy", "ratio", "GB/s",
                           "dht cycles"])
    per_strategy: dict[str, list[float]] = {s.value: []
                                            for s in DhtStrategy}
    for name, generator in DATASETS:
        data = generate(generator, SIZE, seed=33)
        for strategy in DhtStrategy:
            result = backend.compress(data, strategy=strategy,
                                      fmt="raw").engine_result
            table.add(name, strategy.value, result.ratio,
                      result.throughput_gbps,
                      result.cycles.dht_generation)
            per_strategy[strategy.value].append(
                (result.ratio, result.throughput_gbps))
    backend.close()
    return table, per_strategy


def test_e10_dht_strategies(benchmark):
    table, per_strategy = benchmark.pedantic(compute, rounds=1,
                                             iterations=1)
    report("e10_dht_strategies", table,
           "E10 (ablation): Huffman strategy trade-off per data class")
    for idx in range(len(DATASETS)):
        fixed_ratio, fixed_rate = per_strategy["fixed"][idx]
        canned_ratio, canned_rate = per_strategy["canned"][idx]
        dyn_ratio, dyn_rate = per_strategy["dynamic"][idx]
        # Ratio ordering: fixed <= canned <= dynamic (small tolerance).
        assert fixed_ratio <= canned_ratio * 1.03
        assert canned_ratio <= dyn_ratio * 1.01
        # Throughput ordering: dynamic pays the generation bubble.
        assert dyn_rate <= canned_rate * 1.001
        assert dyn_rate <= fixed_rate * 1.001


if __name__ == "__main__":
    table, _ = compute()
    print(table.render("E10: DHT strategies"))
