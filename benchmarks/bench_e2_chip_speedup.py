"""E2 — one accelerator vs the entire chip of cores (abstract: 13x).

Sweeps the number of software threads compressing independent streams on
the POWER9 chip and compares aggregate software throughput against a
single NX engine.
"""

from __future__ import annotations

from repro.core.metrics import Table
from repro.nx.params import POWER9
from repro.perf.cost import SoftwareCostModel, accelerator_effective_gbps

from _common import report


def compute() -> tuple[Table, float]:
    cost = SoftwareCostModel(POWER9)
    accel = accelerator_effective_gbps(POWER9)
    single = cost.compress_rate_mbps(6) / 1000.0
    table = Table(headers=["software threads", "software GB/s",
                           "NX GB/s", "NX speedup"])
    chip_speedup = 0.0
    cores = POWER9.cores.cores
    for threads in (1, 4, 8, 16, cores, cores * POWER9.cores.smt):
        if threads <= cores:
            sw = single * threads
        else:  # SMT threads add the calibrated aggregate factor
            sw = single * cores * POWER9.cores.smt_scaling
        table.add(threads, sw, accel, accel / sw)
        chip_speedup = accel / sw
    return table, chip_speedup


def test_e2_chip_speedup(benchmark):
    table, chip_speedup = benchmark.pedantic(compute, rounds=3,
                                             iterations=1)
    report("e2_chip_speedup", table,
           "E2: one NX accelerator vs the whole POWER9 chip running zlib -6",
           notes=f"headline (all cores + SMT): {chip_speedup:.1f}x "
                 "(paper: 13x)")
    assert 11.5 < chip_speedup < 14.5


if __name__ == "__main__":
    table, headline = compute()
    print(table.render("E2: chip speedup"))
    print(f"headline: {headline:.1f}x")
