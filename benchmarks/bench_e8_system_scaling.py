"""E8 — aggregate system scaling (abstract: 280 GB/s on maximal z15).

Aggregate compression rate as the topology grows from one chip to the
maximally configured z15 (5 CPC drawers x 4 CP chips), alongside the
all-core software alternative at every point.
"""

from __future__ import annotations

from repro.core.metrics import Table
from repro.core.plot import line_chart
from repro.nx.params import Z15, z15_max_config
from repro.perf.system import SystemModel, scaling_series

from _common import report


def compute() -> tuple[Table, float]:
    series = scaling_series(Z15, max_chips=20, chips_per_drawer=4)
    table = Table(headers=["chips", "accelerators GB/s",
                           "all-core software GB/s", "speedup"])
    for step in (1, 2, 4, 8, 12, 16, 20):
        rates = series[step - 1]
        table.add(step, rates.accelerator_gbps, rates.software_gbps,
                  rates.speedup)
    max_rate = SystemModel(z15_max_config()).rates().accelerator_gbps
    figure = line_chart(
        {"accelerators": [(r.chips, r.accelerator_gbps)
                          for r in series],
         "software": [(r.chips, r.software_gbps) for r in series]},
        title="Figure E8: aggregate rate vs chips",
        y_label="GB/s", x_label="CP chips")
    return table, max_rate, figure


def test_e8_system_scaling(benchmark):
    table, max_rate, figure = benchmark.pedantic(compute, rounds=3,
                                                 iterations=1)
    report("e8_system_scaling", table,
           "E8: z15 aggregate compression rate vs topology size",
           notes=f"maximal configuration: {max_rate:.0f} GB/s "
                 "(paper: up to 280 GB/s)",
           figure=figure)
    assert 260 < max_rate < 300
    # Scaling is linear in chips.
    rates = [float(row[1]) for row in table.rows]
    chips = [int(row[0]) for row in table.rows]
    per_chip = [rate / n for rate, n in zip(rates, chips)]
    assert max(per_chip) - min(per_chip) < 0.02 * per_chip[0]


if __name__ == "__main__":
    table, headline, figure = compute()
    print(table.render("E8: system scaling"))
    print(figure)
    print(f"max config: {headline:.0f} GB/s")
