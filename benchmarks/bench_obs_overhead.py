"""Telemetry overhead: the cost of the disabled (and enabled) tracer.

The observability layer promises *near-zero* cost while disabled: every
hot-path site guards its instrumentation behind one attribute check
(``if TRACE.enabled``).  This bench puts a number on that promise by
interleaving, in one process, the raw kernel cores
(:func:`deflate_core` / :func:`inflate_core`, which carry no guard at
all) against the guarded public wrappers with telemetry off — the
interleaving cancels thermal/frequency drift between the two series.
It also measures traced throughput so the *enabled* cost is visible,
and the cost of the always-on flight recorder: the API layer appends
one compact ring record per request even with tracing off, so the
bench interleaves API-level compresses with the recorder enabled (the
default production posture) against the same calls with it disabled.

Results are written to ``BENCH_obs.json`` at the repo root;
``tools/perf_gate.py`` enforces the documented <2 % ceiling on every
``*_off_overhead_pct`` key — the disabled-tracer guards *and* the
flight-recorder append.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py           # full
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick   # CI
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro import obs
from repro.core.api import NxGzip
from repro.deflate.compress import deflate, deflate_core
from repro.deflate.inflate import inflate_core, inflate_with_stats
from repro.obs.flight import FLIGHT
from repro.workloads.corpus import corpus_bytes

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_obs.json"

_MB = 1e6


def _interleaved_best(raw_fn, guarded_fn,
                      repeats: int) -> tuple[float, float]:
    """Best-of seconds for both callables, alternating runs.

    Alternation keeps both series exposed to the same machine state, so
    the difference isolates the guard cost rather than drift.
    """
    best_raw = best_guarded = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        raw_fn()
        best_raw = min(best_raw, time.perf_counter() - t0)
        t0 = time.perf_counter()
        guarded_fn()
        best_guarded = min(best_guarded, time.perf_counter() - t0)
    return best_raw, best_guarded


def _overhead_pct(raw_s: float, guarded_s: float) -> float:
    """Guard cost as a percentage of the raw kernel time, floored at 0
    (negative differences are measurement noise, not speedups)."""
    if raw_s <= 0:
        return 0.0
    return max(0.0, (guarded_s - raw_s) / raw_s * 100.0)


def run_bench(quick: bool = False, level: int = 6) -> dict:
    """Measure disabled-guard overhead and traced throughput."""
    scale = 0.25 if quick else 1.0
    repeats = 3 if quick else 9
    corpus = corpus_bytes("calgary-like", scale=scale)

    was_tracing = obs.tracing_enabled()
    was_metrics = obs.metrics_enabled()
    obs.disable()

    payload = deflate(corpus, level=level).data

    raw_s, guarded_s = _interleaved_best(
        lambda: deflate_core(corpus, level=level),
        lambda: deflate(corpus, level=level), repeats)
    deflate_overhead = _overhead_pct(raw_s, guarded_s)
    deflate_off_mbps = len(corpus) / _MB / guarded_s

    raw_s, guarded_s = _interleaved_best(
        lambda: inflate_core(payload),
        lambda: inflate_with_stats(payload), repeats)
    inflate_overhead = _overhead_pct(raw_s, guarded_s)
    inflate_off_mbps = len(corpus) / _MB / guarded_s

    # Flight-recorder cost: the API layer appends one ring record per
    # request unconditionally, so interleave full API compresses with
    # the recorder on (default) vs off.  Gated like the tracer guards.
    flight_was = FLIGHT.enabled
    session = NxGzip("POWER9", backend="software")
    try:
        def _api_noflight():
            FLIGHT.disable()
            session.compress(corpus)

        def _api_flight():
            FLIGHT.enable()
            session.compress(corpus)

        # The append costs nanoseconds against a ~100 ms compress, so
        # the signal is far below quick-mode noise; always use the full
        # repeat count for this pair (each repeat is one small call).
        noflight_s, flight_s = _interleaved_best(
            _api_noflight, _api_flight, max(repeats, 9))
    finally:
        session.close()
        FLIGHT.enabled = flight_was
        FLIGHT.reset()
    flight_overhead = _overhead_pct(noflight_s, flight_s)
    api_flight_mbps = len(corpus) / _MB / flight_s
    api_noflight_mbps = len(corpus) / _MB / noflight_s

    # Enabled cost: same kernel with spans recorded, for the record
    # (tracing is opt-in, so this is informational, not gated).
    obs.enable()
    obs.tracer().reset()
    traced_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        deflate(corpus, level=level)
        traced_s = min(traced_s, time.perf_counter() - t0)
    spans_recorded = len(obs.tracer().finished())
    obs.reset()
    obs.disable()
    if was_tracing or was_metrics:
        obs.enable(trace=was_tracing, metrics=was_metrics)

    results = {
        "deflate_l6_off_overhead_pct": round(deflate_overhead, 3),
        "inflate_off_overhead_pct": round(inflate_overhead, 3),
        "api_flight_off_overhead_pct": round(flight_overhead, 3),
        "deflate_l6_off_mbps": round(deflate_off_mbps, 3),
        "inflate_off_mbps": round(inflate_off_mbps, 3),
        "api_flight_on_mbps": round(api_flight_mbps, 3),
        "api_flight_disabled_mbps": round(api_noflight_mbps, 3),
        "deflate_l6_traced_mbps": round(len(corpus) / _MB / traced_s, 3),
        "spans_per_traced_deflate": spans_recorded // repeats,
    }
    meta = {
        "corpus": "calgary-like",
        "scale": scale,
        "bytes": len(corpus),
        "level": level,
        "repeats": repeats,
        "quick": quick,
        "python": sys.version.split()[0],
    }
    return {"meta": meta, "results": results}


def render(report: dict) -> str:
    meta = report["meta"]
    lines = [f"telemetry overhead on {meta['bytes']} bytes "
             f"({meta['corpus']}, level {meta['level']}, "
             f"best of {meta['repeats']})"]
    for key, value in report["results"].items():
        unit = "%" if key.endswith("_pct") else (
            " MB/s" if key.endswith("_mbps") else "")
        lines.append(f"  {key:32s} {value:10.3f}{unit}"
                     if isinstance(value, float)
                     else f"  {key:32s} {value:>10}{unit}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus, fewer repeats (CI smoke)")
    parser.add_argument("--no-write", action="store_true",
                        help="print results without updating the JSON")
    parser.add_argument("--out", type=pathlib.Path, default=RESULT_PATH,
                        help="output JSON path (default repo root)")
    args = parser.parse_args(argv)

    report = run_bench(quick=args.quick)
    print(render(report))
    if not args.no_write:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
