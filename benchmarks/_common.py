"""Shared reporting for the experiment benches.

Every bench renders its paper-style table through here: printed to
stdout (visible with ``pytest -s`` or when run as a script) and written
to ``benchmarks/results/<experiment>.txt`` so the table survives pytest's
output capture.  EXPERIMENTS.md is assembled from these files.
"""

from __future__ import annotations

import pathlib

from repro.core.metrics import Table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(experiment: str, table: Table, title: str,
           notes: str = "", figure: str = "") -> str:
    """Render, print, and persist one experiment table (+ figure)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = table.render(title=title)
    if notes:
        text += "\n" + notes
    if figure:
        text += "\n\n" + figure
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")
    print()
    print(text)
    return text
