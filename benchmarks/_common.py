"""Shared reporting and stage timing for the experiment benches.

Every bench renders its paper-style table through here: printed to
stdout (visible with ``pytest -s`` or when run as a script) and written
to ``benchmarks/results/<experiment>.txt`` so the table survives pytest's
output capture.  EXPERIMENTS.md is assembled from these files.

Timing goes through :class:`StageRecorder` — the span API from
:mod:`repro.obs.trace` on a *private* tracer, so benches get the same
nested per-stage attribution the production telemetry produces without
ever touching the process-global ``TRACE`` switch.  ``report`` persists
the recorder's per-stage summary as ``<experiment>.stages.json`` next to
the table; ``tools/collect_results.py`` renders the breakdown.
"""

from __future__ import annotations

import json
import pathlib

from repro.backend import create_backend
from repro.core.metrics import Table
from repro.nx.params import POWER9
from repro.obs.trace import Span, Tracer

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def resolve_engine(name: str = "nx", machine=POWER9, **kwargs):
    """Acquire a compression backend from the registry.

    Every bench resolves its engine here rather than constructing
    model classes directly — engine-parameter sweeps pass ``engine=``
    (forwarded to the backend factory), and per-request engine metrics
    come back on ``DriverResult.engine_result``.
    """
    return create_backend(name, machine=machine, **kwargs)


class StageRecorder:
    """Span-timed bench stages on a private, always-enabled tracer.

    ``stage`` opens one nested span (use as a context manager);
    ``best_of`` is the repeated-measurement primitive the benches used
    to hand-roll with ``perf_counter`` pairs.  ``summary`` aggregates
    wall-clock per stage name and ``write`` persists it for the
    collector.
    """

    def __init__(self) -> None:
        self._tracer = Tracer()
        self._tracer.enable()

    def stage(self, name: str, **attrs: object) -> Span:
        """Open one timed stage span (nests like any span)."""
        return self._tracer.span(name, **attrs)

    def best_of(self, fn, repeats: int, name: str = "run",
                **attrs: object) -> float:
        """Best wall-clock seconds over ``repeats`` runs (noise floor)."""
        best = float("inf")
        for _ in range(repeats):
            with self.stage(name, **attrs) as span:
                fn()
            best = min(best, span.duration_s)
        return best

    def summary(self) -> dict[str, dict]:
        """Per-stage aggregate: run count, total and best seconds."""
        stages: dict[str, dict] = {}
        for span in self._tracer.finished():
            agg = stages.setdefault(span.name, {"count": 0,
                                                "total_s": 0.0,
                                                "best_s": float("inf")})
            agg["count"] += 1
            agg["total_s"] += span.duration_s
            agg["best_s"] = min(agg["best_s"], span.duration_s)
        for agg in stages.values():
            agg["total_s"] = round(agg["total_s"], 6)
            agg["best_s"] = round(agg["best_s"], 6)
        return stages

    def write(self, experiment: str) -> pathlib.Path:
        """Persist the per-stage breakdown next to the result table."""
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment}.stages.json"
        path.write_text(json.dumps(self.summary(), indent=2,
                                   sort_keys=True) + "\n")
        return path


def report(experiment: str, table: Table, title: str,
           notes: str = "", figure: str = "",
           stages: StageRecorder | None = None) -> str:
    """Render, print, and persist one experiment table (+ figure)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = table.render(title=title)
    if notes:
        text += "\n" + notes
    if figure:
        text += "\n\n" + figure
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")
    if stages is not None:
        stages.write(experiment)
    print()
    print(text)
    return text
