"""Shared reporting for the experiment benches.

Every bench renders its paper-style table through here: printed to
stdout (visible with ``pytest -s`` or when run as a script) and written
to ``benchmarks/results/<experiment>.txt`` so the table survives pytest's
output capture.  EXPERIMENTS.md is assembled from these files.
"""

from __future__ import annotations

import pathlib

from repro.backend import create_backend
from repro.core.metrics import Table
from repro.nx.params import POWER9

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def resolve_engine(name: str = "nx", machine=POWER9, **kwargs):
    """Acquire a compression backend from the registry.

    Every bench resolves its engine here rather than constructing
    model classes directly — engine-parameter sweeps pass ``engine=``
    (forwarded to the backend factory), and per-request engine metrics
    come back on ``DriverResult.engine_result``.
    """
    return create_backend(name, machine=machine, **kwargs)


def report(experiment: str, table: Table, title: str,
           notes: str = "", figure: str = "") -> str:
    """Render, print, and persist one experiment table (+ figure)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = table.render(title=title)
    if notes:
        text += "\n" + notes
    if figure:
        text += "\n\n" + figure
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")
    print()
    print(text)
    return text
