"""E14 — priority arbitration: small-request tails under bulk load.

The VAS front end's two receive FIFOs (documented feature) exist so
latency-sensitive requests survive bulk saturation.  This bench compares
the two-FIFO arbitration against a single shared FIFO under the same
offered load.
"""

from __future__ import annotations

from repro.core.metrics import Table
from repro.nx.params import POWER9
from repro.perf.priority import PriorityQueueSim

from _common import report

HIGH_RATE = 4000.0   # 8 KB requests/s (light load by bytes)
BULK_RATE = 1500.0   # 4 MB requests/s -> ~85% engine utilization
DURATION = 0.3


def compute() -> tuple[Table, dict]:
    table = Table(headers=["scheme", "class", "mean us", "p99 us", "jobs"])
    out = {}
    for use_priority, label in ((False, "single FIFO"),
                                (True, "priority FIFOs")):
        sim = PriorityQueueSim(POWER9, use_priority=use_priority, seed=11)
        results = sim.run(HIGH_RATE, BULK_RATE, DURATION)
        for cls in ("high", "bulk"):
            res = results[cls]
            table.add(label, cls, res.mean_latency * 1e6,
                      res.percentile(99) * 1e6, res.count)
        out[label] = results
    return table, out


def test_e14_priority(benchmark):
    table, results = benchmark.pedantic(compute, rounds=1, iterations=1)
    fifo_high = results["single FIFO"]["high"]
    prio_high = results["priority FIFOs"]["high"]
    fifo_bulk = results["single FIFO"]["bulk"]
    prio_bulk = results["priority FIFOs"]["bulk"]
    report("e14_priority", table,
           "E14: small-request latency with and without priority FIFOs "
           "(8 KB RPCs vs 4 MB bulk, one engine)",
           notes="priority arbitration protects the small-request tail; "
                 "anti-starvation keeps bulk flowing")
    # Priority slashes the small-request tail...
    assert prio_high.percentile(99) < 0.5 * fifo_high.percentile(99)
    # ...without starving bulk (same work completed, bounded slowdown).
    assert prio_bulk.count >= fifo_bulk.count * 0.9
    assert prio_bulk.mean_latency < 3.0 * fifo_bulk.mean_latency


if __name__ == "__main__":
    table, _ = compute()
    print(table.render("E14: priority"))
