"""E7 — z15 vs POWER9: line rate doubling and sync-vs-async invocation.

Two effects: (a) the z15 engine is 2x wider, doubling large-buffer rate;
(b) DFLTCC's synchronous issue path has sub-microsecond overhead, so z15
wins even harder on small buffers, where the POWER9 paste/poll path is
overhead-bound.
"""

from __future__ import annotations

from repro.core.metrics import Table, human_bytes
from repro.nx.dht import DhtStrategy
from repro.nx.params import POWER9, Z15
from repro.perf.timing import OffloadTimingModel
from repro.workloads.generators import generate

from _common import report, resolve_engine

SIZES = [4 << 10, 64 << 10, 1 << 20, 16 << 20]


def compute() -> tuple[Table, dict]:
    p9 = OffloadTimingModel(POWER9)
    z15 = OffloadTimingModel(Z15)
    table = Table(headers=["buffer", "P9 us", "z15 us", "z15 gain"])
    gains = []
    for size in SIZES:
        lat_p9 = p9.offload_latency(size).total
        lat_z15 = z15.offload_latency(size).total
        table.add(human_bytes(size), lat_p9 * 1e6, lat_z15 * 1e6,
                  lat_p9 / lat_z15)
        gains.append(lat_p9 / lat_z15)

    # Engine-model cross-check on real data (not the calibrated table).
    sample = generate("log_lines", 131072, seed=21)
    with resolve_engine("nx", machine=POWER9) as b_p9:
        r_p9 = b_p9.compress(sample, strategy=DhtStrategy.DYNAMIC,
                             fmt="raw").engine_result
    with resolve_engine("nx", machine=Z15) as b_z15:
        r_z15 = b_z15.compress(sample, strategy=DhtStrategy.DYNAMIC,
                               fmt="raw").engine_result
    measured_ratio = r_z15.throughput_gbps / r_p9.throughput_gbps
    return table, {"gains": gains, "measured_ratio": measured_ratio}


def test_e7_z15_vs_p9(benchmark):
    table, extra = benchmark.pedantic(compute, rounds=1, iterations=1)
    report("e7_z15_vs_p9", table,
           "E7: request latency, POWER9 async paste vs z15 DFLTCC",
           notes=f"engine-model rate ratio on real data: "
                 f"{extra['measured_ratio']:.2f}x (paper: 2x)")
    gains = extra["gains"]
    # Small buffers gain more than the pure 2x rate ratio (sync path).
    assert gains[0] > gains[-1]
    assert gains[0] > 2.5
    # Large buffers converge to the ~2x engine-rate ratio.
    assert 1.7 < gains[-1] < 2.3
    assert 1.6 < extra["measured_ratio"] < 2.4


if __name__ == "__main__":
    table, _ = compute()
    print(table.render("E7: z15 vs POWER9"))
