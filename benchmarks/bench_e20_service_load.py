"""E20 — the serving stack under saturating multi-client load.

E19 replayed a diurnal tape against the pool; E20 pushes the same idea
through the *server*: concurrent clients drive one
:class:`~repro.service.core.CompressionService` past its admission
capacity while a latency-sensitive interactive stream runs alongside
the bulk flood.  Measured (wall-clock, not modelled):

* **saturation throughput** — accepted-and-completed payload bytes per
  second once the bulk queues are pinned full;
* **p99 latency per QoS class** — interactive (high FIFO) vs bulk
  (normal FIFO), quiet vs under saturation;
* **shed ratio** — offered load rejected with retryable errors rather
  than queued without bound.

Results land in ``BENCH_service.json`` at the repo root;
``tools/perf_gate.py`` holds fresh runs to a floor on the saturation
throughput.  Latency numbers are reported but not floor-gated (lower
is better; the relative-floor gate would read improvements as noise).

Usage::

    PYTHONPATH=src python benchmarks/bench_e20_service_load.py          # full
    PYTHONPATH=src python benchmarks/bench_e20_service_load.py --quick  # CI
    PYTHONPATH=src python benchmarks/bench_e20_service_load.py --no-write
"""

from __future__ import annotations

import argparse
import gzip
import json
import pathlib
import threading
import time

from _common import StageRecorder, report
from repro.core.metrics import Table
from repro.errors import ServiceOverloaded
from repro.service import CompressionService, QosClass, QosPolicy
from repro.workloads.generators import generate

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_service.json"

_STAGES = StageRecorder()

SEED = 20


def _p99(samples: list[float]) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[max(0, int(len(ordered) * 0.99) - 1)]


def _policy(quick: bool = False) -> QosPolicy:
    # Quick (CI) mode shrinks the admission envelope so the smaller
    # flood still saturates it and exercises the shedding path.
    bulk_limit = 16 if quick else 64
    return QosPolicy((
        QosClass("interactive", fifo="high", rank=0,
                 queue_limit=bulk_limit // 2, max_batch=2),
        QosClass("bulk", fifo="normal", rank=1, queue_limit=bulk_limit,
                 max_batch=8),
    ))


def run_bench(quick: bool = False) -> dict:
    """Drive the service to saturation; returns the results dict."""
    payload = generate("json_records", 4096, seed=SEED)
    quiet_probes = 10 if quick else 30
    flood_threads = 4 if quick else 8
    flood_jobs = 40 if quick else 160     # per thread, offered
    probe_jobs = 10 if quick else 40

    with CompressionService(chips=2, qos=_policy(quick)) as svc:
        # Phase 1: quiet interactive latency (the protection baseline).
        quiet: list[float] = []
        with _STAGES.stage("quiet", probes=quiet_probes):
            for _ in range(quiet_probes):
                t0 = time.perf_counter()
                result = svc.compress(payload, qos="interactive")
                quiet.append(time.perf_counter() - t0)
                assert gzip.decompress(result.output) == payload

        # Phase 2: bulk flood + concurrent interactive probes.
        lock = threading.Lock()
        bulk_lat: list[float] = []
        probe_lat: list[float] = []
        counters = {"accepted": 0, "shed": 0, "bytes": 0}

        burst = 16 if quick else 32

        def bulk_client(worker: int) -> None:
            # Burst-submit to pin the bulk queue at its bound — the
            # saturating pattern the admission control exists for.
            remaining = flood_jobs
            while remaining > 0:
                tickets = []
                for _ in range(min(burst, remaining)):
                    t0 = time.perf_counter()
                    try:
                        tickets.append((t0, svc.submit(
                            "compress", payload, qos="bulk")))
                    except ServiceOverloaded:
                        with lock:
                            counters["shed"] += 1
                    remaining -= 1
                for t0, ticket in tickets:
                    out = ticket.wait(120)
                    dt = time.perf_counter() - t0
                    with lock:
                        counters["accepted"] += 1
                        counters["bytes"] += len(payload)
                        bulk_lat.append(dt)
                    assert gzip.decompress(out.output) == payload

        def probe_client() -> None:
            for _ in range(probe_jobs):
                t0 = time.perf_counter()
                try:
                    out = svc.request("compress", payload,
                                      qos="interactive", timeout_s=120)
                except ServiceOverloaded:
                    with lock:
                        counters["shed"] += 1
                    continue
                dt = time.perf_counter() - t0
                with lock:
                    counters["accepted"] += 1
                    counters["bytes"] += len(payload)
                    probe_lat.append(dt)
                assert gzip.decompress(out.output) == payload

        with _STAGES.stage("saturate", threads=flood_threads + 1):
            t_start = time.perf_counter()
            threads = [threading.Thread(target=bulk_client, args=(w,))
                       for w in range(flood_threads)]
            threads.append(threading.Thread(target=probe_client))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - t_start

        stats = svc.stats()

    offered = flood_threads * flood_jobs + probe_jobs
    saturation_mbps = counters["bytes"] / 1e6 / elapsed if elapsed else 0.0
    results = {
        "saturation_mbps": round(saturation_mbps, 3),
        "accepted_per_s": round(counters["accepted"] / elapsed, 2)
        if elapsed else 0.0,
    }
    latency = {
        "interactive_quiet_p99_ms": round(_p99(quiet) * 1e3, 3),
        "interactive_loaded_p99_ms": round(_p99(probe_lat) * 1e3, 3),
        "bulk_loaded_p99_ms": round(_p99(bulk_lat) * 1e3, 3),
    }
    return {
        "bench": "e20_service_load",
        "quick": quick,
        "offered": offered,
        "accepted": counters["accepted"],
        "shed": counters["shed"],
        "shed_ratio": round(counters["shed"] / offered, 4),
        "batches": stats.batches,
        "results": results,
        "latency": latency,
    }


def build_table(data: dict) -> Table:
    table = Table(headers=["metric", "value"])
    table.add("offered requests", data["offered"])
    table.add("accepted", data["accepted"])
    table.add("shed (retryable)", data["shed"])
    table.add("saturation MB/s", data["results"]["saturation_mbps"])
    table.add("accepted/s", data["results"]["accepted_per_s"])
    table.add("batches", data["batches"])
    for key, value in data["latency"].items():
        table.add(key.replace("_", " "), value)
    return table


def test_e20_service_load(benchmark):
    data = benchmark.pedantic(run_bench, args=(True,), rounds=1,
                              iterations=1)
    report("e20_service_load", build_table(data),
           "E20: serving stack at saturation "
           "(bulk flood + interactive probes, 2 chips)",
           notes="overload sheds with retry-after instead of queueing "
                 "without bound; the high FIFO shields interactive p99 "
                 "from the bulk backlog",
           stages=_STAGES)
    assert data["shed"] > 0                      # admission control bit
    assert data["accepted"] > 0
    assert data["results"]["saturation_mbps"] > 0
    loaded = data["latency"]["interactive_loaded_p99_ms"]
    bulk = data["latency"]["bulk_loaded_p99_ms"]
    if loaded and bulk:
        # The high FIFO must not be slower than the bulk queue it
        # preempts (batch-granularity preemption, so a generous bound).
        assert loaded <= 3 * bulk


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller flood (CI smoke)")
    parser.add_argument("--no-write", action="store_true",
                        help="print results without updating the JSON")
    parser.add_argument("--out", type=pathlib.Path, default=RESULT_PATH,
                        help="output JSON path (default repo root)")
    args = parser.parse_args(argv)

    data = run_bench(quick=args.quick)
    print(build_table(data).render("E20: service under load"))
    if not args.no_write:
        args.out.write_text(json.dumps(data, indent=2) + "\n")
        print(f"wrote {args.out}")
        print(f"stages: {_STAGES.write('e20_service_load')}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
