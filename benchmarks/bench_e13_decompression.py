"""E13 — decompression: engine throughput and speedup over software.

Decompression is the more frequent operation in read-heavy systems; the
engine model measures output-side rate on real bitstreams per corpus
component, against the calibrated software inflate rate.
"""

from __future__ import annotations

from repro.core.metrics import Table
from repro.deflate.compress import deflate
from repro.nx.params import POWER9, Z15
from repro.perf.cost import SoftwareCostModel
from repro.workloads.corpus import build_corpus

from _common import report, resolve_engine


def compute() -> tuple[Table, dict]:
    corpus = build_corpus("quick")
    p9 = resolve_engine("nx", machine=POWER9)
    z15 = resolve_engine("nx", machine=Z15)
    sw = SoftwareCostModel(POWER9)
    table = Table(headers=["component", "P9 GB/s", "z15 GB/s",
                           "sw MB/s", "P9 speedup"])
    speedups = []
    for name, data in corpus.items():
        payload = deflate(data, level=6).data
        r_p9 = p9.decompress(payload, fmt="raw").engine_result
        r_z15 = z15.decompress(payload, fmt="raw").engine_result
        sw_rate = sw.decompress_rate_mbps()
        gain = r_p9.throughput_gbps * 1000 / sw_rate
        table.add(name, r_p9.throughput_gbps, r_z15.throughput_gbps,
                  sw_rate, gain)
        speedups.append(gain)
    p9.close()
    z15.close()
    return table, {"speedups": speedups}


def test_e13_decompression(benchmark):
    table, extra = benchmark.pedantic(compute, rounds=1, iterations=1)
    report("e13_decompression", table,
           "E13: decompression throughput (output-side) per component")
    # Decompression offload gains are large but smaller than compression
    # (software inflate is ~10x faster than deflate).
    assert all(40 < gain < 130 for gain in extra["speedups"])


if __name__ == "__main__":
    table, _ = compute()
    print(table.render("E13: decompression"))
