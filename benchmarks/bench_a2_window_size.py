"""Ablation A2 — LZ77 history window size vs compression ratio.

DEFLATE fixes the architectural window at 32 KB; this ablation shows
what the hardware's window SRAM buys by sweeping the modelled window
down, justifying the on-chip 32 KB history buffer.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.metrics import Table, human_bytes
from repro.nx.dht import DhtStrategy
from repro.nx.params import POWER9
from repro.workloads.generators import generate

from _common import report, resolve_engine

WINDOWS = [1024, 4096, 8192, 16384, 32768]
SIZE = 131072


def compute() -> tuple[Table, list]:
    # Database pages repeat their layout at page distance: window size
    # directly controls cross-page match reach.
    data = generate("database_pages", SIZE, seed=66)
    table = Table(headers=["window", "ratio", "match bytes %"])
    ratios = []
    for window in WINDOWS:
        params = replace(POWER9.engine, window_bytes=window)
        with resolve_engine("nx", engine=params) as backend:
            result = backend.compress(
                data, strategy=DhtStrategy.DYNAMIC,
                fmt="raw").engine_result
        coverage = 100.0 * result.stats.match_bytes / SIZE
        table.add(human_bytes(window), result.ratio, coverage)
        ratios.append(result.ratio)
    return table, ratios


def test_a2_window_size(benchmark):
    table, ratios = benchmark.pedantic(compute, rounds=1, iterations=1)
    report("a2_window_size", table,
           "A2 (ablation): history window size vs ratio (database pages)")
    # Bigger windows help overall; tiny local dips are possible because
    # the greedy matcher may prefer a longer-but-farther match whose
    # distance code costs more bits.
    for prev, cur in zip(ratios, ratios[1:]):
        assert cur > prev * 0.97
    assert ratios[-1] > ratios[0] * 1.15


if __name__ == "__main__":
    table, _ = compute()
    print(table.render("A2: window size"))
