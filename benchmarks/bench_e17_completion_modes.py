"""E17 — completion notification: poll vs interrupt vs wait.

For each request size: observed latency and CPU cycles burned per mode,
plus the policy crossover.  This is the 'how does software find out'
half of the invocation-overhead story (E4 covers 'how does software
ask').
"""

from __future__ import annotations

from repro.core.metrics import Table, human_bytes
from repro.nx.params import POWER9
from repro.perf.completion import CompletionMode, CompletionModel

from _common import report

SIZES = [4 << 10, 64 << 10, 1 << 20, 16 << 20]


def compute() -> tuple[Table, dict]:
    model = CompletionModel(POWER9)
    table = Table(headers=["buffer", "mode", "latency us", "cpu burn us",
                           "best"])
    bests = {}
    for size in SIZES:
        costs = model.costs(size)
        best = model.best_mode(size)
        bests[size] = best
        for mode in CompletionMode:
            cost = costs[mode]
            table.add(human_bytes(size), mode.value,
                      cost.latency_seconds * 1e6,
                      cost.cpu_burn_seconds * 1e6,
                      "*" if mode is best else "")
    return table, {"bests": bests,
                   "crossover": model.crossover_bytes()}


def test_e17_completion_modes(benchmark):
    table, extra = benchmark.pedantic(compute, rounds=3, iterations=1)
    report("e17_completion_modes", table,
           "E17: completion notification trade-off (latency + CPU burn, "
           "equal weight)",
           notes=f"wait-to-interrupt crossover (equal weight): "
                 f"{human_bytes(extra['crossover'])}")
    bests = extra["bests"]
    # Small/medium: the wait facility wins; large: interrupt wins.
    assert bests[4 << 10] is CompletionMode.WAIT
    assert bests[16 << 20] is CompletionMode.INTERRUPT
    assert 4096 < extra["crossover"] < (64 << 20)


if __name__ == "__main__":
    table, _ = compute()
    print(table.render("E17: completion modes"))
