"""E15 — multi-chip routing under imbalanced load.

A 4-chip system where one chip generates most of the compression work:
local-only routing saturates that chip's engine while three idle;
load-aware routing recovers the aggregate capacity for one cross-chip
hop of extra latency.  This is the system-integration behaviour behind
the linear aggregate-scaling claims (E8) holding in practice.
"""

from __future__ import annotations

from repro.core.metrics import Table
from repro.nx.params import POWER9, Topology
from repro.perf.routing import policy_comparison

from _common import report

TOPOLOGY = Topology(machine=POWER9, chips_per_drawer=4, drawers=1)
IMBALANCED = [1.6, 0.1, 0.1, 0.1]  # chip 0 wants 160% of one engine
DURATION = 0.3


def compute() -> tuple[Table, dict]:
    results = policy_comparison(TOPOLOGY, IMBALANCED,
                                duration_s=DURATION)
    table = Table(headers=["policy", "GB/s", "mean us", "p99 us",
                           "remote %"])
    for policy, res in results.items():
        table.add(policy, res.throughput_gbps, res.mean_latency * 1e6,
                  res.percentile(99) * 1e6, 100 * res.remote_fraction)
    return table, results


def test_e15_routing(benchmark):
    table, results = benchmark.pedantic(compute, rounds=1, iterations=1)
    report("e15_routing", table,
           "E15: routing policy under imbalanced load "
           "(4 chips, one hot source)",
           notes="local-only saturates the hot chip; load-aware routing "
                 "recovers the idle engines for one fabric hop")
    local = results["local"]
    balanced = results["least_loaded"]
    # The hot chip's overload makes local-only latency explode.
    assert balanced.mean_latency < 0.5 * local.mean_latency
    # Load-aware serves at least as many bytes.
    assert balanced.throughput_gbps >= local.throughput_gbps
    # And it actually uses remote engines.
    assert balanced.remote_fraction > 0.2


if __name__ == "__main__":
    table, _ = compute()
    print(table.render("E15: routing"))
