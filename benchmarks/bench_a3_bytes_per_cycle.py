"""Ablation A3 — scan-pipeline width: the POWER9 -> z15 design walk.

Sweeps bytes-per-cycle (with banks scaled to keep conflicts in check) to
show throughput scaling and where bank conflicts erode the ideal slope —
the engineering trade that separates the two product generations.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.metrics import Table
from repro.nx.dht import DhtStrategy
from repro.nx.params import POWER9
from repro.workloads.generators import generate

from _common import report, resolve_engine

WIDTHS = [2, 4, 8, 16]
SIZE = 131072


def compute() -> tuple[Table, list]:
    data = generate("markov_text", SIZE, seed=77)
    table = Table(headers=["bytes/cycle", "banks", "GB/s",
                           "stall cycles %", "ratio"])
    rates = []
    for width in WIDTHS:
        params = replace(POWER9.engine,
                         scan_bytes_per_cycle=width,
                         hash_banks=16 * width)
        with resolve_engine("nx", engine=params) as backend:
            result = backend.compress(
                data, strategy=DhtStrategy.DYNAMIC,
                fmt="raw").engine_result
        stall_pct = (100.0 * result.cycles.bank_stalls
                     / max(1, result.cycles.scan))
        table.add(width, params.hash_banks, result.throughput_gbps,
                  stall_pct, result.ratio)
        rates.append(result.throughput_gbps)
    return table, rates


def test_a3_bytes_per_cycle(benchmark):
    table, rates = benchmark.pedantic(compute, rounds=1, iterations=1)
    report("a3_bytes_per_cycle", table,
           "A3 (ablation): scan width scaling (banks scaled with width)")
    assert rates == sorted(rates)       # wider is faster...
    # ...but sublinearly: 8x width gives < 8x rate.
    assert rates[-1] < 8 * rates[0]
    assert rates[-1] > 2.5 * rates[0]


if __name__ == "__main__":
    table, _ = compute()
    print(table.render("A3: scan width"))
