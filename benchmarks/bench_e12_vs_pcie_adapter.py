"""E12 — on-chip accelerator vs PCIe-attached compression adapter.

The abstract's motivation: on-chip integration 'eliminates the cost and
I/O slots that would have been necessary with FPGA/ASIC based compression
adapters'.  Performance-wise the gap is the invocation overhead and the
double PCIe traversal — decisive at small sizes, converging at large.
"""

from __future__ import annotations

from repro.core.metrics import Table, human_bytes
from repro.core.plot import line_chart
from repro.nx.params import POWER9
from repro.perf.io_adapter import PcieAdapterModel, compare_onchip_vs_adapter

from _common import report

SIZES = [4 << 10, 64 << 10, 1 << 20, 16 << 20, 128 << 20]


def compute() -> tuple[Table, list, str]:
    rows = compare_onchip_vs_adapter(POWER9, SIZES)
    table = Table(headers=["buffer", "on-chip GB/s", "PCIe adapter GB/s",
                           "on-chip gain"])
    gains = []
    for size, onchip, adapter in rows:
        table.add(human_bytes(size), onchip, adapter, onchip / adapter)
        gains.append(onchip / adapter)
    figure = line_chart(
        {"on-chip": [(size, onchip) for size, onchip, _a in rows],
         "PCIe adapter": [(size, adapter) for size, _o, adapter in rows]},
        log_x=True, title="Figure E12: on-chip vs adapter throughput",
        y_label="GB/s", x_label="buffer bytes")
    return table, gains, figure


def test_e12_vs_pcie_adapter(benchmark):
    table, gains, figure = benchmark.pedantic(compute, rounds=3,
                                               iterations=1)
    adapter = PcieAdapterModel()
    report("e12_vs_pcie_adapter", table,
           "E12: on-chip NX vs PCIe-attached adapter (compression)",
           notes=f"adapter also consumes a PCIe slot, "
                 f"{adapter.params.slot_power_w:.0f} W and "
                 f"${adapter.params.card_cost_usd:.0f}; on-chip cost is "
                 "~zero (abstract)",
           figure=figure)
    assert all(gain > 1.0 for gain in gains)   # on-chip always wins
    assert gains[0] > 5.0                      # decisively at small sizes
    assert gains == sorted(gains, reverse=True)


if __name__ == "__main__":
    table, _gains, figure = compute()
    print(table.render("E12: vs PCIe adapter"))
    print(figure)
