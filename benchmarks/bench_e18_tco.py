"""E18 — fleet economics: what the on-chip engines are worth per month.

Quantifies the abstract's cost claims for a range of fleet sizes:
storage saved, core-hours returned to applications, and the PCIe
adapter fleet (capex + watts + slots) that on-chip integration avoids.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.metrics import Table
from repro.nx.params import POWER9
from repro.perf.tco import FleetAssumptions, TcoModel

from _common import report

VOLUMES_TB_PER_DAY = [10.0, 100.0, 1000.0]


def compute() -> tuple[Table, list]:
    table = Table(headers=["TB/day", "storage $/mo", "core-hrs/mo",
                           "core $/mo", "adapters avoided",
                           "adapter capex $", "recurring $/mo"])
    reports = []
    for volume in VOLUMES_TB_PER_DAY:
        assumptions = replace(FleetAssumptions(),
                              compressed_tb_per_day=volume)
        model = TcoModel(POWER9, assumptions=assumptions)
        rep = model.report()
        table.add(volume, rep.storage_usd_per_month,
                  rep.core_hours_per_month, rep.core_usd_per_month,
                  rep.adapters_avoided, rep.adapter_capex_usd,
                  rep.recurring_usd_per_month)
        reports.append(rep)
    return table, reports


def test_e18_tco(benchmark):
    table, reports = benchmark.pedantic(compute, rounds=3, iterations=1)
    report("e18_tco", table,
           "E18: monthly fleet savings from on-chip compression "
           "(defaults: ratio 3.0, $20/TB-mo, $0.04/core-hr)",
           notes="the accelerator itself costs <0.5% chip area — "
                 "'practically zero hardware cost' (abstract)")
    # Savings scale linearly with volume.
    assert reports[1].storage_usd_per_month == \
        10 * reports[0].storage_usd_per_month
    # Core-hour savings are substantial: zlib -6 at ~18 MB/s/core means
    # >1000 core-hours/month already at 100 TB/day.
    assert reports[1].core_hours_per_month > 1000
    # The adapter alternative needs real hardware at high volume.
    assert reports[2].adapters_avoided >= 2


if __name__ == "__main__":
    table, _ = compute()
    print(table.render("E18: TCO"))
