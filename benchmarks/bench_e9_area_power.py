"""E9 — area and energy efficiency (abstract: <0.5% chip area).

The accelerator-vs-cores efficiency table: area fraction, throughput per
mm^2, energy per byte, and CPU cycles returned to applications.
"""

from __future__ import annotations

from repro.core.metrics import Table
from repro.nx.params import POWER9, Z15
from repro.perf.energy import EnergyModel

from _common import report


def compute() -> tuple[Table, dict]:
    table = Table(headers=["machine", "area %", "accel GB/s/mm2",
                           "cores GB/s/mm2", "area gain",
                           "accel nJ/B", "sw nJ/B", "energy gain"])
    headline = {}
    for machine in (POWER9, Z15):
        model = EnergyModel(machine)
        area = model.area_comparison()
        energy = model.energy_comparison()
        table.add(machine.name, 100 * machine.area_fraction,
                  area.accelerator_gbps_per_mm2,
                  area.cores_gbps_per_mm2,
                  area.efficiency_gain,
                  energy.accelerator_nj_per_byte,
                  energy.software_nj_per_byte,
                  energy.efficiency_gain)
        headline[machine.name] = {
            "area_fraction": machine.area_fraction,
            "energy_gain": energy.efficiency_gain,
            "area_gain": area.efficiency_gain,
        }
    return table, headline


def test_e9_area_power(benchmark):
    table, headline = benchmark.pedantic(compute, rounds=3, iterations=1)
    report("e9_area_power", table,
           "E9: area and energy efficiency, accelerator vs core complex",
           notes="paper: accelerator uses <0.5% of chip area yet replaces "
                 "the whole chip's compression throughput")
    for machine in ("POWER9", "z15"):
        assert headline[machine]["area_fraction"] < 0.005
        assert headline[machine]["energy_gain"] > 100
        assert headline[machine]["area_gain"] > 100


if __name__ == "__main__":
    table, _ = compute()
    print(table.render("E9: area/power"))
