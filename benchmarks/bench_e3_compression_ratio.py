"""E3 — compression-ratio table: NX strategies vs zlib levels per corpus.

The paper's ratio table: the hardware (greedy, candidate-limited LZ77 +
hardware DHT) lands close to software zlib -6, clearly better than a
fast software level, and the DHT strategies order FIXED < CANNED <
DYNAMIC.  Real bitstreams are produced and measured — nothing here is
a calibrated constant.
"""

from __future__ import annotations

from repro.core.metrics import Table
from repro.core.plot import bar_chart
from repro.nx.dht import DhtStrategy
from repro.workloads.corpus import build_corpus

from _common import report, resolve_engine

CORPUS = "silesia-like"
SCALE = 0.25  # keep the pure-Python codec affordable per bench round


def compute() -> tuple[Table, dict]:
    corpus = build_corpus(CORPUS, scale=SCALE)
    levels = {lvl: resolve_engine("software", level=lvl)
              for lvl in (1, 6, 9)}
    nx = resolve_engine("nx")
    table = Table(headers=["component", "zlib -1", "zlib -6", "zlib -9",
                           "NX fixed", "NX canned", "NX dht"])
    totals = {key: 0 for key in
              ("in", "z1", "z6", "z9", "fixed", "canned", "dht")}
    for name, data in corpus.items():
        z1 = len(levels[1].compress(data, fmt="raw").output)
        z6 = len(levels[6].compress(data, fmt="raw").output)
        z9 = len(levels[9].compress(data, fmt="raw").output)
        fx = len(nx.compress(data, strategy=DhtStrategy.FIXED,
                             fmt="raw").output)
        cn = len(nx.compress(data, strategy=DhtStrategy.CANNED,
                             fmt="raw").output)
        dh = len(nx.compress(data, strategy=DhtStrategy.DYNAMIC,
                             fmt="raw").output)
        n = len(data)
        table.add(name, n / z1, n / z6, n / z9, n / fx, n / cn, n / dh)
        totals["in"] += n
        for key, value in (("z1", z1), ("z6", z6), ("z9", z9),
                           ("fixed", fx), ("canned", cn), ("dht", dh)):
            totals[key] += value
    table.add("TOTAL", *(totals["in"] / totals[k]
                         for k in ("z1", "z6", "z9", "fixed", "canned",
                                   "dht")))
    nx.close()
    for backend in levels.values():
        backend.close()
    return table, totals


def test_e3_compression_ratio(benchmark):
    table, totals = benchmark.pedantic(compute, rounds=1, iterations=1)
    nx = totals["in"] / totals["dht"]
    z6 = totals["in"] / totals["z6"]
    z9 = totals["in"] / totals["z9"]
    figure = bar_chart(
        {"zlib -9": totals["in"] / totals["z9"],
         "zlib -6": totals["in"] / totals["z6"],
         "NX dht": totals["in"] / totals["dht"],
         "zlib -1": totals["in"] / totals["z1"],
         "NX canned": totals["in"] / totals["canned"],
         "NX fixed": totals["in"] / totals["fixed"]},
        title="Figure E3: corpus-total compression ratio", unit="x")
    report("e3_compression_ratio", table,
           f"E3: compression ratio on the {CORPUS} corpus",
           notes=f"NX dht = {nx:.3f} vs zlib -6 = {z6:.3f} "
                 f"({100 * nx / z6:.1f}% of -6; paper: 'slightly worse "
                 "than gzip -6')",
           figure=figure)
    assert z9 >= z6 * 0.999
    assert nx > 0.90 * z6            # NX close to software -6
    assert totals["dht"] <= totals["canned"] <= totals["fixed"]


if __name__ == "__main__":
    table, _ = compute()
    print(table.render("E3: compression ratios"))
