"""E1 — single-accelerator speedup over one-core zlib (abstract: 388x).

Regenerates the table behind the abstract's headline: one NX engine
versus one POWER9 core running zlib at levels 1/6/9, across buffer
sizes.  The 388x figure is the level-6, large-buffer cell.
"""

from __future__ import annotations

from repro.core.metrics import Table, human_bytes
from repro.core.plot import line_chart
from repro.nx.params import POWER9
from repro.perf.timing import OffloadTimingModel

from _common import report

SIZES = [64 << 10, 256 << 10, 1 << 20, 8 << 20, 64 << 20]
LEVELS = [1, 6, 9]


def compute() -> tuple[Table, float, str]:
    timing = OffloadTimingModel(POWER9)
    table = Table(headers=["buffer", "vs zlib -1", "vs zlib -6",
                           "vs zlib -9"])
    headline = 0.0
    series = {f"vs -{level}": [] for level in LEVELS}
    for size in SIZES:
        speedups = [timing.speedup(size, level) for level in LEVELS]
        table.add(human_bytes(size), *speedups)
        for level, value in zip(LEVELS, speedups):
            series[f"vs -{level}"].append((size, value))
        if size == 8 << 20:
            headline = speedups[1]
    figure = line_chart(series, log_x=True,
                        title="Figure E1: speedup vs one core",
                        y_label="speedup", x_label="buffer bytes")
    return table, headline, figure


def test_e1_single_core_speedup(benchmark):
    (table, headline, figure) = benchmark.pedantic(compute, rounds=3,
                                                    iterations=1)
    report("e1_single_core_speedup", table,
           "E1: one NX accelerator vs one POWER9 core (speedup factor)",
           notes=f"headline (8 MB, zlib -6): {headline:.0f}x "
                 "(paper: 388x)",
           figure=figure)
    assert 350 < headline < 420
    # Speedup grows with buffer size (overhead amortization).
    first = float(table.rows[0][2])
    last = float(table.rows[-1][2])
    assert last > first


if __name__ == "__main__":
    table, headline, figure = compute()
    print(table.render("E1: single-core speedup"))
    print(figure)
    print(f"headline: {headline:.0f}x")
