"""Ablation A1 — hash-table candidate depth (ways) vs ratio and rate.

The design choice DESIGN.md calls out: the hardware evaluates a handful
of candidates per position instead of software's long chains.  Sweeping
the way count shows diminishing ratio returns — the basis for the
product's small-ways choice.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.metrics import Table
from repro.nx.dht import DhtStrategy
from repro.nx.params import POWER9
from repro.workloads.generators import generate

from _common import report, resolve_engine

WAYS = [1, 2, 4, 8, 16]
SIZE = 65536


def compute() -> tuple[Table, list]:
    data = generate("markov_text", SIZE, seed=55)
    table = Table(headers=["ways", "ratio", "GB/s", "probes/byte"])
    ratios = []
    for ways in WAYS:
        params = replace(POWER9.engine, hash_ways=ways)
        with resolve_engine("nx", engine=params) as backend:
            result = backend.compress(
                data, strategy=DhtStrategy.DYNAMIC,
                fmt="raw").engine_result
        table.add(ways, result.ratio, result.throughput_gbps,
                  result.stats.chain_probes / SIZE)
        ratios.append(result.ratio)
    return table, ratios


def test_a1_match_candidates(benchmark):
    table, ratios = benchmark.pedantic(compute, rounds=1, iterations=1)
    report("a1_match_candidates", table,
           "A1 (ablation): match-candidate depth vs compression ratio")
    assert ratios == sorted(ratios)  # more candidates never hurt ratio
    # Diminishing returns per added candidate: the 8->16 step adds 8
    # candidates yet gains less per candidate than the 1->2 step.
    per_cand_first = ratios[1] - ratios[0]
    per_cand_last = (ratios[4] - ratios[3]) / 8.0
    assert per_cand_last < 0.5 * max(per_cand_first, 1e-9) + 1e-9


if __name__ == "__main__":
    table, _ = compute()
    print(table.render("A1: candidate depth"))
