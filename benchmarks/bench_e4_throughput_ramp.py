"""E4 — effective throughput vs buffer size (the invocation-overhead ramp).

The figure every offload paper shows: small requests are dominated by the
submit/dispatch/complete overhead; throughput ramps to the engine's line
rate as buffers grow.  Includes the software line for the break-even
crossing.
"""

from __future__ import annotations

from repro.core.metrics import Table, human_bytes
from repro.core.plot import line_chart
from repro.nx.params import POWER9, Z15
from repro.perf.timing import OffloadTimingModel

from _common import report

SIZES = [1 << s for s in range(10, 27, 2)]  # 1 KB .. 64 MB


def compute() -> tuple[Table, dict]:
    p9 = OffloadTimingModel(POWER9)
    z15 = OffloadTimingModel(Z15)
    table = Table(headers=["buffer", "P9 NX GB/s", "z15 GB/s",
                           "software GB/s"])
    series = {"p9": [], "z15": [], "sw": []}
    for size in SIZES:
        p9_gbps = p9.effective_throughput_gbps(size)
        z15_gbps = z15.effective_throughput_gbps(size)
        sw_gbps = (size / 1e9) / p9.software_latency(size, 6)
        table.add(human_bytes(size), p9_gbps, z15_gbps, sw_gbps)
        series["p9"].append(p9_gbps)
        series["z15"].append(z15_gbps)
        series["sw"].append(sw_gbps)
    return table, series


def test_e4_throughput_ramp(benchmark):
    table, series = benchmark.pedantic(compute, rounds=3, iterations=1)
    be = OffloadTimingModel(POWER9).break_even_bytes(6)
    figure = line_chart(
        {"P9 NX": list(zip(SIZES, series["p9"])),
         "z15": list(zip(SIZES, series["z15"])),
         "software": list(zip(SIZES, series["sw"]))},
        log_x=True, title="Figure E4: throughput vs buffer size",
        y_label="GB/s", x_label="buffer bytes")
    report("e4_throughput_ramp", table,
           "E4: effective compression throughput vs buffer size",
           notes=f"software break-even: {human_bytes(be)}; "
                 "ramp saturates at the engine line rate",
           figure=figure)
    # Monotone ramp saturating near the calibrated rates.
    assert series["p9"] == sorted(series["p9"])
    assert series["p9"][-1] > 6.5
    assert series["z15"][-1] > 13.0
    # Small buffers lose most of the line rate to overhead.
    assert series["p9"][0] < 0.1 * series["p9"][-1]


if __name__ == "__main__":
    table, _ = compute()
    print(table.render("E4: throughput ramp"))
