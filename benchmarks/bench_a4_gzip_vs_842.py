"""Ablation A4 — gzip engines vs the in-house 842 engines.

The paper's gzip engines exist because 842 (the NX's earlier
memory-compression format) leaves ratio on the table.  This bench
measures both engines on the same data: 842 streams faster (no Huffman
stage, no DHT), gzip compresses meaningfully better everywhere except
already-incompressible data.
"""

from __future__ import annotations

from repro.core.metrics import Table
from repro.nx.dht import DhtStrategy
from repro.workloads.generators import generate

from _common import report, resolve_engine

DATASETS = ["markov_text", "json_records", "database_pages",
             "log_lines", "random_bytes"]
SIZE = 49152


def compute() -> tuple[Table, dict]:
    gzip_engine = resolve_engine("nx")
    e842_engine = resolve_engine("842")
    table = Table(headers=["data", "gzip ratio", "842 ratio",
                           "gzip GB/s", "842 GB/s"])
    wins = {"ratio": 0, "rate": 0, "n": 0}
    for name in DATASETS:
        data = generate(name, SIZE, seed=41)
        gz = gzip_engine.compress(data, strategy=DhtStrategy.DYNAMIC,
                                  fmt="raw").engine_result
        e8 = e842_engine.compress(data).engine_result
        table.add(name, gz.ratio, e8.ratio, gz.throughput_gbps,
                  e8.throughput_gbps)
        wins["n"] += 1
        wins["ratio"] += int(gz.ratio >= e8.ratio * 0.999)
        wins["rate"] += int(e8.throughput_gbps > gz.throughput_gbps)
    gzip_engine.close()
    e842_engine.close()
    return table, wins


def test_a4_gzip_vs_842(benchmark):
    table, wins = benchmark.pedantic(compute, rounds=1, iterations=1)
    report("a4_gzip_vs_842", table,
           "A4 (ablation): gzip engine vs 842 engine on the same data",
           notes="842: no Huffman stage -> line-rate streaming, weaker "
                 "ratio; the gap is the gzip engines' reason to exist")
    assert wins["ratio"] == wins["n"]   # gzip never loses on ratio
    assert wins["rate"] == wins["n"]    # 842 always streams faster


if __name__ == "__main__":
    table, _ = compute()
    print(table.render("A4: gzip vs 842"))
