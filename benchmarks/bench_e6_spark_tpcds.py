"""E6 — end-to-end Apache Spark TPC-DS speedup (abstract: 23%).

Per-stage runtimes under the software codec vs NX offload, composed into
the end-to-end job time.
"""

from __future__ import annotations

from repro.core.metrics import Table
import pytest

from repro.nx.params import POWER9, Z15
from repro.workloads.spark import SparkJobModel, tpcds_like_profile

from _common import report


def compute() -> tuple[Table, dict]:
    model = SparkJobModel(machine=POWER9)
    result = model.run()
    table = Table(headers=["stage", "software s", "offload s", "speedup"])
    for timing in result.timings:
        table.add(timing.stage.name, timing.software_seconds,
                  timing.offload_seconds, timing.speedup)
    table.add("END-TO-END", result.software_seconds,
              result.offload_seconds, result.speedup)
    z15_result = SparkJobModel(machine=Z15).run()
    return table, {"p9": result, "z15": z15_result}


def test_e6_spark_tpcds(benchmark):
    table, results = benchmark.pedantic(compute, rounds=3, iterations=1)
    speedup = results["p9"].speedup
    report("e6_spark_tpcds", table,
           "E6: Spark TPC-DS-like job, software codec vs NX offload "
           "(POWER9, 40 executor cores)",
           notes=f"end-to-end speedup: {100 * (speedup - 1):.1f}% "
                 f"(paper: 23%); codec share of CPU: "
                 f"{100 * results['p9'].codec_share:.1f}%")
    assert 1.18 < speedup < 1.30
    # Shuffle-heavy stages gain the most.
    shuffles = {t.stage.name: t.speedup for t in results["p9"].timings}
    assert shuffles["join-1"] > shuffles["output"]


def test_e6_des_cross_validation(benchmark):
    """An independent discrete-event scheduler reproduces the analytic
    end-to-end speedup — tasks, cores, barriers and per-node engine
    queueing included."""
    from repro.workloads.spark_sim import ClusterSpec, SparkDagSim

    def run():
        sim = SparkDagSim(machine=POWER9,
                          cluster=ClusterSpec(nodes=4, cores_per_node=10))
        return sim.speedup(), sim.run(offload=True)

    (simulated, outcome) = benchmark.pedantic(run, rounds=1, iterations=1)
    analytic = SparkJobModel(machine=POWER9).run().speedup
    assert simulated == pytest.approx(analytic, rel=0.05)
    # The shared engine is far from saturated at this codec share.
    assert outcome.accel_utilization(4) < 0.1


def test_e6_scaling_with_data_volume(benchmark):
    def sweep():
        return [SparkJobModel().run(tpcds_like_profile(scale_gb=s)).speedup
                for s in (0.5, 1.0, 1.7, 3.0)]

    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert speedups == sorted(speedups)


if __name__ == "__main__":
    table, _ = compute()
    print(table.render("E6: Spark TPC-DS"))
