"""E19 — diurnal trace replay: the bulk window hits the shared engine.

A compressed 'day' of RPC-sized requests with a backup window of 4 MB
bulk jobs replays against one and two engines.  The question a deployer
asks: does the latency SLO survive the bulk window, and does the second
engine (z15's headroom / a second NX) fix it?
"""

from __future__ import annotations

from repro.core.metrics import Table
from repro.core.plot import line_chart
from repro.nx.params import POWER9
from repro.workloads.replay import DiurnalSpec, diurnal_trace, replay

from _common import report

SPEC = DiurnalSpec(seed=3)


def compute() -> tuple[Table, dict]:
    trace = diurnal_trace(SPEC)
    one = replay(trace, POWER9, engines=1, buckets=10,
                 duration_s=SPEC.duration_s)
    two = replay(trace, POWER9, engines=2, buckets=10,
                 duration_s=SPEC.duration_s)
    table = Table(headers=["bucket", "requests", "1-engine p99 us",
                           "2-engine p99 us"])
    series_one, series_two = [], []
    for b1, b2 in zip(one.buckets, two.buckets):
        table.add(b1.bucket, b1.count, b1.p99_latency_s * 1e6,
                  b2.p99_latency_s * 1e6)
        series_one.append((b1.bucket, b1.p99_latency_s * 1e6))
        series_two.append((b2.bucket, b2.p99_latency_s * 1e6))
    figure = line_chart({"1 engine": series_one, "2 engines": series_two},
                        title="Figure E19: p99 latency across the day",
                        y_label="us", x_label="time bucket")
    return table, {"one": one, "two": two, "figure": figure}


def test_e19_diurnal_replay(benchmark):
    table, extra = benchmark.pedantic(compute, rounds=1, iterations=1)
    one, two = extra["one"], extra["two"]
    report("e19_diurnal_replay", table,
           "E19: diurnal trace replay (32 KB RPCs + bulk window at "
           "70-85% of the day)",
           notes=f"1-engine worst p99: "
                 f"{one.worst_bucket.p99_latency_s * 1e6:.0f} us in "
                 f"bucket {one.worst_bucket.bucket}; second engine cuts "
                 f"it to {two.worst_bucket.p99_latency_s * 1e6:.0f} us",
           figure=extra["figure"])
    # The bulk window (buckets 7-8) dominates the tail.
    assert one.worst_bucket.bucket in (7, 8)
    # A second engine removes the queueing share of the tail; what
    # remains (~one 4 MB service time, ~560 us) is head-of-line blocking,
    # which priorities (E14) address, not capacity.
    assert (two.worst_bucket.p99_latency_s
            < 0.75 * one.worst_bucket.p99_latency_s)
    assert two.worst_bucket.p99_latency_s > 500e-6
    # Outside the window, one engine is fine (quiet bucket ~ service time).
    quiet = one.buckets[2]
    assert quiet.p99_latency_s < 100e-6


if __name__ == "__main__":
    table, extra = compute()
    print(table.render("E19: diurnal replay"))
    print(extra["figure"])
