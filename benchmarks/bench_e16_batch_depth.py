"""E16 — asynchronous batch depth vs achieved throughput.

The async interface exists so one thread can keep several requests in
flight and hide invocation latency.  This closed-loop sweep shows
throughput climbing with in-flight depth until the engine saturates —
the classic queueing result behind the window-credit sizing.
"""

from __future__ import annotations

from repro.core.metrics import Table
from repro.nx.params import POWER9
from repro.perf.queueing import AcceleratorQueueSim
from repro.workloads.traces import fixed_size

from _common import report

DEPTHS = [1, 2, 4, 8, 16]
SIZE = 65536
DURATION = 0.2


def compute() -> tuple[Table, list]:
    table = Table(headers=["in-flight", "GB/s", "engine util %",
                           "mean us"])
    rates = []
    for depth in DEPTHS:
        sim = AcceleratorQueueSim(POWER9, engines=1, seed=5,
                                  size_sampler=fixed_size(SIZE))
        result = sim.run_closed(clients=depth, think_seconds=10e-6,
                                duration_s=DURATION)
        service = sim.service_seconds(SIZE)
        util = 100.0 * result.completed * service / result.sim_seconds
        table.add(depth, result.throughput_gbps, min(util, 100.0),
                  result.mean_latency * 1e6)
        rates.append(result.throughput_gbps)
    return table, rates


def test_e16_batch_depth(benchmark):
    table, rates = benchmark.pedantic(compute, rounds=1, iterations=1)
    report("e16_batch_depth", table,
           "E16: closed-loop in-flight depth vs throughput "
           "(64 KB jobs, 10 us think time)",
           notes="depth 1 leaves the engine idle during think/submit; "
                 "a few in-flight requests saturate it")
    assert rates == sorted(rates)          # throughput monotone in depth
    assert rates[2] > 1.5 * rates[0]       # depth 4 >> depth 1
    assert rates[-1] < rates[-2] * 1.2     # saturated by depth 16


if __name__ == "__main__":
    table, _ = compute()
    print(table.render("E16: batch depth"))
