"""Hot-path kernel throughput: deflate, inflate, matcher, checksums.

Unlike the e-series benches (which report *modelled* accelerator rates),
this bench measures the **wall-clock** throughput of the pure-Python
codec kernels themselves, so kernel regressions show up as numbers, not
vibes.  Results are written to ``BENCH_hotpath.json`` at the repo root;
``tools/perf_gate.py`` compares a fresh run against that committed
baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # full
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_hotpath.py --no-write # print only

The ``before`` section of the JSON preserves the pre-kernel-rewrite
numbers the speedup claims are made against; ``--keep-before`` (default)
carries it forward from the existing file.

The parallel-deflate sweep reports *cold* (first call, pool spin-up
included) and *warm* (persistent pool reused) rates per worker count;
``meta.cpus`` records the host's core count so scaling numbers are read
in context.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

from _common import StageRecorder
from repro.deflate.checksums import adler32, crc32
from repro.deflate.compress import deflate
from repro.deflate.inflate import inflate
from repro.deflate.matcher import tokenize
from repro.workloads.corpus import corpus_bytes

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_hotpath.json"

_MB = 1e6

#: Span-timed stages (private tracer; survives across run_bench calls so
#: ``main`` can persist the per-stage breakdown).
_STAGES = StageRecorder()


def _best_of(fn, repeats: int, name: str = "kernel") -> float:
    """Best wall-clock seconds over ``repeats`` runs (noise floor)."""
    return _STAGES.best_of(fn, repeats, name=name)


def _mbps(nbytes: int, seconds: float) -> float:
    return nbytes / _MB / seconds if seconds > 0 else 0.0


def run_bench(quick: bool = False, level: int = 6,
              workers: tuple[int, ...] = (1, 2, 4)) -> dict:
    """Measure every kernel; returns the results dict."""
    scale = 0.25 if quick else 1.0
    repeats = 1 if quick else 7  # deep best-of: the box's timing is noisy
    corpus = corpus_bytes("calgary-like", scale=scale)
    payload = deflate(corpus, level=level).data

    results: dict = {}
    results["deflate_l6_mbps"] = _mbps(
        len(corpus), _best_of(lambda: deflate(corpus, level=level), repeats,
                              name="deflate_l6"))
    results["inflate_mbps"] = _mbps(
        len(corpus), _best_of(lambda: inflate(payload), repeats,
                              name="inflate"))
    results["tokenize_l6_mbps"] = _mbps(
        len(corpus), _best_of(lambda: tokenize(corpus, level), repeats,
                              name="tokenize_l6"))
    results["crc32_mbps"] = _mbps(
        len(corpus), _best_of(lambda: crc32(corpus), repeats,
                              name="crc32"))
    results["adler32_mbps"] = _mbps(
        len(corpus), _best_of(lambda: adler32(corpus), repeats,
                              name="adler32"))

    # Chunked-parallel compressor scaling (absent on pre-kernel trees).
    # Two numbers per worker count: *cold* includes spinning up the
    # persistent process pool (what a one-shot caller pays), *warm*
    # reuses it (steady state).  The committed scalar sweep stays the
    # warm one — that is the rate the execution layer actually serves.
    try:
        from repro.deflate.parallel import parallel_deflate
        from repro.exec.pool import shutdown_default_pool
    except ImportError:
        parallel_deflate = None
    chunk_size = None
    if parallel_deflate is not None:
        # The default 128 KiB chunk swallows the whole bench corpus in
        # one piece, which degenerates to the serial path at any worker
        # count; slice it so the widest sweep gets two chunks per
        # worker.
        chunk_size = max(1 << 14, len(corpus) // (2 * max(workers)))
        cold_scaling: dict[str, float] = {}
        warm_scaling: dict[str, float] = {}
        for nworkers in workers:
            shutdown_default_pool()
            run = lambda: parallel_deflate(corpus, level=level,  # noqa: E731
                                           chunk_size=chunk_size,
                                           workers=nworkers)
            cold_s = _best_of(run, 1,
                              name=f"parallel_deflate_cold_{nworkers}w")
            warm_s = _best_of(run, repeats,
                              name=f"parallel_deflate_warm_{nworkers}w")
            cold_scaling[str(nworkers)] = round(
                _mbps(len(corpus), cold_s), 3)
            warm_scaling[str(nworkers)] = round(
                _mbps(len(corpus), warm_s), 3)
        shutdown_default_pool()
        results["parallel_deflate_mbps"] = warm_scaling
        results["parallel_deflate_cold_mbps"] = cold_scaling

    # Speculative parallel-inflate scaling, on the *same* corpus and
    # scale as the deflate sweep so gate comparisons are apples-to-
    # apples.  Rates are output (uncompressed) MB/s — the number a
    # scan-side consumer feels.
    inflate_chunk = None
    try:
        from repro.deflate.containers import gzip_compress
        from repro.deflate.parallel_inflate import parallel_inflate
        from repro.exec.pool import shutdown_default_pool
    except ImportError:
        parallel_inflate = None
    if parallel_inflate is not None:
        gzip_payload = gzip_compress(corpus, level=level)
        # Floor at the engine minimum (4 KiB), not the deflate floor:
        # compressed payloads are ~4x smaller than the corpus, and the
        # quick run must still produce two chunks per worker or the
        # sweep silently degenerates to the serial path.
        inflate_chunk = max(4096,
                            len(gzip_payload) // (2 * max(workers)))
        cold_inflate: dict[str, float] = {}
        warm_inflate: dict[str, float] = {}
        for nworkers in workers:
            shutdown_default_pool()
            run = lambda: parallel_inflate(gzip_payload,  # noqa: E731
                                           "gzip",
                                           chunk_size=inflate_chunk,
                                           workers=nworkers)
            cold_s = _best_of(run, 1,
                              name=f"parallel_inflate_cold_{nworkers}w")
            warm_s = _best_of(run, repeats,
                              name=f"parallel_inflate_warm_{nworkers}w")
            cold_inflate[str(nworkers)] = round(
                _mbps(len(corpus), cold_s), 3)
            warm_inflate[str(nworkers)] = round(
                _mbps(len(corpus), warm_s), 3)
        shutdown_default_pool()
        results["parallel_inflate_mbps"] = warm_inflate
        results["parallel_inflate_cold_mbps"] = cold_inflate

    meta = {
        "corpus": "calgary-like",
        "scale": scale,
        "bytes": len(corpus),
        "compressed_bytes": len(payload),
        "level": level,
        "quick": quick,
        "python": sys.version.split()[0],
        # Scaling claims are meaningless without knowing the host: a
        # 1-CPU container cannot show multi-worker speedup no matter
        # how good the pool is, and the gate reads this field.
        "cpus": os.cpu_count() or 1,
        "parallel_chunk_bytes": chunk_size,
        # Inflate rows share the deflate corpus/scale and carry their
        # own cpus field so a gate comparing inflate sweeps across
        # hosts never has to guess which deflate meta applied.
        "inflate": {
            "corpus": "calgary-like",
            "scale": scale,
            "bytes": len(corpus),
            "gzip_bytes": (len(gzip_payload)
                           if parallel_inflate is not None else None),
            "cpus": os.cpu_count() or 1,
            "parallel_chunk_bytes": inflate_chunk,
        },
    }
    return {"meta": meta,
            "results": {k: (v if isinstance(v, dict) else round(v, 3))
                        for k, v in results.items()}}


def render(report: dict) -> str:
    lines = [f"hot-path kernels on {report['meta']['bytes']} bytes "
             f"({report['meta']['corpus']}, level {report['meta']['level']})"]
    for key, value in report["results"].items():
        if isinstance(value, dict):
            scaled = ", ".join(f"{w}w={v}" for w, v in value.items())
            lines.append(f"  {key:24s} {scaled}")
        else:
            lines.append(f"  {key:24s} {value:10.3f} MB/s")
    before = report.get("before")
    if before:
        lines.append("  vs before:")
        for key, value in report["results"].items():
            old = before.get(key)
            if isinstance(old, (int, float)) and old and \
                    isinstance(value, (int, float)):
                lines.append(f"  {key:24s} {value / old:10.2f}x")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus, single repeat (CI smoke)")
    parser.add_argument("--no-write", action="store_true",
                        help="print results without updating the JSON")
    parser.add_argument("--record-before", action="store_true",
                        help="store this run as the 'before' reference")
    parser.add_argument("--out", type=pathlib.Path, default=RESULT_PATH,
                        help="output JSON path (default repo root)")
    args = parser.parse_args(argv)

    report = run_bench(quick=args.quick)

    existing = {}
    if args.out.exists():
        existing = json.loads(args.out.read_text())
    if args.record_before:
        report["before"] = dict(report["results"])
    elif "before" in existing:
        report["before"] = existing["before"]

    print(render(report))
    if not args.no_write:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
        print(f"stages: {_STAGES.write('hotpath')}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
