"""E11 — page-fault handling cost: touch-and-resubmit vs fault rate.

The documented protocol: the engine aborts on a translation fault, the
driver touches the page and resubmits.  This sweep measures end-to-end
latency inflation and retry counts as the fault probability rises.
"""

from __future__ import annotations

from repro.core.metrics import Table
from repro.workloads.generators import generate

from _common import report, resolve_engine

FAULT_RATES = [0.0, 0.01, 0.05, 0.1, 0.25]
JOBS = 12
SIZE = 32768


def compute() -> tuple[Table, list]:
    data = generate("json_records", SIZE, seed=44)
    table = Table(headers=["fault prob", "mean us", "faults/job",
                           "submissions/job", "fallbacks"])
    means = []
    for prob in FAULT_RATES:
        total = 0.0
        faults = 0
        submissions = 0
        fallbacks = 0
        with resolve_engine("nx", fault_probability=prob, seed=100,
                            max_retries=16) as backend:
            for _ in range(JOBS):
                result = backend.compress(data, fmt="raw")
                total += result.stats.elapsed_seconds
                faults += result.stats.translation_faults
                submissions += result.stats.submissions
                fallbacks += int(result.stats.fallback_to_software)
        table.add(prob, total / JOBS * 1e6, faults / JOBS,
                  submissions / JOBS, fallbacks)
        means.append(total / JOBS)
    return table, means


def test_e11_page_faults(benchmark):
    table, means = benchmark.pedantic(compute, rounds=1, iterations=1)
    report("e11_page_faults", table,
           "E11: touch-and-resubmit cost vs translation-fault rate "
           "(32 KB jobs)",
           notes="each fault costs an abort + page touch + resubmission")
    assert means[0] < means[-1]            # faults cost latency
    assert means[-1] < 20 * means[0]       # but the protocol converges


if __name__ == "__main__":
    table, _ = compute()
    print(table.render("E11: page faults"))
