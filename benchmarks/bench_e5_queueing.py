"""E5 — shared-accelerator queueing: latency vs offered load.

One NX serves every core on the chip; this sweep locates the queueing
knee and the tail blow-up as offered load approaches engine capacity,
for the standard request mixes.
"""

from __future__ import annotations

from repro.core.metrics import Table
from repro.core.plot import line_chart
from repro.nx.params import POWER9
from repro.perf.queueing import load_sweep

from _common import report

LOADS = [0.2, 0.5, 0.7, 0.85, 0.95]


def compute() -> tuple[Table, list, str]:
    table = Table(headers=["offered load", "mean us", "p95 us",
                           "p99 us", "GB/s"])
    means = []
    mean_pts, p99_pts = [], []
    results = load_sweep(POWER9, loads=LOADS, size_bytes=65536,
                         clients=16, duration_s=0.25)
    for load, result in results:
        table.add(load, result.mean_latency * 1e6,
                  result.latency_percentile(95) * 1e6,
                  result.latency_percentile(99) * 1e6,
                  result.throughput_gbps)
        means.append(result.mean_latency)
        mean_pts.append((load, result.mean_latency * 1e6))
        p99_pts.append((load, result.latency_percentile(99) * 1e6))
    figure = line_chart({"mean": mean_pts, "p99": p99_pts},
                        title="Figure E5: latency vs offered load",
                        y_label="us", x_label="offered load")
    return table, means, figure


def test_e5_queueing(benchmark):
    table, means, figure = benchmark.pedantic(compute, rounds=1,
                                              iterations=1)
    report("e5_queueing", table,
           "E5: shared-accelerator latency vs offered load "
           "(64 KB requests, 16 cores, 1 engine)",
           notes="knee appears as load approaches engine capacity",
           figure=figure)
    assert means == sorted(means)            # latency monotone in load
    assert means[-1] > 2.0 * means[0]        # clear knee by 95% load


if __name__ == "__main__":
    table, _means, figure = compute()
    print(table.render("E5: queueing"))
    print(figure)
