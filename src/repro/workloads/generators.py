"""Deterministic synthetic data generators with controlled redundancy.

The paper evaluates on standard corpora and customer data we cannot
redistribute; these generators produce byte streams whose *compression-
relevant structure* (literal entropy, match length/distance profile)
spans the same range, so ratio orderings and throughput effects carry
over.  Every generator is seeded and reproducible.
"""

from __future__ import annotations

import math
import random
import string
from dataclasses import dataclass

_WORD_ALPHABET = string.ascii_lowercase


def _rng(seed: int) -> random.Random:
    return random.Random(seed)


def random_bytes(size: int, seed: int = 0) -> bytes:
    """Incompressible: uniform random bytes."""
    rng = _rng(seed)
    return bytes(rng.randrange(256) for _ in range(size))


def zero_bytes(size: int) -> bytes:
    """Maximally compressible: all zero."""
    return bytes(size)


def markov_text(size: int, seed: int = 0, vocabulary: int = 2000,
                zipf_s: float = 1.3) -> bytes:
    """English-like text: Zipf-distributed words, sentence structure.

    Matches the statistics that make natural text compress ~2.5-3.5x:
    skewed literal distribution plus frequent short-to-medium matches.
    """
    rng = _rng(seed)
    words = []
    for _ in range(vocabulary):
        length = max(2, min(12, int(rng.gauss(5.2, 2.2))))
        words.append("".join(rng.choice(_WORD_ALPHABET)
                             for _ in range(length)))
    weights = [1.0 / (rank + 1) ** zipf_s for rank in range(vocabulary)]
    out = []
    length = 0
    sentence = 0
    while length < size:
        word = rng.choices(words, weights=weights)[0]
        if sentence == 0:
            word = word.capitalize()
        out.append(word)
        length += len(word) + 1
        sentence += 1
        if sentence >= rng.randrange(6, 18):
            out[-1] += "."
            sentence = 0
    return (" ".join(out)).encode("ascii")[:size]


def log_lines(size: int, seed: int = 0) -> bytes:
    """Server-log-like: highly templated lines with varying fields."""
    rng = _rng(seed)
    hosts = [f"10.0.{rng.randrange(256)}.{rng.randrange(256)}"
             for _ in range(32)]
    paths = [f"/api/v1/{name}" for name in
             ("users", "items", "orders", "search", "metrics", "health")]
    out = []
    length = 0
    t = 1_500_000_000
    while length < size:
        t += rng.randrange(1, 30)
        line = (f"{t} {rng.choice(hosts)} GET {rng.choice(paths)}"
                f"?id={rng.randrange(100000)} 200 {rng.randrange(40, 9000)}"
                f" {rng.random():.4f}\n")
        out.append(line)
        length += len(line)
    return ("".join(out)).encode("ascii")[:size]


def json_records(size: int, seed: int = 0) -> bytes:
    """JSON-ish records: repeated schema keys, varying values."""
    rng = _rng(seed)
    out = []
    length = 0
    while length < size:
        rec = ('{"user_id":%d,"session":"%08x","event":"%s",'
               '"ts":%d,"value":%.3f,"flags":[%s]}\n' % (
                   rng.randrange(10 ** 6), rng.getrandbits(32),
                   rng.choice(("click", "view", "purchase", "scroll")),
                   1_600_000_000 + rng.randrange(10 ** 6),
                   rng.random() * 100,
                   ",".join(str(rng.randrange(2)) for _ in range(4))))
        out.append(rec)
        length += len(rec)
    return ("".join(out)).encode("ascii")[:size]


def database_pages(size: int, seed: int = 0, page_size: int = 8192,
                   row_bytes: int = 120) -> bytes:
    """DB-page-like: fixed-layout rows, low-cardinality columns, padding."""
    rng = _rng(seed)
    cities = [b"ROCHESTER", b"POUGHKEEPSIE", b"AUSTIN", b"YORKTOWN",
              b"BOEBLINGEN", b"TOKYO", b"HAIFA", b"ZURICH"]
    out = bytearray()
    while len(out) < size:
        page = bytearray()
        page += (12345).to_bytes(4, "big") + bytes(12)  # header
        while len(page) + row_bytes <= page_size - 64:
            row = bytearray()
            row += rng.randrange(2 ** 31).to_bytes(4, "big")
            row += rng.choice(cities).ljust(24, b" ")
            row += rng.randrange(100).to_bytes(1, "big") * 8
            row += bytes(row_bytes - len(row))
            page += row
        page += bytes(page_size - len(page))  # page slack
        out += page
    return bytes(out[:size])


def source_code(size: int, seed: int = 0) -> bytes:
    """C-like source: heavy keyword/identifier reuse, indentation runs."""
    rng = _rng(seed)
    idents = [f"var_{rng.randrange(400):03d}" for _ in range(200)]
    out = []
    length = 0
    while length < size:
        depth = rng.randrange(1, 5)
        indent = "    " * depth
        a, b, c = rng.choice(idents), rng.choice(idents), rng.choice(idents)
        line = rng.choice((
            f"{indent}if ({a} != NULL && {b} > 0) {{\n",
            f"{indent}{a} = {b} + {c} * {rng.randrange(16)};\n",
            f"{indent}return status_{rng.randrange(8)};\n",
            f"{indent}}}\n",
            f"{indent}for (int i = 0; i < {a}_count; i++) {{\n",
            f"{indent}memset(&{a}, 0, sizeof({a}));\n",
        ))
        out.append(line)
        length += len(line)
    return ("".join(out)).encode("ascii")[:size]


def dna_sequence(size: int, seed: int = 0) -> bytes:
    """Genomic: 4-symbol alphabet, 2 bits/byte entropy, few long matches."""
    rng = _rng(seed)
    return bytes(rng.choice(b"ACGT") for _ in range(size))


def binary_executable(size: int, seed: int = 0) -> bytes:
    """Object-code-like: opcode clusters, zero runs, address entropy."""
    rng = _rng(seed)
    out = bytearray()
    opcodes = [0x48, 0x89, 0x8B, 0xE8, 0x0F, 0xC3, 0x55, 0x5D]
    while len(out) < size:
        choice = rng.random()
        if choice < 0.15:
            out += bytes(rng.randrange(16, 200))  # zero padding
        elif choice < 0.75:
            out.append(rng.choice(opcodes))
            out += rng.getrandbits(16).to_bytes(2, "little")
        else:
            out += rng.getrandbits(32).to_bytes(4, "little")
    return bytes(out[:size])


@dataclass(frozen=True)
class MixSpec:
    """A component of a mixed-entropy stream."""

    generator: str
    weight: float


def mixed_stream(size: int, seed: int = 0,
                 mix: tuple[MixSpec, ...] = (
                     MixSpec("markov_text", 0.4),
                     MixSpec("json_records", 0.3),
                     MixSpec("binary_executable", 0.2),
                     MixSpec("random_bytes", 0.1))) -> bytes:
    """Interleave generator outputs in 16 KB extents by weight."""
    rng = _rng(seed)
    extent = 16384
    total_weight = sum(spec.weight for spec in mix)
    out = bytearray()
    idx = 0
    while len(out) < size:
        pick = rng.random() * total_weight
        acc = 0.0
        chosen = mix[-1]
        for spec in mix:
            acc += spec.weight
            if pick <= acc:
                chosen = spec
                break
        chunk = generate(chosen.generator, extent, seed=seed + idx)
        out += chunk
        idx += 1
    return bytes(out[:size])


def xml_documents(size: int, seed: int = 0) -> bytes:
    """XML-like markup: deeply repeated tags, attribute patterns."""
    rng = _rng(seed)
    tags = ["record", "customer", "order", "item", "address", "total"]
    out = ['<?xml version="1.0" encoding="UTF-8"?>\n<export>\n']
    length = len(out[0])
    while length < size:
        tag = rng.choice(tags)
        fragment = (f'  <{tag} id="{rng.randrange(10 ** 6)}" '
                    f'ts="{1_600_000_000 + rng.randrange(10 ** 6)}">'
                    f'{rng.randrange(10 ** 4)}</{tag}>\n')
        out.append(fragment)
        length += len(fragment)
    out.append("</export>\n")
    return ("".join(out)).encode("ascii")[:size]


def csv_table(size: int, seed: int = 0, columns: int = 8) -> bytes:
    """CSV rows: low-cardinality columns, repeated separators."""
    rng = _rng(seed)
    categories = ["alpha", "beta", "gamma", "delta"]
    header = ",".join(f"col{i}" for i in range(columns)) + "\n"
    out = [header]
    length = len(header)
    while length < size:
        row = ",".join(
            rng.choice(categories) if i % 3 == 0
            else str(rng.randrange(10 ** (1 + i % 4)))
            for i in range(columns)) + "\n"
        out.append(row)
        length += len(row)
    return ("".join(out)).encode("ascii")[:size]


def sensor_samples(size: int, seed: int = 0) -> bytes:
    """Time-series telemetry: slowly varying 16-bit samples.

    Neighbouring samples differ by small deltas, the structure that
    makes scientific/telemetry data compress despite high byte entropy.
    """
    rng = _rng(seed)
    out = bytearray()
    value = 2 ** 15
    while len(out) < size:
        value = max(0, min(2 ** 16 - 1, value + rng.randrange(-64, 65)))
        out += value.to_bytes(2, "big")
    return bytes(out[:size])


GENERATORS = {
    "random_bytes": random_bytes,
    "zero_bytes": lambda size, seed=0: zero_bytes(size),
    "markov_text": markov_text,
    "log_lines": log_lines,
    "json_records": json_records,
    "database_pages": database_pages,
    "source_code": source_code,
    "dna_sequence": dna_sequence,
    "binary_executable": binary_executable,
    "mixed_stream": mixed_stream,
    "xml_documents": xml_documents,
    "csv_table": csv_table,
    "sensor_samples": sensor_samples,
}


def generate(name: str, size: int, seed: int = 0) -> bytes:
    """Dispatch to a named generator."""
    if name not in GENERATORS:
        raise ValueError(f"unknown generator {name!r}; "
                         f"have {sorted(GENERATORS)}")
    return GENERATORS[name](size, seed=seed)


def shannon_entropy_bits_per_byte(data: bytes) -> float:
    """Order-0 entropy, used to sanity-check generator targets."""
    if not data:
        return 0.0
    counts = [0] * 256
    for byte in data:
        counts[byte] += 1
    n = len(data)
    return -sum((c / n) * math.log2(c / n) for c in counts if c)
