"""Discrete-event Spark simulation: tasks, cores, and a shared NX per node.

The analytic model in :mod:`repro.workloads.spark` composes stage times
arithmetically; this simulator checks it by actually scheduling tasks:

* a cluster of nodes, each with ``cores_per_node`` executor cores and
  one accelerator (the on-chip NX);
* each stage splits into tasks; a task burns its CPU share on a core,
  then its codec work either runs on the same core (software) or queues
  to the node's accelerator (offload) while the core moves on;
* stages are barriers, as in Spark.

The interesting second-order effect the analytic model misses: all
cores of a node share one engine, so codec work can queue.  The
simulator exposes that contention (it is small at TPC-DS-like codec
shares — which is itself a paper-relevant result).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..backend.registry import backend_capabilities, default_backend
from ..nx.params import POWER9, MachineParams
from ..perf.cost import SoftwareCostModel
from ..perf.des import Simulator
from .spark import Stage, tpcds_like_profile


@dataclass(frozen=True)
class ClusterSpec:
    """Executor cluster layout."""

    nodes: int = 4
    cores_per_node: int = 10
    tasks_per_stage_per_core: int = 2

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node


@dataclass
class SimOutcome:
    """End-to-end result of one simulated job run."""

    makespan_seconds: float
    accel_busy_seconds: float
    accel_wait_seconds: float
    tasks_run: int

    def accel_utilization(self, nodes: int) -> float:
        if self.makespan_seconds == 0:
            return 0.0
        return self.accel_busy_seconds / (self.makespan_seconds * nodes)


@dataclass
class SparkDagSim:
    """Run a stage list in software or offload mode."""

    machine: MachineParams = POWER9
    cluster: ClusterSpec = ClusterSpec()
    level: int = 6
    seed: int = 7
    codec_backend: str | None = None  # default: machine's native hw path

    def __post_init__(self) -> None:
        self._cost = SoftwareCostModel(self.machine)
        if self.codec_backend is None:
            self.codec_backend = default_backend(self.machine)
        caps = backend_capabilities(self.codec_backend,
                                    machine=self.machine)
        self._accel_rate = caps.compress_gbps * 1e9
        self._accel_rate_d = caps.decompress_gbps * 1e9
        self._request_overhead_s = caps.per_call_overhead_s

    def _task_work(self, stage: Stage) -> tuple[int, float, float]:
        """(task count, cpu s/task, codec accel s/task)."""
        tasks = max(1, self.cluster.total_cores
                    * self.cluster.tasks_per_stage_per_core)
        cpu = stage.query_core_seconds / tasks
        accel = (stage.compress_bytes / self._accel_rate
                 + stage.decompress_bytes / self._accel_rate_d) / tasks
        return tasks, cpu, accel

    def _task_codec_core_seconds(self, stage: Stage, tasks: int) -> float:
        return (self._cost.compress_seconds(stage.compress_bytes,
                                            self.level)
                + self._cost.decompress_seconds(
                    stage.decompress_bytes)) / tasks

    def run(self, stages: list[Stage] | None = None,
            offload: bool = True) -> SimOutcome:
        stages = stages if stages is not None else tpcds_like_profile()
        sim = Simulator()
        rng = random.Random(self.seed)
        cores_free = [self.cluster.cores_per_node] * self.cluster.nodes
        accel_free_at = [0.0] * self.cluster.nodes
        accel_busy = [0.0]
        accel_wait = [0.0]
        tasks_run = [0]
        stage_state = {"queue": [], "outstanding": 0, "index": 0}

        overhead = self._request_overhead_s

        def start_stage() -> None:
            if stage_state["index"] >= len(stages):
                return
            stage = stages[stage_state["index"]]
            stage_state["index"] += 1
            tasks, cpu, accel = self._task_work(stage)
            sw_codec = self._task_codec_core_seconds(stage, tasks)
            stage_state["outstanding"] = tasks
            for _ in range(tasks):
                # jitter avoids artificial lockstep between cores
                jitter = rng.random() * 1e-4
                stage_state["queue"].append((cpu + jitter, accel, sw_codec))
            fill_cores()

        def fill_cores() -> None:
            progress = True
            while progress:
                progress = False
                for node in range(self.cluster.nodes):
                    if cores_free[node] > 0 and stage_state["queue"]:
                        cpu, accel, sw_codec = stage_state["queue"].pop(0)
                        cores_free[node] -= 1
                        run_task(node, cpu, accel, sw_codec)
                        progress = True

        def run_task(node: int, cpu: float, accel: float,
                     sw_codec: float) -> None:
            if offload:
                def cpu_done() -> None:
                    cores_free[node] += 1
                    fill_cores()
                    # codec work queues at the node's accelerator
                    start = max(sim.now + overhead, accel_free_at[node])
                    accel_wait[0] += start - sim.now
                    accel_free_at[node] = start + accel
                    accel_busy[0] += accel
                    sim.schedule(start + accel - sim.now, task_done)

                sim.schedule(cpu, cpu_done)
            else:
                def sw_done() -> None:
                    cores_free[node] += 1
                    fill_cores()
                    task_done()

                sim.schedule(cpu + sw_codec, sw_done)

        def task_done() -> None:
            tasks_run[0] += 1
            stage_state["outstanding"] -= 1
            if stage_state["outstanding"] == 0 and not stage_state["queue"]:
                start_stage()

        start_stage()
        sim.run()
        return SimOutcome(makespan_seconds=sim.now,
                          accel_busy_seconds=accel_busy[0],
                          accel_wait_seconds=accel_wait[0],
                          tasks_run=tasks_run[0])

    def speedup(self, stages: list[Stage] | None = None) -> float:
        software = self.run(stages, offload=False)
        offload = self.run(stages, offload=True)
        return software.makespan_seconds / offload.makespan_seconds
