"""Named synthetic corpora standing in for Calgary/Canterbury/Silesia.

Each corpus is a dict of component name → bytes, sized so a full ratio
table runs in reasonable time under the pure-Python codec.  Components
are chosen to span the redundancy range of the originals: text, source,
structured records, database pages, binaries, DNA, and incompressible
data.
"""

from __future__ import annotations

from functools import lru_cache

from .generators import generate

_CORPORA: dict[str, list[tuple[str, str, int]]] = {
    # (component name, generator, size)
    "calgary-like": [
        ("book", "markov_text", 98304),
        ("paper", "markov_text", 49152),
        ("prog", "source_code", 49152),
        ("obj", "binary_executable", 49152),
        ("trans", "log_lines", 49152),
    ],
    "silesia-like": [
        ("dickens", "markov_text", 131072),
        ("webster", "markov_text", 98304),
        ("samba", "source_code", 98304),
        ("nci", "database_pages", 98304),
        ("x-ray", "random_bytes", 65536),
        ("dna", "dna_sequence", 65536),
        ("mozilla", "binary_executable", 98304),
        ("logs", "log_lines", 65536),
    ],
    "cloud-like": [
        ("json-events", "json_records", 131072),
        ("service-logs", "log_lines", 131072),
        ("db-pages", "database_pages", 131072),
        ("mixed", "mixed_stream", 131072),
        ("xml-export", "xml_documents", 131072),
        ("csv-table", "csv_table", 131072),
        ("telemetry", "sensor_samples", 131072),
    ],
    "quick": [  # small corpus for unit tests
        ("text", "markov_text", 16384),
        ("json", "json_records", 16384),
        ("random", "random_bytes", 8192),
    ],
}


def corpus_names() -> list[str]:
    return sorted(_CORPORA)


@lru_cache(maxsize=None)
def build_corpus(name: str, scale: float = 1.0,
                 seed: int = 1234) -> dict[str, bytes]:
    """Materialize a corpus; ``scale`` shrinks/grows every component."""
    if name not in _CORPORA:
        raise ValueError(f"unknown corpus {name!r}; have {corpus_names()}")
    out = {}
    for idx, (component, generator, size) in enumerate(_CORPORA[name]):
        out[component] = generate(generator, max(1024, int(size * scale)),
                                  seed=seed + idx * 101)
    return out


def corpus_bytes(name: str, scale: float = 1.0, seed: int = 1234) -> bytes:
    """All components of a corpus concatenated (for throughput runs)."""
    return b"".join(build_corpus(name, scale=scale, seed=seed).values())
