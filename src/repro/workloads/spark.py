"""End-to-end Apache Spark TPC-DS model (the paper's 23 % claim).

Spark compresses shuffle partitions, spills, and cached blocks.  With a
software codec that work shares the executor cores with query processing;
with the NX accelerator it is offloaded, and the cores get their cycles
back.  This model composes per-stage runtimes the Amdahl way:

* software: ``(query core-seconds + codec core-seconds) / cores``
* offload:  ``max(query core-seconds / cores, codec bytes / NX rate)``
  plus the per-request invocation overheads.

The default stage profile is TPC-DS-like: a mix of scan-heavy,
shuffle-heavy, and CPU-heavy stages in which the codec accounts for
roughly a fifth of total executor CPU — which is exactly what makes the
end-to-end gain land near the abstract's 23 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backend.registry import backend_capabilities, default_backend
from ..nx.params import POWER9, MachineParams
from ..perf.cost import SoftwareCostModel


@dataclass(frozen=True)
class Stage:
    """One Spark stage: query work plus codec-visible bytes."""

    name: str
    query_core_seconds: float     # non-codec executor CPU
    shuffle_write_bytes: int      # compressed on write
    shuffle_read_bytes: int       # decompressed on read
    spill_bytes: int = 0          # compressed and later decompressed

    @property
    def compress_bytes(self) -> int:
        return self.shuffle_write_bytes + self.spill_bytes

    @property
    def decompress_bytes(self) -> int:
        return self.shuffle_read_bytes + self.spill_bytes


def tpcds_like_profile(scale_gb: float = 1.7) -> list[Stage]:
    """A TPC-DS-flavoured stage list; ``scale_gb`` scales data volumes.

    The default scale puts the codec at ~19 % of executor core-seconds
    under software zlib -6 — the regime in which offload recovers the
    abstract's ~23 % of end-to-end runtime.
    """
    gb = int(scale_gb * 1e9)
    return [
        Stage("scan-store_sales", 140.0, int(0.45 * gb), 0),
        Stage("scan-catalog_sales", 90.0, int(0.30 * gb), 0),
        Stage("dim-broadcast", 25.0, int(0.02 * gb), int(0.02 * gb)),
        Stage("join-1", 160.0, int(0.40 * gb), int(0.75 * gb),
              spill_bytes=int(0.10 * gb)),
        Stage("join-2", 120.0, int(0.25 * gb), int(0.42 * gb),
              spill_bytes=int(0.06 * gb)),
        Stage("agg-partial", 110.0, int(0.18 * gb), int(0.25 * gb)),
        Stage("agg-final", 70.0, int(0.04 * gb), int(0.18 * gb)),
        Stage("window", 85.0, int(0.10 * gb), int(0.10 * gb),
              spill_bytes=int(0.04 * gb)),
        Stage("sort-limit", 45.0, int(0.01 * gb), int(0.10 * gb)),
        Stage("output", 30.0, 0, int(0.05 * gb)),
    ]


@dataclass(frozen=True)
class StageTiming:
    """Computed runtime of one stage under both codecs."""

    stage: Stage
    software_seconds: float
    offload_seconds: float
    codec_core_seconds: float
    #: Software runtime when scan-side decompression runs through the
    #: chunk-parallel inflate engine (equals ``software_seconds`` when
    #: the backend lacks ``parallel_inflate`` capability).
    parallel_inflate_seconds: float = 0.0

    @property
    def speedup(self) -> float:
        return self.software_seconds / self.offload_seconds

    @property
    def scan_speedup(self) -> float:
        """Software-only gain from parallelising the decompress side."""
        if self.parallel_inflate_seconds <= 0.0:
            return 1.0
        return self.software_seconds / self.parallel_inflate_seconds


@dataclass
class SparkJobModel:
    """One TPC-DS-like job on a cluster of executor cores."""

    machine: MachineParams = POWER9
    executor_cores: int = 40
    level: int = 6
    request_bytes: int = 1 << 20  # shuffle block granularity
    codec_backend: str | None = None  # default: machine's native hw path
    #: Pool workers per executor for scan-side (decompress) parallel
    #: inflate; only takes effect when the codec backend advertises
    #: the ``parallel_inflate`` capability.
    inflate_workers: int = 1

    def __post_init__(self) -> None:
        self._cost = SoftwareCostModel(self.machine)
        if self.codec_backend is None:
            self.codec_backend = default_backend(self.machine)
        caps = backend_capabilities(self.codec_backend,
                                    machine=self.machine)
        self._accel_compress = caps.compress_gbps * 1e9
        self._accel_decompress = caps.decompress_gbps * 1e9
        self._request_overhead_s = caps.per_call_overhead_s
        self._parallel_inflate = caps.parallel_inflate

    # -- per-stage composition --------------------------------------------

    def codec_core_seconds(self, stage: Stage) -> float:
        return (self._cost.compress_seconds(stage.compress_bytes,
                                            self.level)
                + self._cost.decompress_seconds(stage.decompress_bytes))

    def _offload_codec_seconds(self, stage: Stage) -> float:
        """Wall seconds the accelerator needs for the stage's codec work."""
        requests = max(1, (stage.compress_bytes + stage.decompress_bytes)
                       // self.request_bytes)
        overhead = self._request_overhead_s * requests
        # Per-request overhead burns *core* time, but it is tiny; fold it
        # into the accelerator window pessimistically.
        compress = stage.compress_bytes / self._accel_compress
        decompress = stage.decompress_bytes / self._accel_decompress
        return compress + decompress + overhead

    def stage_timing(self, stage: Stage) -> StageTiming:
        codec = self.codec_core_seconds(stage)
        software = (stage.query_core_seconds + codec) / self.executor_cores
        offload = max(stage.query_core_seconds / self.executor_cores,
                      self._offload_codec_seconds(stage))
        return StageTiming(stage=stage, software_seconds=software,
                           offload_seconds=offload,
                           codec_core_seconds=codec,
                           parallel_inflate_seconds=self
                           ._parallel_inflate_seconds(stage))

    def _parallel_inflate_seconds(self, stage: Stage) -> float:
        """Stage runtime with scan-side decode on the inflate pool.

        The compress side still shares the executor cores, but the
        decompress (scan) side pipelines against query work on its own
        pool workers — the rapidgzip picture: the stage finishes when
        the slower of the two does.  Clamped to the backend capability
        and to the physical cores.
        """
        eff = (min(self.inflate_workers, self.executor_cores)
               if self._parallel_inflate else 1)
        compress_cs = self._cost.compress_seconds(stage.compress_bytes,
                                                  self.level)
        decompress_cs = self._cost.decompress_seconds(
            stage.decompress_bytes)
        if eff <= 1:
            return (stage.query_core_seconds + compress_cs
                    + decompress_cs) / self.executor_cores
        return max((stage.query_core_seconds + compress_cs)
                   / self.executor_cores,
                   decompress_cs / eff)

    # -- job-level results ----------------------------------------------------

    def run(self, stages: list[Stage] | None = None) -> "SparkJobResult":
        stages = stages if stages is not None else tpcds_like_profile()
        timings = [self.stage_timing(stage) for stage in stages]
        return SparkJobResult(timings=timings)


@dataclass
class SparkJobResult:
    """End-to-end outcome across all stages."""

    timings: list[StageTiming]

    @property
    def software_seconds(self) -> float:
        return sum(t.software_seconds for t in self.timings)

    @property
    def offload_seconds(self) -> float:
        return sum(t.offload_seconds for t in self.timings)

    @property
    def speedup(self) -> float:
        return self.software_seconds / self.offload_seconds

    @property
    def parallel_inflate_seconds(self) -> float:
        return sum(t.parallel_inflate_seconds for t in self.timings)

    @property
    def scan_speedup(self) -> float:
        """Job-level software gain from pool-parallel decompression."""
        total = self.parallel_inflate_seconds
        return self.software_seconds / total if total > 0 else 1.0

    @property
    def codec_share(self) -> float:
        """Fraction of software core-seconds spent in the codec."""
        codec = sum(t.codec_core_seconds for t in self.timings)
        total = codec + sum(t.stage.query_core_seconds
                            for t in self.timings)
        return codec / total if total else 0.0
