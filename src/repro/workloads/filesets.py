"""Synthetic file sets: what a backup/archive workload hands the engine.

A file set is a dict of path → bytes drawn from the byte generators with
a realistic size distribution (many small files, a long tail of large
ones) and a type mix.  Deterministic per seed, like everything in
:mod:`repro.workloads`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .generators import generate

_TYPE_MIX: list[tuple[str, str, float]] = [
    # (extension, generator, weight)
    (".txt", "markov_text", 0.22),
    (".log", "log_lines", 0.18),
    (".json", "json_records", 0.18),
    (".c", "source_code", 0.14),
    (".db", "database_pages", 0.10),
    (".bin", "binary_executable", 0.10),
    (".jpg", "random_bytes", 0.08),  # already-compressed media
]


@dataclass(frozen=True)
class FileSetSpec:
    """Shape of a synthetic file set."""

    files: int = 50
    median_bytes: int = 32768
    sigma: float = 1.1
    min_bytes: int = 256
    max_bytes: int = 1 << 22
    seed: int = 0


def make_fileset(spec: FileSetSpec = FileSetSpec()) -> dict[str, bytes]:
    """Materialize a file set per the spec."""
    import math

    rng = random.Random(spec.seed)
    mu = math.log(spec.median_bytes)
    extensions = [t[0] for t in _TYPE_MIX]
    generators = {t[0]: t[1] for t in _TYPE_MIX}
    weights = [t[2] for t in _TYPE_MIX]

    out: dict[str, bytes] = {}
    for idx in range(spec.files):
        ext = rng.choices(extensions, weights=weights)[0]
        size = int(rng.lognormvariate(mu, spec.sigma))
        size = max(spec.min_bytes, min(spec.max_bytes, size))
        name = f"data/{idx:04d}{ext}"
        out[name] = generate(generators[ext], size,
                             seed=spec.seed * 1000 + idx)
    return out


def total_bytes(fileset: dict[str, bytes]) -> int:
    return sum(len(v) for v in fileset.values())


def by_extension(fileset: dict[str, bytes]) -> dict[str, list[str]]:
    """Group file names by extension (for per-type reporting)."""
    groups: dict[str, list[str]] = {}
    for name in sorted(fileset):
        ext = name[name.rfind("."):]
        groups.setdefault(ext, []).append(name)
    return groups
