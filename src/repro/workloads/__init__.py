"""Synthetic workloads: corpora, request traces, and the Spark model."""

from .corpus import build_corpus, corpus_bytes, corpus_names
from .generators import (
    GENERATORS,
    generate,
    shannon_entropy_bits_per_byte,
)
from .filesets import FileSetSpec, by_extension, make_fileset, total_bytes
from .spark import SparkJobModel, SparkJobResult, Stage, tpcds_like_profile
from .replay import DiurnalSpec, ReplayResult, diurnal_trace, replay
from .spark_sim import ClusterSpec, SparkDagSim
from .traces import (
    TraceSpec,
    bimodal_size,
    fixed_size,
    lognormal_size,
    standard_traces,
)

__all__ = [
    "build_corpus",
    "corpus_bytes",
    "corpus_names",
    "generate",
    "GENERATORS",
    "shannon_entropy_bits_per_byte",
    "SparkJobModel",
    "SparkJobResult",
    "SparkDagSim",
    "ClusterSpec",
    "DiurnalSpec",
    "diurnal_trace",
    "replay",
    "ReplayResult",
    "FileSetSpec",
    "make_fileset",
    "by_extension",
    "total_bytes",
    "Stage",
    "tpcds_like_profile",
    "TraceSpec",
    "fixed_size",
    "lognormal_size",
    "bimodal_size",
    "standard_traces",
]
