"""Request traces for queueing experiments: sizes and arrival gaps.

The shared-accelerator experiments need realistic request mixes: many
small latency-sensitive buffers (RPC payloads, shuffle blocks) plus a
tail of large bulk jobs (spills, backups).  Samplers are plain callables
``rng -> value`` so they plug directly into the queueing simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

SizeSampler = Callable[[random.Random], int]


def fixed_size(nbytes: int) -> SizeSampler:
    """Every request is exactly ``nbytes``."""
    def sample(_rng: random.Random) -> int:
        return nbytes
    return sample


def lognormal_size(median_bytes: float, sigma: float = 1.0,
                   min_bytes: int = 512,
                   max_bytes: int = 1 << 26) -> SizeSampler:
    """Heavy-tailed sizes, the common shape of storage/shuffle blocks."""
    import math

    mu = math.log(median_bytes)

    def sample(rng: random.Random) -> int:
        value = int(rng.lognormvariate(mu, sigma))
        return max(min_bytes, min(max_bytes, value))
    return sample


def bimodal_size(small_bytes: int = 8192, large_bytes: int = 4 << 20,
                 small_fraction: float = 0.9) -> SizeSampler:
    """RPC-vs-bulk mix: mostly small requests, occasional huge ones."""
    def sample(rng: random.Random) -> int:
        if rng.random() < small_fraction:
            return small_bytes
        return large_bytes
    return sample


@dataclass(frozen=True)
class TraceSpec:
    """A named (size sampler, description) pair for reports."""

    name: str
    sampler: SizeSampler
    description: str


def standard_traces() -> list[TraceSpec]:
    """The request mixes the queueing benches sweep."""
    return [
        TraceSpec("uniform-64k", fixed_size(65536),
                  "fixed 64 KB blocks (storage pages)"),
        TraceSpec("lognormal-128k", lognormal_size(131072, sigma=1.2),
                  "heavy-tailed shuffle blocks, median 128 KB"),
        TraceSpec("rpc-bulk-mix", bimodal_size(),
                  "90% 8 KB RPCs + 10% 4 MB bulk jobs"),
    ]


def poisson_gaps(rate_per_s: float, count: int,
                 seed: int = 0) -> list[float]:
    """Pre-drawn exponential inter-arrival gaps (for repeatable tests)."""
    rng = random.Random(seed)
    return [rng.expovariate(rate_per_s) for _ in range(count)]
