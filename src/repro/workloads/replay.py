"""Trace-driven replay: timestamped request logs through the engine.

Queueing sweeps use synthetic arrival processes; production questions
("will the engine survive the nightly backup window?") need *traces*.
This module generates diurnal request traces — sinusoidal load with a
bulk-window burst — and replays them against one accelerator, reporting
latency per time bucket.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..nx.params import MachineParams
from ..perf.des import Simulator
from ..perf.timing import OffloadTimingModel


@dataclass(frozen=True)
class TracePoint:
    """One request in a trace."""

    time_s: float
    size_bytes: int


@dataclass(frozen=True)
class DiurnalSpec:
    """A day-like load profile, compressed into ``duration_s`` seconds.

    Base Poisson load follows ``1 + amplitude x sin`` over one period;
    a bulk window (backup / batch ETL) adds large requests for a slice
    of the period.
    """

    duration_s: float = 2.0
    base_rate_per_s: float = 20000.0
    amplitude: float = 0.6
    request_bytes: int = 32768
    bulk_start_frac: float = 0.70
    bulk_end_frac: float = 0.85
    bulk_rate_per_s: float = 400.0
    bulk_bytes: int = 4 << 20
    seed: int = 0


def diurnal_trace(spec: DiurnalSpec = DiurnalSpec()) -> list[TracePoint]:
    """Materialize the request trace (sorted by time)."""
    rng = random.Random(spec.seed)
    points: list[TracePoint] = []
    t = 0.0
    while t < spec.duration_s:
        phase = 2 * math.pi * t / spec.duration_s
        rate = spec.base_rate_per_s * (1 + spec.amplitude
                                       * math.sin(phase))
        t += rng.expovariate(max(rate, 1e-6))
        if t < spec.duration_s:
            points.append(TracePoint(t, spec.request_bytes))
    t = spec.bulk_start_frac * spec.duration_s
    end = spec.bulk_end_frac * spec.duration_s
    while t < end:
        t += rng.expovariate(spec.bulk_rate_per_s)
        if t < end:
            points.append(TracePoint(t, spec.bulk_bytes))
    points.sort(key=lambda p: p.time_s)
    return points


@dataclass
class BucketStats:
    """Latency statistics for one time bucket of the replay."""

    bucket: int
    count: int
    mean_latency_s: float
    p99_latency_s: float
    bytes_total: int


@dataclass
class ReplayResult:
    """Outcome of replaying one trace."""

    buckets: list[BucketStats]
    total_requests: int
    max_queue_depth: int

    @property
    def worst_bucket(self) -> BucketStats:
        return max(self.buckets, key=lambda b: b.p99_latency_s)


def replay(trace: list[TracePoint], machine: MachineParams,
           engines: int = 1, buckets: int = 10,
           duration_s: float | None = None) -> ReplayResult:
    """Feed the trace through ``engines`` FIFO engines; bucket latency."""
    timing = OffloadTimingModel(machine)
    sim = Simulator()
    busy = [False] * engines
    queue: list[tuple[float, int]] = []  # (submit time, size)
    done: list[tuple[float, float, int]] = []  # (submit, finish, size)
    depth_peak = [0]

    def service(size: int) -> float:
        return (timing.service_seconds(size)
                + machine.dispatch_overhead_us * 1e-6)

    def dispatch() -> None:
        while queue:
            try:
                engine = busy.index(False)
            except ValueError:
                return
            submit, size = queue.pop(0)
            busy[engine] = True

            def finish(submit: float = submit, size: int = size,
                       engine: int = engine) -> None:
                busy[engine] = False
                done.append((submit, sim.now, size))
                dispatch()

            sim.schedule(service(size), finish)

    def arrive(point: TracePoint) -> None:
        queue.append((sim.now, point.size_bytes))
        depth_peak[0] = max(depth_peak[0], len(queue))
        dispatch()

    for point in trace:
        sim.schedule(point.time_s, lambda point=point: arrive(point))
    sim.run()

    horizon = duration_s or (trace[-1].time_s if trace else 1.0)
    width = horizon / buckets
    by_bucket: dict[int, list[tuple[float, float, int]]] = {}
    for submit, finish, size in done:
        idx = min(buckets - 1, int(submit / width))
        by_bucket.setdefault(idx, []).append((submit, finish, size))

    stats = []
    for idx in range(buckets):
        rows = by_bucket.get(idx, [])
        if rows:
            latencies = sorted(finish - submit for submit, finish, _ in rows)
            mean = sum(latencies) / len(latencies)
            p99 = latencies[min(len(latencies) - 1,
                                int(0.99 * len(latencies)))]
            total = sum(size for _s, _f, size in rows)
        else:
            mean = p99 = 0.0
            total = 0
        stats.append(BucketStats(bucket=idx, count=len(rows),
                                 mean_latency_s=mean, p99_latency_s=p99,
                                 bytes_total=total))
    return ReplayResult(buckets=stats, total_requests=len(done),
                        max_queue_depth=depth_peak[0])
