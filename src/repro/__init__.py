"""repro: behavioural reproduction of the IBM POWER9/z15 on-chip data
compression accelerator (Abali et al., ISCA 2020).

Quick start::

    from repro import NxGzip

    with NxGzip("POWER9") as session:
        compressed = session.compress(b"hello " * 1000)
        restored = session.decompress(compressed.data)

Packages:

* :mod:`repro.deflate` — from-scratch DEFLATE/zlib/gzip codec (software
  baseline).
* :mod:`repro.nx` — the accelerator model (match pipeline, DHT, engines).
* :mod:`repro.sysstack` — CRB/DDE/VAS/MMU/driver submission stack.
* :mod:`repro.perf` — calibrated cost, timing, queueing, system models.
* :mod:`repro.workloads` — synthetic corpora, traces, Spark TPC-DS model.
* :mod:`repro.backend` — the unified backend layer (protocol, registry,
  accelerator pool) every consumer routes through.
* :mod:`repro.core` — the high-level session API and reporting helpers.
"""

from .backend import (
    AcceleratorPool,
    BackendCapabilities,
    CompressionBackend,
    backend_names,
    create_backend,
    default_backend,
    register_backend,
)
from .core import (
    Analysis,
    CompressedBuffer,
    NxGzip,
    OffloadAdvisor,
    Route,
    analyze,
    software_decompress,
)
from .nx import POWER9, Z15, DhtStrategy, get_machine, z15_max_config

__version__ = "1.0.0"

__all__ = [
    "NxGzip",
    "CompressionBackend",
    "BackendCapabilities",
    "AcceleratorPool",
    "backend_names",
    "create_backend",
    "default_backend",
    "register_backend",
    "analyze",
    "Analysis",
    "CompressedBuffer",
    "OffloadAdvisor",
    "Route",
    "software_decompress",
    "DhtStrategy",
    "POWER9",
    "Z15",
    "get_machine",
    "z15_max_config",
    "__version__",
]
