"""The 842 backend: the NX unit's memory-compression pipes, standalone.

842 is the template codec the NX shipped before the gzip engines — no
Huffman stage, so it streams at line rate with a weaker ratio.  This
backend drives the bare :class:`Engine842` (AIX active-memory-expansion
style usage, where the kernel calls the engine directly without the
gzip driver stack); to run 842 jobs through the full CRB/VAS protocol
instead, use the ``nx`` backend with ``fmt="842"``.
"""

from __future__ import annotations

from ..e842.engine import Engine842, Engine842Params
from ..errors import ConfigError
from ..obs.trace import TRACE as _TRACE
from ..sysstack.driver import DriverResult, SubmissionStats
from .base import BackendCapabilities, CompressionBackend


class E842Backend(CompressionBackend):
    """Template-codec engine pair: fast, Huffman-free, fixed format."""

    name = "842"

    def __init__(self, machine=None,
                 params: Engine842Params | None = None) -> None:
        # ``machine`` is accepted (and ignored) so the registry can pass
        # one uniformly; the 842 engine model is machine-independent.
        super().__init__()
        self.engine = Engine842(params or Engine842Params())
        line_rate = (self.engine.params.clock_ghz
                     * self.engine.params.bytes_per_cycle)
        self._caps = BackendCapabilities(
            name=self.name,
            formats=("842",),
            strategies=("auto",),  # template codec: no Huffman strategy
            synchronous=True,
            hardware=True,
            streaming=False,
            compress_gbps=line_rate,
            decompress_gbps=line_rate,
            per_call_overhead_s=(self.engine.params.pipeline_fill_cycles
                                 / (self.engine.params.clock_ghz * 1e9)),
        )

    def capabilities(self) -> BackendCapabilities:
        return self._caps

    # -- implementation ------------------------------------------------------

    def _compress(self, data: bytes, strategy: str, fmt: str,
                  history: bytes, final: bool) -> DriverResult:
        self._check(fmt, history, final)
        result = self.engine.compress(data)
        if _TRACE.enabled:
            _TRACE.event("e842.pipe", op="compress",
                         seconds=result.seconds)
        stats = SubmissionStats(submissions=1,
                                elapsed_seconds=result.seconds)
        return DriverResult(output=result.data, csb=None, stats=stats,
                            engine_result=result)

    def _decompress(self, payload: bytes, fmt: str,
                    history: bytes) -> DriverResult:
        self._check(fmt, history, final=True)
        result = self.engine.decompress(payload)
        stats = SubmissionStats(submissions=1,
                                elapsed_seconds=result.seconds)
        return DriverResult(output=result.data, csb=None, stats=stats,
                            engine_result=result)

    @staticmethod
    def _check(fmt: str, history: bytes, final: bool) -> None:
        if fmt != "842":
            raise ConfigError(f"842 backend only speaks fmt='842', "
                              f"not {fmt!r}")
        if history or not final:
            raise ConfigError("842 has no continuation state")
