"""String-keyed backend registry with entry-point-style registration.

Backends are published under short names ("nx", "dfltcc", "software",
"842").  A registered factory is either a callable or a lazy
``"module:attr"`` spec — the entry-point convention — resolved on first
use so importing the registry never imports every backend stack.
Third-party code adds backends with :func:`register_backend`; everything
in the repo (the API session, the CLI, the pool, every benchmark)
acquires engines through :func:`create_backend`.
"""

from __future__ import annotations

from importlib import import_module
from typing import Callable

from ..errors import ConfigError
from ..nx.params import MachineParams, get_machine
from .base import BackendCapabilities, CompressionBackend

Factory = Callable[..., CompressionBackend]

_BUILTINS: dict[str, str] = {
    "software": "repro.backend.software:SoftwareZlibBackend",
    "software-parallel":
        "repro.backend.software_parallel:SoftwareParallelBackend",
    "nx": "repro.backend.nx_async:NxAsyncBackend",
    "dfltcc": "repro.backend.dfltcc:DfltccBackend",
    "842": "repro.backend.e842:E842Backend",
}

_REGISTRY: dict[str, Factory | str] = dict(_BUILTINS)


def register_backend(name: str, factory: Factory | str,
                     replace: bool = False) -> None:
    """Publish a backend under ``name``.

    ``factory`` is a callable ``(machine=..., **kwargs) -> backend`` or
    a lazy ``"module:attr"`` entry-point spec.  Re-registering an
    existing name raises unless ``replace=True``.
    """
    if not replace and name in _REGISTRY:
        raise ConfigError(f"backend {name!r} already registered")
    _REGISTRY[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a backend; built-ins are restored to their lazy spec."""
    if name in _BUILTINS:
        _REGISTRY[name] = _BUILTINS[name]
    else:
        _REGISTRY.pop(name, None)


def backend_names() -> tuple[str, ...]:
    """Registered names, in registration order."""
    return tuple(_REGISTRY)


def _resolve(name: str) -> Factory:
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(sorted(_REGISTRY))}") from None
    if isinstance(factory, str):
        module_name, _, attr = factory.partition(":")
        factory = getattr(import_module(module_name), attr)
        _REGISTRY[name] = factory  # cache the resolved callable
    return factory


def create_backend(name: str, machine: MachineParams | str | None = None,
                   **kwargs) -> CompressionBackend:
    """Instantiate a registered backend, optionally pinned to a machine."""
    factory = _resolve(name)
    if machine is not None:
        if isinstance(machine, str):
            machine = get_machine(machine)
        kwargs["machine"] = machine
    return factory(**kwargs)


def default_backend(machine: MachineParams | str) -> str:
    """The native hardware path for a machine.

    z15 drives the accelerator synchronously through DFLTCC; POWER9 (and
    anything else asynchronous) goes through the NX driver stack.
    """
    if isinstance(machine, str):
        machine = get_machine(machine)
    return "dfltcc" if machine.synchronous else "nx"


def backend_capabilities(name: str,
                         machine: MachineParams | str | None = None,
                         **kwargs) -> BackendCapabilities:
    """Capabilities of a backend without keeping the instance around."""
    backend = create_backend(name, machine=machine, **kwargs)
    try:
        return backend.capabilities()
    finally:
        backend.close()
