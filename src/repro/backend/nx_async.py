"""The POWER9 asynchronous NX backend: CRB → VAS paste → drain → CSB.

This wraps the full modelled user/kernel stack (:class:`AsyncNxDriver`
on an :class:`NxAccelerator` with a faultable :class:`AddressSpace`) so
it exercises exactly what the old ``NxGzip`` construction did: credit
flow control on the send window, touch-and-resubmit on translation
faults, target-buffer growth, and the bounded-retry software fallback.

Beyond the synchronous protocol methods it exposes the asynchronous
batch surface (``submit``/``poll``/``wait_all``) the POWER9 interface
exists for — the :class:`AcceleratorPool` drives that to keep several
jobs in flight per chip.
"""

from __future__ import annotations

from dataclasses import replace

from ..errors import ConfigError
from ..nx.accelerator import NxAccelerator
from ..nx.dht import DhtStrategy, canned_names
from ..nx.params import POWER9, MachineParams, get_machine
from ..perf.cost import accelerator_effective_gbps
from ..sysstack.crb import Op
from ..obs.metrics import REGISTRY as _REGISTRY
from ..obs.metrics import record_job
from ..sysstack.driver import (DEFAULT_MAX_RETRIES, AsyncNxDriver,
                               DriverResult, PendingJob)
from ..sysstack.mmu import AddressSpace, FaultInjector
from .base import BackendCapabilities, CompressionBackend

_FORMATS = ("gzip", "zlib", "raw", "842")

_COMPRESS_OPS = {"compress": Op.COMPRESS, "decompress": Op.DECOMPRESS}


def _ops_for(fmt: str) -> tuple[Op, Op, str]:
    """Map a wire format to (compress op, decompress op, driver fmt)."""
    if fmt == "842":
        return Op.COMPRESS_842, Op.DECOMPRESS_842, "raw"
    return Op.COMPRESS, Op.DECOMPRESS, fmt


class NxAsyncBackend(CompressionBackend):
    """One chip's NX unit behind the documented submission protocol."""

    name = "nx"

    def __init__(self, machine: MachineParams | str = POWER9,
                 fault_probability: float = 0.0, seed: int = 0,
                 engine=None, max_retries: int = DEFAULT_MAX_RETRIES,
                 credits: int | None = None,
                 retry_policy=None,
                 deadline_s: float | None = None) -> None:
        super().__init__()
        if isinstance(machine, str):
            machine = get_machine(machine)
        if engine is not None:
            machine = replace(machine, engine=engine)
        self.machine = machine
        self.space = AddressSpace(
            fault_injector=FaultInjector(fault_probability, seed=seed))
        self.accelerator = NxAccelerator(machine)
        self.driver = AsyncNxDriver(self.accelerator, self.space,
                                    max_retries=max_retries,
                                    retry_policy=retry_policy,
                                    deadline_s=deadline_s)
        self.driver.open(credits)
        self._caps = BackendCapabilities(
            name=self.name,
            formats=_FORMATS,
            strategies=tuple(s.value for s in DhtStrategy),
            synchronous=False,
            hardware=True,
            streaming=True,
            compress_gbps=_effective_gbps(machine, "compress"),
            decompress_gbps=_effective_gbps(machine, "decompress"),
            per_call_overhead_s=(machine.submit_overhead_us
                                 + machine.dispatch_overhead_us
                                 + machine.completion_overhead_us) * 1e-6,
        )

    def capabilities(self) -> BackendCapabilities:
        # Recomputed per call: the dictionary service may push trained
        # canned tables after this backend was constructed.
        return replace(self._caps,
                       canned_dicts=tuple(
                           canned_names(include_trained=True)))

    def close(self) -> None:
        self.driver.close()

    # -- synchronous protocol ------------------------------------------------

    def _compress(self, data: bytes, strategy: str, fmt: str,
                  history: bytes, final: bool) -> DriverResult:
        op, _, driver_fmt = _ops_for(fmt)
        return self.driver.run(op, data, strategy=strategy, fmt=driver_fmt,
                               history=history, final=final,
                               deadline_s=self._call_deadline_s)

    def _decompress(self, payload: bytes, fmt: str,
                    history: bytes) -> DriverResult:
        _, op, driver_fmt = _ops_for(fmt)
        return self.driver.run(op, payload, fmt=driver_fmt, history=history,
                               deadline_s=self._call_deadline_s)

    # -- asynchronous batch surface ------------------------------------------

    def submit(self, kind: str, data: bytes, *, strategy: object = "auto",
               fmt: str | None = None,
               deadline_s: float | None = None) -> PendingJob:
        """Paste one request without waiting; poll for its completion."""
        if kind not in _COMPRESS_OPS:
            raise ConfigError(f"unknown job kind {kind!r}")
        fmt = fmt or self._caps.default_format
        cop, dop, driver_fmt = _ops_for(fmt)
        op = cop if kind == "compress" else dop
        strategy = getattr(strategy, "value", strategy)
        return self.driver.submit(op, data, strategy=strategy,
                                  fmt=driver_fmt, deadline_s=deadline_s)

    def poll(self) -> list[PendingJob]:
        """Drain completions; finished jobs are folded into ``stats()``."""
        finished = self.driver.poll()
        for job in finished:
            self._account_async(job)
        return finished

    def wait_all(self) -> list[PendingJob]:
        """Poll until every in-flight job on this backend completes."""
        finished = self.driver.wait_all()
        for job in finished:
            self._account_async(job)
        return finished

    def _account_async(self, job: PendingJob) -> None:
        """Async completions bypass the base record hook — mirror it."""
        if job.result is None:  # failed jobs carry no result to account
            return
        self._stats.record(job.result, job.data_len)
        if _REGISTRY.enabled:
            op = ("compress" if job.op in (Op.COMPRESS, Op.COMPRESS_842)
                  else "decompress")
            record_job("backend", op=op, nbytes_in=job.data_len,
                       nbytes_out=len(job.result.output),
                       seconds=job.result.stats.elapsed_seconds,
                       faults=job.result.stats.translation_faults,
                       fallback=job.result.stats.fallback_to_software,
                       backend=self.name)

    def cancel_pending(self) -> list[PendingJob]:
        """Abandon in-flight jobs and reclaim their window credits."""
        return self.driver.cancel_pending()

    @property
    def in_flight(self) -> int:
        return self.driver.in_flight

    @property
    def capacity(self) -> int:
        """Send-window credits: the useful in-flight depth per chip.

        Submitting beyond this only spins the paste-backoff loop, so
        batch-sizing callers (the pool's ``suggested_batch_depth``, the
        service dispatcher) cap coalescing here.
        """
        window_id = self.driver._window_id
        if window_id is None:
            return 0
        window = self.accelerator.vas.windows.get(window_id)
        return window.credits if window is not None else 0


def _effective_gbps(machine: MachineParams, op: str) -> float:
    """Calibrated rate; measure the engine model for uncalibrated sweeps."""
    try:
        return accelerator_effective_gbps(machine, op)
    except ValueError:
        from ..perf.cost import measure_effective_gbps
        sample = bytes(range(256)) * 64
        return measure_effective_gbps(machine, sample)
