"""The unified backend seam: one protocol every execution path implements.

Four parallel execution paths grew around the paper's stack — software
zlib, the POWER9 asynchronous NX driver, the z15 synchronous DFLTCC
loop, and the 842 memory-compression engines.  :class:`CompressionBackend`
is the single seam they all sit behind, mirroring how libnxz and
zlib-dfltcc hide the hardware-vs-software decision behind the one zlib
API in the production stack:

* ``compress``/``decompress`` return the same :class:`DriverResult`
  shape the driver produces (output bytes plus per-request
  :class:`SubmissionStats`), so callers account timing, faults, and
  software fallbacks identically regardless of the backend;
* ``capabilities`` describes what the backend can do — wire formats,
  Huffman strategies, modelled sustained rates, per-call overhead — so
  policy layers (offload advisor, Spark models, the pool) can reason
  about a backend without knowing its concrete class;
* ``stats`` accumulates session totals across requests.

Concrete backends implement ``_compress``/``_decompress``; the public
methods normalise arguments and keep the accounting uniform.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar

from ..obs.metrics import REGISTRY as _REGISTRY
from ..obs.metrics import record_job
from ..obs.trace import TRACE as _TRACE
from ..sysstack.driver import DriverResult


@dataclass(frozen=True)
class BackendCapabilities:
    """What one backend supports and how fast it is modelled to run.

    ``formats`` lists the wire formats ``compress``/``decompress``
    accept, in preference order — ``formats[0]`` is the backend's
    default.  ``"842"`` is the pseudo-format selecting the NX 842
    memory-compression pipes.  Rates are modelled sustained GB/s on the
    reference corpus; ``per_call_overhead_s`` is the fixed invocation
    cost (submit + dispatch + completion for the async paths, the
    instruction issue for DFLTCC, zero for software).
    """

    name: str
    formats: tuple[str, ...]
    strategies: tuple[str, ...]
    synchronous: bool
    hardware: bool
    streaming: bool
    compress_gbps: float
    decompress_gbps: float
    per_call_overhead_s: float = 0.0
    #: Decompression scales with worker count (speculative chunk
    #: decode à la rapidgzip); schedulers may treat ``decompress_gbps``
    #: as an aggregate rather than a single-stream rate.
    parallel_inflate: bool = False
    #: Canned DHT names the engine can fetch for this backend — the
    #: built-in template library plus any tenant-trained tables the
    #: dictionary service has pushed (see :mod:`repro.dictsvc`).
    canned_dicts: tuple[str, ...] = ()

    @property
    def default_format(self) -> str:
        return self.formats[0]


@dataclass
class BackendStats:
    """Running totals across one backend handle's requests."""

    requests: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    modelled_seconds: float = 0.0
    faults: int = 0
    fallbacks: int = 0

    def record(self, result: DriverResult, nbytes_in: int) -> None:
        """Fold one completed request into the totals."""
        self.requests += 1
        self.bytes_in += nbytes_in
        self.bytes_out += len(result.output)
        self.modelled_seconds += result.stats.elapsed_seconds
        self.faults += result.stats.translation_faults
        self.fallbacks += int(result.stats.fallback_to_software)


def _strategy_value(strategy: object) -> str:
    """Accept both the CRB strategy strings and DhtStrategy members."""
    return getattr(strategy, "value", strategy)


def _annotate(span, result: DriverResult) -> None:
    """Attach completion accounting to a ``backend.submit`` span."""
    stats = result.stats
    span.set(out_bytes=len(result.output),
             modelled_s=stats.elapsed_seconds,
             submissions=stats.submissions)
    if stats.translation_faults:
        span.set(faults=stats.translation_faults)
    if stats.fallback_to_software:
        span.event("fallback.software")


class CompressionBackend(abc.ABC):
    """One way of executing compression jobs (software or modelled HW)."""

    #: Registry key this class is published under.
    name: ClassVar[str] = "abstract"

    def __init__(self) -> None:
        self._stats = BackendStats()
        #: Per-call deadline (modelled seconds), set by the public
        #: methods for the duration of one ``_compress``/``_decompress``
        #: call.  Backends that can bound their waiting (the NX driver
        #: paths) consult it; the rest ignore it.
        self._call_deadline_s: float | None = None

    # -- the protocol --------------------------------------------------------

    def compress(self, data: bytes, *, strategy: object = "auto",
                 fmt: str | None = None, history: bytes = b"",
                 final: bool = True,
                 deadline_s: float | None = None) -> DriverResult:
        """Compress ``data``; ``fmt`` defaults to the backend's native one.

        ``history`` primes the match window for continuation requests
        and ``final=False`` asks for a continuable raw stream — only
        meaningful when ``capabilities().streaming`` is true.
        ``deadline_s`` bounds the modelled time the backend may spend
        *waiting* (retries, fault fixups); past it the call raises
        :class:`~repro.errors.DeadlineExceeded`.
        """
        fmt = fmt or self.capabilities().default_format
        self._call_deadline_s = deadline_s
        try:
            if _TRACE.enabled:
                with _TRACE.span("backend.submit", backend=self.name,
                                 op="compress", fmt=fmt,
                                 nbytes=len(data)) as span:
                    result = self._compress(data, _strategy_value(strategy),
                                            fmt, history, final)
                    _annotate(span, result)
            else:
                result = self._compress(data, _strategy_value(strategy), fmt,
                                        history, final)
        finally:
            self._call_deadline_s = None
        self._record(result, len(data), "compress")
        return result

    def decompress(self, payload: bytes, *, fmt: str | None = None,
                   history: bytes = b"",
                   deadline_s: float | None = None) -> DriverResult:
        """Decompress ``payload`` produced in the same wire format."""
        fmt = fmt or self.capabilities().default_format
        self._call_deadline_s = deadline_s
        try:
            if _TRACE.enabled:
                with _TRACE.span("backend.submit", backend=self.name,
                                 op="decompress", fmt=fmt,
                                 nbytes=len(payload)) as span:
                    result = self._decompress(payload, fmt, history)
                    _annotate(span, result)
            else:
                result = self._decompress(payload, fmt, history)
        finally:
            self._call_deadline_s = None
        self._record(result, len(payload), "decompress")
        return result

    def _record(self, result: DriverResult, nbytes_in: int,
                op: str) -> None:
        """Session accounting plus (when enabled) the global registry."""
        self._stats.record(result, nbytes_in)
        if _REGISTRY.enabled:
            record_job("backend", op=op, nbytes_in=nbytes_in,
                       nbytes_out=len(result.output),
                       seconds=result.stats.elapsed_seconds,
                       faults=result.stats.translation_faults,
                       fallback=result.stats.fallback_to_software,
                       backend=self.name)

    @abc.abstractmethod
    def capabilities(self) -> BackendCapabilities:
        """Static description of formats, strategies, and modelled rates."""

    def stats(self) -> BackendStats:
        """Cumulative totals over every request this handle served."""
        return self._stats

    def close(self) -> None:
        """Release modelled resources (VAS windows etc.); idempotent."""

    # -- implementation hooks ------------------------------------------------

    @abc.abstractmethod
    def _compress(self, data: bytes, strategy: str, fmt: str,
                  history: bytes, final: bool) -> DriverResult:
        ...

    @abc.abstractmethod
    def _decompress(self, payload: bytes, fmt: str,
                    history: bytes) -> DriverResult:
        ...

    # -- context management --------------------------------------------------

    def __enter__(self) -> "CompressionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
