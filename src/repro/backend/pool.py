"""AcceleratorPool: N per-chip backend instances behind one job router.

A multi-chip system has one NX/zEDC per chip; production software must
decide *which* chip's engine serves each request.  The pool owns one
backend instance per chip (created lazily, so policy studies on large
topologies don't build N driver stacks) plus a software instance for
the size-threshold fallback, and routes with the same policy kernel the
DES in :mod:`repro.perf.routing` uses:

* ``local``          — the submitting chip's engine;
* ``round_robin``    — rotate across chips;
* ``least_loaded``   — fewest pending + served bytes, local on ties;
* ``size_threshold`` — small buffers to software (below break-even the
  invocation overhead dominates), large ones round-robin across chips.

Batch submission rides the asynchronous paste/drain machinery when the
per-chip backend provides it (``submit``/``poll``/``wait_all``), and
falls back to synchronous execution when it does not, so the pool works
identically over ``nx`` and ``dfltcc`` backends.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..errors import ConfigError
from ..nx.params import POWER9, MachineParams, Topology, get_machine
from ..obs.metrics import REGISTRY as _REGISTRY
from ..obs.trace import TRACE as _TRACE
from ..perf.routing import MultiChipRouter, RoutingResult, choose_chip
from ..sysstack.driver import DriverResult
from .base import CompressionBackend
from .registry import create_backend, default_backend

#: Pool routing policies (superset of the DES policies: adds the
#: software fallback threshold, which has no queueing analogue).
ROUTING_POLICIES = ("local", "round_robin", "least_loaded",
                    "size_threshold")

#: Pseudo chip index for the software-fallback instance.
SOFTWARE = -1


@dataclass(frozen=True)
class PoolStats:
    """One immutable, mutually consistent snapshot of pool activity.

    Built under the pool's lock in a single pass, so ``requests`` /
    ``bytes_*`` / ``dispatch_counts`` / ``in_flight`` all describe the
    same instant even while another thread is batch-submitting.
    """

    requests: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    modelled_seconds: float = 0.0
    faults: int = 0
    fallbacks: int = 0
    dispatch_counts: tuple[int, ...] = ()
    software_jobs: int = 0
    in_flight: int = 0


@dataclass
class PoolJob:
    """One batch-submitted request and where it was routed."""

    index: int
    chip: int
    nbytes: int
    kind: str
    result: DriverResult | None = None

    @property
    def done(self) -> bool:
        return self.result is not None


class AcceleratorPool:
    """Owns per-chip accelerator backends and routes jobs across them."""

    def __init__(self, machine: MachineParams | str = POWER9,
                 chips: int = 1, policy: str = "round_robin",
                 backend: str | None = None,
                 software_threshold: int = 16384,
                 cross_chip_penalty_us: float = 0.5,
                 **backend_kwargs) -> None:
        if isinstance(machine, str):
            machine = get_machine(machine)
        if chips < 1:
            raise ConfigError(f"need at least one chip, got {chips}")
        if policy not in ROUTING_POLICIES:
            raise ConfigError(f"unknown pool policy {policy!r}; "
                              f"have {ROUTING_POLICIES}")
        self.machine = machine
        self.chips = chips
        self.policy = policy
        self.backend_name = backend or default_backend(machine)
        self.software_threshold = software_threshold
        self.cross_chip_penalty_us = cross_chip_penalty_us
        self._backend_kwargs = backend_kwargs
        self._instances: list[CompressionBackend | None] = [None] * chips
        self._software: CompressionBackend | None = None
        self._rr_state = [0]
        self._pending_bytes = [0] * chips
        self.dispatch_counts = [0] * chips
        self.software_jobs = 0
        self._open: list[PoolJob] = []
        self._by_pending: dict[tuple[int, int], PoolJob] = {}
        self._next_index = 0
        self._lock = threading.Lock()

    # -- instance management -------------------------------------------------

    def backend_for(self, chip: int) -> CompressionBackend:
        """The (lazily created) backend instance serving ``chip``."""
        if chip == SOFTWARE:
            if self._software is None:
                self._software = create_backend("software",
                                                machine=self.machine)
            return self._software
        if not 0 <= chip < self.chips:
            raise ConfigError(f"chip {chip} outside pool of {self.chips}")
        if self._instances[chip] is None:
            self._instances[chip] = create_backend(
                self.backend_name, machine=self.machine,
                **self._backend_kwargs)
        return self._instances[chip]

    def close(self) -> None:
        for instance in self._instances:
            if instance is not None:
                instance.close()
        if self._software is not None:
            self._software.close()

    def __enter__(self) -> "AcceleratorPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- routing -------------------------------------------------------------

    def route(self, nbytes: int, home: int = 0) -> int:
        """Pick the chip (or :data:`SOFTWARE`) for an ``nbytes`` job."""
        if self.policy == "size_threshold":
            if nbytes < self.software_threshold:
                return SOFTWARE
            return choose_chip("round_robin", home, self._loads(),
                               self._rr_state)
        return choose_chip(self.policy, home, self._loads(),
                           self._rr_state)

    def _loads(self) -> list[float]:
        """Per-chip pending bytes plus bytes already served (live proxy
        for queue depth: synchronous calls never leave work pending)."""
        loads: list[float] = []
        for chip in range(self.chips):
            served = (self._instances[chip].stats().bytes_in
                      if self._instances[chip] is not None else 0)
            loads.append(self._pending_bytes[chip] + served)
        return loads

    def _dispatch(self, chip: int) -> None:
        with self._lock:
            if chip == SOFTWARE:
                self.software_jobs += 1
            else:
                self.dispatch_counts[chip] += 1
        if _REGISTRY.enabled:
            target = "software" if chip == SOFTWARE else str(chip)
            _REGISTRY.counter("repro_pool_dispatch_total",
                              "jobs routed per chip").inc(1, chip=target)

    def _route_traced(self, nbytes: int, home: int) -> int:
        """Route + dispatch accounting, under a ``pool.route`` span."""
        if _TRACE.enabled:
            with _TRACE.span("pool.route", policy=self.policy,
                             nbytes=nbytes, home=home) as span:
                chip = self.route(nbytes, home)
                span.set(chip="software" if chip == SOFTWARE else chip)
        else:
            chip = self.route(nbytes, home)
        self._dispatch(chip)
        return chip

    # -- synchronous operations ----------------------------------------------

    def compress(self, data: bytes, *, strategy: object = "auto",
                 fmt: str | None = None, history: bytes = b"",
                 final: bool = True, home: int = 0) -> DriverResult:
        chip = self._route_traced(len(data), home)
        return self.backend_for(chip).compress(
            data, strategy=strategy, fmt=fmt, history=history, final=final)

    def decompress(self, payload: bytes, *, fmt: str | None = None,
                   history: bytes = b"", home: int = 0) -> DriverResult:
        chip = self._route_traced(len(payload), home)
        return self.backend_for(chip).decompress(payload, fmt=fmt,
                                                 history=history)

    # -- asynchronous batch submission ---------------------------------------

    def submit_compress(self, data: bytes, *, strategy: object = "auto",
                        fmt: str | None = None, home: int = 0) -> PoolJob:
        return self._submit("compress", data, strategy, fmt, home)

    def submit_decompress(self, payload: bytes, *, fmt: str | None = None,
                          home: int = 0) -> PoolJob:
        return self._submit("decompress", payload, "auto", fmt, home)

    def _submit(self, kind: str, data: bytes, strategy: object,
                fmt: str | None, home: int) -> PoolJob:
        chip = self._route_traced(len(data), home)
        backend = self.backend_for(chip)
        with self._lock:
            job = PoolJob(index=self._next_index, chip=chip,
                          nbytes=len(data), kind=kind)
            self._next_index += 1
        if chip != SOFTWARE and hasattr(backend, "submit"):
            pending = backend.submit(kind, data, strategy=strategy, fmt=fmt)
            with self._lock:
                self._pending_bytes[chip] += len(data)
                self._by_pending[(chip, pending.sequence)] = job
            self._publish_in_flight()
        elif kind == "compress":
            job.result = backend.compress(data, strategy=strategy, fmt=fmt)
        else:
            job.result = backend.decompress(data, fmt=fmt)
        with self._lock:
            self._open.append(job)
        return job

    def poll(self) -> list[PoolJob]:
        """Drain every chip once; returns jobs that completed."""
        finished: list[PoolJob] = []
        for chip, instance in enumerate(self._instances):
            if instance is None or not hasattr(instance, "poll"):
                continue
            for pending in instance.poll():
                with self._lock:
                    job = self._by_pending.pop((chip, pending.sequence),
                                               None)
                    if job is None:
                        continue
                    job.result = pending.result
                    self._pending_bytes[chip] -= job.nbytes
                finished.append(job)
        if finished:
            self._publish_in_flight()
        return finished

    def wait_all(self) -> list[DriverResult]:
        """Complete every open job; results in submission order."""
        for chip, instance in enumerate(self._instances):
            if (instance is None or not hasattr(instance, "wait_all")
                    or not instance.in_flight):
                continue
            for pending in instance.wait_all():
                with self._lock:
                    job = self._by_pending.pop((chip, pending.sequence),
                                               None)
                    if job is None:
                        continue
                    job.result = pending.result
                    self._pending_bytes[chip] -= job.nbytes
        with self._lock:
            results = [job.result for job in self._open]
            self._open = []
        self._publish_in_flight()
        return results

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._by_pending)

    def _publish_in_flight(self) -> None:
        if _REGISTRY.enabled:
            _REGISTRY.gauge("repro_pool_in_flight",
                            "batch jobs awaiting completion").set(
                self.in_flight)

    # -- aggregate accounting ------------------------------------------------

    def stats(self) -> PoolStats:
        """One consistent, immutable snapshot across every instance.

        All counters — per-instance totals, dispatch/software counts,
        in-flight depth — are read in a single critical section, so a
        snapshot taken mid-batch never shows e.g. a dispatch without its
        matching request total.
        """
        with self._lock:
            instances = [i for i in self._instances if i is not None]
            if self._software is not None:
                instances.append(self._software)
            requests = bytes_in = bytes_out = faults = fallbacks = 0
            modelled = 0.0
            for instance in instances:
                part = instance.stats()
                requests += part.requests
                bytes_in += part.bytes_in
                bytes_out += part.bytes_out
                modelled += part.modelled_seconds
                faults += part.faults
                fallbacks += part.fallbacks
            return PoolStats(
                requests=requests, bytes_in=bytes_in, bytes_out=bytes_out,
                modelled_seconds=modelled, faults=faults,
                fallbacks=fallbacks,
                dispatch_counts=tuple(self.dispatch_counts),
                software_jobs=self.software_jobs,
                in_flight=len(self._by_pending))

    # -- capacity planning ---------------------------------------------------

    def simulate_load(self, per_chip_load: list[float], duration_s: float,
                      size_bytes: int = 262144,
                      seed: int = 42) -> RoutingResult:
        """Queueing DES of this pool's topology under offered load.

        Answers "what would latency/throughput look like" without
        executing jobs — the capacity-planning view of the same policy
        kernel the live ``route`` uses.
        """
        if self.policy == "size_threshold":
            raise ConfigError(
                "size_threshold has no queueing analogue; simulate with "
                "local/round_robin/least_loaded")
        topology = Topology(machine=self.machine,
                            chips_per_drawer=self.chips, drawers=1,
                            cross_chip_penalty_us=self.cross_chip_penalty_us)
        router = MultiChipRouter(topology, policy=self.policy,
                                 size_bytes=size_bytes, seed=seed)
        return router.run(list(per_chip_load), duration_s)
