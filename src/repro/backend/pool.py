"""AcceleratorPool: N per-chip backend instances behind one job router.

A multi-chip system has one NX/zEDC per chip; production software must
decide *which* chip's engine serves each request.  The pool owns one
backend instance per chip (created lazily, so policy studies on large
topologies don't build N driver stacks) plus a software instance for
the size-threshold fallback, and routes with the same policy kernel the
DES in :mod:`repro.perf.routing` uses:

* ``local``          — the submitting chip's engine;
* ``round_robin``    — rotate across chips;
* ``least_loaded``   — fewest pending + served bytes, local on ties;
* ``size_threshold`` — small buffers to software (below break-even the
  invocation overhead dominates), large ones round-robin across chips.

Batch submission rides the asynchronous paste/drain machinery when the
per-chip backend provides it (``submit``/``poll``/``wait_all``), and
falls back to synchronous execution when it does not, so the pool works
identically over ``nx`` and ``dfltcc`` backends.

The pool is also where resilience lives (the RAS discipline of the z15
part — a shared accelerator fails *per request*, never per tenant):

* every chip has a :class:`~repro.resilience.health.CircuitBreaker`;
  consecutive failures quarantine the chip and ``route()`` excludes it,
  half-open chips must pass known-answer probes
  (:func:`~repro.nx.selftest.probe_backend`) before user jobs return;
* a hardware failure is *rescued* — the job reruns on the calling core
  so the caller still gets correct bytes — unless
  ``allow_software_rescue=False``, in which case an all-open pool
  raises :class:`~repro.errors.ChipUnavailable`;
* ``verify=True`` re-inflates every compressed payload and CRC-checks
  it before returning (verify-after-compress); a mismatch counts as a
  chip failure and the payload is re-encoded in software.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from ..errors import (AcceleratorError, ChipUnavailable, ConfigError,
                      DeadlineExceeded, ExecError, WorkerCrash)
from ..nx.params import POWER9, MachineParams, Topology, get_machine
from ..obs.flight import FLIGHT as _FLIGHT
from ..obs.metrics import REGISTRY as _REGISTRY
from ..obs.trace import TRACE as _TRACE
from ..perf.routing import MultiChipRouter, RoutingResult, choose_chip
from ..resilience.health import HealthConfig, HealthTracker
from ..resilience.verify import (decode_payload, note_mismatch,
                                 software_compress, verify_payload)
from ..sysstack.driver import DriverResult, SubmissionStats
from .base import CompressionBackend
from .registry import create_backend, default_backend

#: Pool routing policies (superset of the DES policies: adds the
#: software fallback threshold, which has no queueing analogue).
ROUTING_POLICIES = ("local", "round_robin", "least_loaded",
                    "size_threshold")

#: Pseudo chip index for the software-fallback instance.
SOFTWARE = -1

#: E16's finding: a few in-flight requests saturate one engine (depth 4
#: reaches full utilisation on 64 KB jobs); deeper batches only queue.
SATURATION_DEPTH = 4

#: How long a blocking exec drain tolerates *zero* completions before
#: declaring unresolved jobs orphaned (worker died in its claim window)
#: and rescuing them; any progress restarts the window.
_EXEC_ORPHAN_TIMEOUT_S = 10.0


def _hardware_clean(result: DriverResult) -> bool:
    """Did the hardware serve this without misbehaving?

    Translation faults and target regrowth are *protocol*, not failure;
    hangs, spurious CCs, and retry-exhausted software fallbacks are the
    breaker-relevant signals.
    """
    stats = result.stats
    return not (stats.fallback_to_software
                or getattr(stats, "engine_hangs", 0)
                or getattr(stats, "spurious_ccs", 0))


@dataclass(frozen=True)
class PoolStats:
    """One immutable, mutually consistent snapshot of pool activity.

    Built under the pool's lock in a single pass, so ``requests`` /
    ``bytes_*`` / ``dispatch_counts`` / ``in_flight`` all describe the
    same instant even while another thread is batch-submitting.
    """

    requests: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    modelled_seconds: float = 0.0
    faults: int = 0
    fallbacks: int = 0
    dispatch_counts: tuple[int, ...] = ()
    software_jobs: int = 0
    in_flight: int = 0
    rescues: int = 0
    verify_failures: int = 0
    breaker_opens: int = 0
    breaker_states: tuple[str, ...] = ()


class _ExecPending:
    """Adapter giving an exec-layer job the driver-pending interface.

    :meth:`AcceleratorPool._finish_pending` consumes driver pendings
    (``sequence``/``done``/``result``/``error``); wrapping a
    :class:`~repro.exec.pool.ExecJob` in the same shape lets jobs that
    ran in a pool worker flow through the *identical* completion path —
    rescue, breaker accounting, verify-after-compress — as jobs the
    async hardware drivers resolved.
    """

    __slots__ = ("sequence", "exec_job", "src_slab", "out_slab",
                 "result", "error", "nbytes", "kind", "poisoned")

    def __init__(self, sequence: str, exec_job,
                 src_slab, out_slab) -> None:
        self.sequence = sequence
        self.exec_job = exec_job
        self.src_slab = src_slab
        self.out_slab = out_slab
        self.result: DriverResult | None = None
        self.error: Exception | None = None
        #: An orphan-failed job's task may still sit in the shared queue;
        #: its slabs must be unlinked, never recycled, or a worker could
        #: eventually run the stale task and scribble over whichever job
        #: reused them.  Unlinking is safe: names are never reissued, so
        #: the stale run hits FileNotFoundError (or a dead mapping) and
        #: its completion is ignored.
        self.poisoned = False

    @property
    def done(self) -> bool:
        return self.result is not None or self.error is not None


@dataclass
class PoolJob:
    """One batch-submitted request and where it was routed.

    The original payload is retained until completion so a job whose
    chip fails mid-flight can be rescued in software.  ``error`` is set
    when the job terminally failed (and no rescue was possible).
    """

    index: int
    chip: int
    nbytes: int
    kind: str
    result: DriverResult | None = None
    payload: bytes = field(default=b"", repr=False)
    fmt: str | None = None
    error: Exception | None = None

    @property
    def done(self) -> bool:
        return self.result is not None or self.error is not None

    @property
    def failed(self) -> bool:
        return self.error is not None


class AcceleratorPool:
    """Owns per-chip accelerator backends and routes jobs across them."""

    def __init__(self, machine: MachineParams | str = POWER9,
                 chips: int = 1, policy: str = "round_robin",
                 backend: str | None = None,
                 software_threshold: int = 16384,
                 cross_chip_penalty_us: float = 0.5,
                 health: HealthConfig | None = None,
                 verify: bool = False,
                 allow_software_rescue: bool = True,
                 exec_workers: int | None = None,
                 exec_pool=None,
                 **backend_kwargs) -> None:
        if isinstance(machine, str):
            machine = get_machine(machine)
        if chips < 1:
            raise ConfigError(f"need at least one chip, got {chips}")
        if policy not in ROUTING_POLICIES:
            raise ConfigError(f"unknown pool policy {policy!r}; "
                              f"have {ROUTING_POLICIES}")
        self.machine = machine
        self.chips = chips
        self.policy = policy
        self.backend_name = backend or default_backend(machine)
        self.software_threshold = software_threshold
        self.cross_chip_penalty_us = cross_chip_penalty_us
        self.health = HealthTracker(chips, health)
        self.verify = verify
        self.allow_software_rescue = allow_software_rescue
        self._backend_kwargs = backend_kwargs
        self._instances: list[CompressionBackend | None] = [None] * chips
        self._software: CompressionBackend | None = None
        self._rr_state = [0]
        self._pending_bytes = [0] * chips
        self.dispatch_counts = [0] * chips
        self.software_jobs = 0
        self.rescues = 0
        self.verify_failures = 0
        self._open: list[PoolJob] = []
        self._by_pending: dict[tuple[int, object], PoolJob] = {}
        self._next_index = 0
        # Process-based execution of batch submits on synchronous
        # backends: opt-in via exec_workers (shared warm pool) or an
        # explicitly provided exec_pool.
        self.exec_workers = exec_workers
        self._exec_pool = exec_pool
        self._exec_seq = itertools.count(1)
        self._exec_open: list[tuple[int, _ExecPending]] = []
        self._lock = threading.Lock()
        # One lock per chip handle (plus software): a chip's send window
        # serves one request context at a time, so concurrent callers
        # serialize per chip while different chips run in parallel.
        self._chip_locks = [threading.Lock() for _ in range(chips)]
        self._software_lock = threading.Lock()

    # -- instance management -------------------------------------------------

    def backend_for(self, chip: int) -> CompressionBackend:
        """The (lazily created) backend instance serving ``chip``."""
        if chip == SOFTWARE:
            if self._software is None:
                with self._lock:
                    if self._software is None:
                        self._software = create_backend(
                            "software", machine=self.machine)
            return self._software
        if not 0 <= chip < self.chips:
            raise ConfigError(f"chip {chip} outside pool of {self.chips}")
        if self._instances[chip] is None:
            with self._lock:
                if self._instances[chip] is None:
                    self._instances[chip] = create_backend(
                        self.backend_name, machine=self.machine,
                        **self._backend_kwargs)
        return self._instances[chip]

    def _op_lock(self, chip: int) -> threading.Lock:
        return (self._software_lock if chip == SOFTWARE
                else self._chip_locks[chip])

    def close(self) -> None:
        for instance in self._instances:
            if instance is not None:
                instance.close()
        if self._software is not None:
            self._software.close()

    def __enter__(self) -> "AcceleratorPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- routing -------------------------------------------------------------

    def route(self, nbytes: int, home: int = 0) -> int:
        """Pick the chip (or :data:`SOFTWARE`) for an ``nbytes`` job.

        Quarantined chips (breaker OPEN) are never returned: the policy
        kernel's pick is remapped deterministically onto the healthy
        subset.  With every breaker open the job goes to software, or —
        when ``allow_software_rescue`` is off — :class:`ChipUnavailable`
        is raised so the caller can shed load instead.
        """
        if (self.policy == "size_threshold"
                and nbytes < self.software_threshold):
            return SOFTWARE
        available = self.health.available_chips()
        if not available:
            if self.allow_software_rescue:
                _TRACE.event("pool.all_chips_down")
                _FLIGHT.auto_dump("all_chips_down", chips=self.chips)
                return SOFTWARE
            raise ChipUnavailable(
                "every chip's circuit breaker is open")
        policy = ("round_robin" if self.policy == "size_threshold"
                  else self.policy)
        with self._lock:
            chip = choose_chip(policy, home, self._loads(), self._rr_state)
        if chip not in available:
            chip = available[chip % len(available)]
        return chip

    def _loads(self) -> list[float]:
        """Per-chip pending bytes plus bytes already served (live proxy
        for queue depth: synchronous calls never leave work pending)."""
        loads: list[float] = []
        for chip in range(self.chips):
            served = (self._instances[chip].stats().bytes_in
                      if self._instances[chip] is not None else 0)
            loads.append(self._pending_bytes[chip] + served)
        return loads

    def _dispatch(self, chip: int) -> None:
        with self._lock:
            if chip == SOFTWARE:
                self.software_jobs += 1
            else:
                self.dispatch_counts[chip] += 1
        if _REGISTRY.enabled:
            target = "software" if chip == SOFTWARE else str(chip)
            _REGISTRY.counter("repro_pool_dispatch_total",
                              "jobs routed per chip").inc(1, chip=target)

    def _route_traced(self, nbytes: int, home: int) -> int:
        """Route + probes + dispatch accounting, under a span."""
        chip, _span = self._route_spanned(nbytes, home)
        return chip

    def _route_spanned(self, nbytes: int, home: int) -> tuple[int, object]:
        """Like :meth:`_route_traced`, also returning the route span.

        The (closed) ``pool.route`` span is the parent that worker-side
        spans folded back from the execution layer nest under — fold
        only reads its identifiers, so handing out a finished span is
        fine.
        """
        span = None
        if _TRACE.enabled:
            with _TRACE.span("pool.route", policy=self.policy,
                             nbytes=nbytes, home=home) as span:
                chip = self._route_healthy(nbytes, home)
                span.set(chip="software" if chip == SOFTWARE else chip)
        else:
            chip = self._route_healthy(nbytes, home)
        self._dispatch(chip)
        return chip, span

    def _route_healthy(self, nbytes: int, home: int) -> int:
        """One routing tick; half-open picks must pass their probes."""
        self.health.tick()
        for _ in range(self.chips + 1):
            chip = self.route(nbytes, home)
            if chip == SOFTWARE or self._probe(chip):
                return chip
        # Every half-open candidate failed its probe this tick.
        if self.allow_software_rescue:
            _TRACE.event("pool.all_chips_down")
            _FLIGHT.auto_dump("all_chips_down", chips=self.chips)
            return SOFTWARE
        raise ChipUnavailable("no chip passed its recovery probe")

    def _probe(self, chip: int) -> bool:
        """Run known-answer probes while ``chip`` is half-open.

        Returns True when the chip may serve the user job (CLOSED, or
        it passed enough probes to close); False re-opens the breaker.
        """
        if not self.health.needs_probe(chip):
            return True
        from ..nx.selftest import probe_backend

        backend = self.backend_for(chip)
        with self._op_lock(chip):
            while self.health.needs_probe(chip):
                if not hasattr(backend, "accelerator"):
                    # Software-ish backend: nothing hardware to probe.
                    self.health.record_success(chip)
                    continue
                if probe_backend(backend):
                    self.health.record_success(chip)
                else:
                    self.health.record_failure(chip)  # half-open -> open
                    return False
        return True

    # -- synchronous operations ----------------------------------------------

    def compress(self, data: bytes, *, strategy: object = "auto",
                 fmt: str | None = None, history: bytes = b"",
                 final: bool = True, home: int = 0,
                 deadline_s: float | None = None,
                 verify: bool | None = None) -> DriverResult:
        chip = self._route_traced(len(data), home)
        backend = self.backend_for(chip)
        fmt = fmt or backend.capabilities().default_format
        try:
            with self._op_lock(chip):
                result = backend.compress(data, strategy=strategy, fmt=fmt,
                                          history=history, final=final,
                                          deadline_s=deadline_s)
        except DeadlineExceeded:
            # A late chip is a sick chip, but the deadline is the
            # caller's contract — no software rescue behind its back.
            self._note_health(chip, healthy=False)
            _FLIGHT.auto_dump("deadline_exceeded", layer="pool",
                              kind="compress", chip=chip, nbytes=len(data))
            raise
        except AcceleratorError as exc:
            if chip == SOFTWARE:
                raise
            self._note_health(chip, healthy=False)
            result = self._rescue("compress", data, fmt, exc)
        else:
            self._note_health(chip, healthy=_hardware_clean(result))
        do_verify = self.verify if verify is None else verify
        if do_verify and final and not history:
            result = self._verified(chip, data, fmt, result)
        return result

    def decompress(self, payload: bytes, *, fmt: str | None = None,
                   history: bytes = b"", home: int = 0,
                   deadline_s: float | None = None) -> DriverResult:
        chip = self._route_traced(len(payload), home)
        backend = self.backend_for(chip)
        fmt = fmt or backend.capabilities().default_format
        try:
            with self._op_lock(chip):
                result = backend.decompress(payload, fmt=fmt,
                                            history=history,
                                            deadline_s=deadline_s)
        except DeadlineExceeded:
            self._note_health(chip, healthy=False)
            _FLIGHT.auto_dump("deadline_exceeded", layer="pool",
                              kind="decompress", chip=chip,
                              nbytes=len(payload))
            raise
        except AcceleratorError as exc:
            if chip == SOFTWARE:
                raise
            self._note_health(chip, healthy=False)
            result = self._rescue("decompress", payload, fmt, exc)
        else:
            self._note_health(chip, healthy=_hardware_clean(result))
        return result

    # -- resilience plumbing -------------------------------------------------

    def _note_health(self, chip: int, healthy: bool) -> None:
        if chip == SOFTWARE:
            return
        if healthy:
            self.health.record_success(chip)
        else:
            self.health.record_failure(chip)

    def _rescue(self, kind: str, data: bytes, fmt: str,
                cause: Exception) -> DriverResult:
        """Re-run a failed hardware job on the calling core.

        Raises the original ``cause`` when rescue is disabled — the
        caller asked for fail-fast semantics.
        """
        if not self.allow_software_rescue:
            raise cause
        with self._lock:
            self.rescues += 1
        _TRACE.event("pool.rescue", kind=kind, cause=type(cause).__name__)
        _FLIGHT.record("pool.rescue", kind=kind,
                       cause=type(cause).__name__, nbytes=len(data))
        if _REGISTRY.enabled:
            _REGISTRY.counter(
                "repro_resilience_rescues_total",
                "hardware jobs re-run in software after a failure").inc(
                1, kind=kind)
        stats = SubmissionStats(fallback_to_software=True)
        if kind == "compress":
            output, seconds = software_compress(data, fmt=fmt,
                                                machine=self.machine)
        else:
            from ..perf.cost import SoftwareCostModel

            output = decode_payload(data, fmt)
            seconds = SoftwareCostModel(self.machine).decompress_seconds(
                len(output))
        stats.elapsed_seconds = seconds
        return DriverResult(output=output, csb=None, stats=stats)

    def _verified(self, chip: int, original: bytes, fmt: str,
                  result: DriverResult) -> DriverResult:
        """Verify-after-compress: CRC-checked round trip or re-encode."""
        if verify_payload(original, result.output, fmt):
            return result
        backend_name = ("software" if chip == SOFTWARE
                        else self.backend_name)
        note_mismatch(backend_name, fmt, len(original))
        _FLIGHT.auto_dump("verify_failure", backend=backend_name,
                          fmt=fmt, chip=chip, nbytes=len(original))
        with self._lock:
            self.verify_failures += 1
        self._note_health(chip, healthy=False)
        output, seconds = software_compress(original, fmt=fmt,
                                            machine=self.machine)
        with self._lock:
            self.rescues += 1
        stats = result.stats
        stats.fallback_to_software = True
        stats.elapsed_seconds += seconds
        return DriverResult(output=output, csb=None, stats=stats)

    # -- asynchronous batch submission ---------------------------------------

    def submit_compress(self, data: bytes, *, strategy: object = "auto",
                        fmt: str | None = None, home: int = 0,
                        deadline_s: float | None = None) -> PoolJob:
        return self._submit("compress", data, strategy, fmt, home,
                            deadline_s)

    def submit_decompress(self, payload: bytes, *, fmt: str | None = None,
                          home: int = 0,
                          deadline_s: float | None = None) -> PoolJob:
        return self._submit("decompress", payload, "auto", fmt, home,
                            deadline_s)

    def _submit(self, kind: str, data: bytes, strategy: object,
                fmt: str | None, home: int,
                deadline_s: float | None = None) -> PoolJob:
        chip, route_span = self._route_spanned(len(data), home)
        backend = self.backend_for(chip)
        fmt = fmt or backend.capabilities().default_format
        with self._lock:
            job = PoolJob(index=self._next_index, chip=chip,
                          nbytes=len(data), kind=kind, payload=data,
                          fmt=fmt)
            self._next_index += 1
        if chip != SOFTWARE and hasattr(backend, "submit"):
            with self._op_lock(chip):
                pending = backend.submit(kind, data, strategy=strategy,
                                         fmt=fmt, deadline_s=deadline_s)
            with self._lock:
                self._pending_bytes[chip] += len(data)
                self._by_pending[(chip, pending.sequence)] = job
            self._publish_in_flight()
            # The paste itself may have resolved the job (software
            # fallback on a wedged window, deadline, permanent CC).
            if pending.done:
                self._finish_pending(chip, pending)
        elif (chip != SOFTWARE and isinstance(strategy, str)
                and self._exec() is not None):
            # Synchronous backend + execution layer: the job runs in a
            # pool worker process and resolves through the same
            # _finish_pending path as driver completions, so rescue,
            # breakers, and verify behave identically.
            pending = self._submit_exec(chip, kind, data, strategy, fmt,
                                        deadline_s,
                                        span_parent=route_span)
            with self._lock:
                self._pending_bytes[chip] += len(data)
                self._by_pending[(chip, pending.sequence)] = job
                self._exec_open.append((chip, pending))
            self._publish_in_flight()
        else:
            with self._op_lock(chip):
                if kind == "compress":
                    job.result = backend.compress(data, strategy=strategy,
                                                  fmt=fmt,
                                                  deadline_s=deadline_s)
                else:
                    job.result = backend.decompress(data, fmt=fmt,
                                                    deadline_s=deadline_s)
        with self._lock:
            self._open.append(job)
        return job

    def _finish_pending(self, chip: int, pending) -> PoolJob | None:
        """Resolve one driver completion into its pool job.

        Failed hardware jobs are rescued in software (the caller still
        gets correct bytes) except for deadline failures, which stay
        failed — rescuing would blow the caller's latency contract.
        """
        with self._lock:
            job = self._by_pending.pop((chip, pending.sequence), None)
            if job is None:
                return None
            self._pending_bytes[chip] -= job.nbytes
        if pending.result is None:
            error = pending.error or AcceleratorError(
                "pending job resolved with neither result nor error")
            self._note_health(chip, healthy=False)
            if (self.allow_software_rescue
                    and not isinstance(error, DeadlineExceeded)):
                try:
                    job.result = self._rescue(job.kind, job.payload,
                                              job.fmt, error)
                except Exception as exc:  # bad input: fails anywhere
                    job.error = exc
            else:
                job.error = error
        else:
            self._note_health(chip,
                              healthy=_hardware_clean(pending.result))
            job.result = pending.result
            if self.verify and job.kind == "compress":
                job.result = self._verified(chip, job.payload, job.fmt,
                                            job.result)
        return job

    # -- process-based execution of sync-backend batches ---------------------

    @property
    def exec_enabled(self) -> bool:
        """Whether batch submits may run on the process execution layer."""
        return self.exec_workers is not None or self._exec_pool is not None

    def _exec(self):
        """The execution pool serving this AcceleratorPool, if enabled."""
        if self.exec_workers is None and self._exec_pool is None:
            return None
        from ..exec.worker import in_worker
        if in_worker():
            return None
        if self._exec_pool is None or self._exec_pool.closed \
                or self._exec_pool.broken:
            from ..exec.pool import get_default_pool
            try:
                self._exec_pool = get_default_pool(self.exec_workers)
            except ExecError:
                return None
        return self._exec_pool

    def _submit_exec(self, chip: int, kind: str, data: bytes,
                     strategy: str, fmt: str,
                     deadline_s: float | None,
                     span_parent: object = None) -> _ExecPending:
        """Ship one job to a pool worker; payload via shared memory.

        ``span_parent`` (normally the request's ``pool.route`` span) is
        where the worker's folded spans nest; the current wire trace
        context rides along as a ``traceparent`` so the worker's root
        span also joins the originating trace on the wire level.
        """
        pool = self._exec_pool
        allocator = pool.allocator
        src_slab = allocator.acquire(max(1, len(data)))
        src_slab.write(0, data)
        out_slab = None
        out = None
        if kind == "compress":
            # Compressed output fits input + slack; decompressed output
            # is unbounded, so it rides back inline instead.
            cap = len(data) + len(data) // 4 + 256
            out_slab = allocator.acquire(cap)
            out = (out_slab.name, 0, cap)
        ctx = _TRACE.current_ctx()
        exec_job = pool.submit(
            "backend_job",
            span_parent=(span_parent if span_parent is not None
                         else _TRACE.current()),
            traceparent=ctx.to_traceparent() if ctx else None,
            backend=self.backend_name,
            machine=self.machine.name,
            backend_kwargs=self._backend_kwargs,
            kind=kind, fmt=fmt, strategy=strategy,
            deadline_s=deadline_s,
            src=(src_slab.name, 0, len(data)),
            out=out)
        pending = _ExecPending(f"exec:{next(self._exec_seq)}", exec_job,
                               src_slab, out_slab)
        pending.nbytes = len(data)
        pending.kind = kind
        return pending

    def _resolve_exec(self, chip: int, pending: _ExecPending) -> None:
        """Translate a finished exec job into a pending result/error."""
        exec_job = pending.exec_job
        try:
            if exec_job.error is not None:
                pending.error = exec_job.error
            elif exec_job.result is None:
                pending.error = ExecError(
                    "exec job resolved with neither result nor error")
            else:
                record = exec_job.result
                output = record.get("inline")
                if output is None:
                    output = pending.out_slab.read(0, record["n"])
                pending.result = DriverResult(output=output, csb=None,
                                              stats=record["stats"])
                # The worker instance's accounting died with the job's
                # process; record once against the parent-side instance
                # so BackendStats and the registry stay truthful.
                self.backend_for(chip)._record(pending.result,
                                               pending.nbytes,
                                               pending.kind)
        finally:
            allocator = self._exec_pool.allocator
            for slab in (pending.src_slab, pending.out_slab):
                if slab is None:
                    continue
                if pending.poisoned:
                    slab.destroy()
                else:
                    allocator.release(slab)

    def _drain_exec(self, block: bool) -> list[PoolJob]:
        """Resolve finished exec jobs through the completion path.

        The execution pool is shared (parallel_deflate batches ride the
        same fleet), so this never trusts the pool's own returned job
        lists — it polls the pool, then checks *its* handles.
        """
        with self._lock:
            open_pendings = list(self._exec_open)
        pool = self._exec_pool
        if pool is None or not open_pendings:
            return []
        if block:
            # A worker killed between popping a task and writing its
            # claim record leaves a job nothing will ever resolve.  A
            # stalled *total* wait can't distinguish that from a long
            # queue, so the orphan verdict is progress-based: only when
            # no handle at all resolves for the full window are the
            # stragglers failed (rescue then recomputes them).
            handles = [pending.exec_job for _, pending in open_pendings]
            while any(not job.done for job in handles):
                done_before = sum(1 for job in handles if job.done)
                try:
                    pool.wait([job for job in handles if not job.done],
                              timeout_s=_EXEC_ORPHAN_TIMEOUT_S)
                except TimeoutError:
                    if sum(1 for job in handles
                           if job.done) > done_before:
                        continue  # progress: not orphaned, keep waiting
                    for _, pending in open_pendings:
                        if not pending.exec_job.done:
                            pending.poisoned = True
                            pool.fail_job(pending.exec_job, WorkerCrash(
                                "job orphaned by a dying worker"))
        else:
            pool.poll()
        finished: list[PoolJob] = []
        for chip, pending in open_pendings:
            if not pending.exec_job.done:
                continue
            self._resolve_exec(chip, pending)
            with self._lock:
                self._exec_open.remove((chip, pending))
            job = self._finish_pending(chip, pending)
            if job is not None:
                finished.append(job)
        return finished

    def poll(self) -> list[PoolJob]:
        """Drain every chip once; returns jobs that resolved."""
        finished: list[PoolJob] = []
        for chip, instance in enumerate(self._instances):
            if instance is None or not hasattr(instance, "poll"):
                continue
            with self._op_lock(chip):
                resolved = instance.poll()
            for pending in resolved:
                job = self._finish_pending(chip, pending)
                if job is not None:
                    finished.append(job)
        finished.extend(self._drain_exec(block=False))
        if finished:
            self._publish_in_flight()
        return finished

    def wait_all(self) -> list[DriverResult | None]:
        """Complete every open job; results in submission order.

        A job that terminally failed (deadline, unrescuable input)
        yields ``None`` in its slot; its exception is on the
        :class:`PoolJob` handle returned at submit time.
        """
        for chip, instance in enumerate(self._instances):
            if (instance is None or not hasattr(instance, "wait_all")
                    or not instance.in_flight):
                continue
            with self._op_lock(chip):
                resolved = instance.wait_all()
            for pending in resolved:
                self._finish_pending(chip, pending)
        self._drain_exec(block=True)
        with self._lock:
            results = [job.result for job in self._open]
            self._open = []
        self._publish_in_flight()
        return results

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._by_pending)

    def cancel_in_flight(self) -> list[PoolJob]:
        """Abandon every pending batch job (hung-engine recovery).

        Each chip's driver flushes its FIFOs, resets hung engines, and
        reclaims window credits; the abandoned jobs come back through
        :meth:`_finish_pending`, where the normal failure path applies —
        so with rescue enabled callers still receive correct bytes,
        computed on the CPU.
        """
        resolved: list[PoolJob] = []
        for chip, instance in enumerate(self._instances):
            if instance is None or not hasattr(instance, "cancel_pending"):
                continue
            with self._op_lock(chip):
                cancelled = instance.cancel_pending()
            for pending in cancelled:
                job = self._finish_pending(chip, pending)
                if job is not None:
                    resolved.append(job)
        # Exec jobs are CPU work already running in a worker, not wedged
        # hardware: drain them to completion rather than abandoning.
        resolved.extend(self._drain_exec(block=True))
        if resolved:
            self._publish_in_flight()
        return resolved

    def suggested_batch_depth(self) -> int:
        """How many jobs a caller should coalesce per async batch.

        E16's saturation depth (:data:`SATURATION_DEPTH`) per healthy
        chip, capped by the aggregate window credits when the backend
        exposes them — submitting past the credit pool only spins the
        paste loop.  This is what the service layer sizes its request
        coalescing with.
        """
        healthy = max(1, len(self.health.available_chips()))
        depth = SATURATION_DEPTH * healthy
        credits = 0
        for instance in self._instances:
            cap = getattr(instance, "capacity", 0)
            credits += cap if isinstance(cap, int) else 0
        if credits:
            depth = min(depth, credits)
        return max(1, depth)

    def _publish_in_flight(self) -> None:
        if _REGISTRY.enabled:
            _REGISTRY.gauge("repro_pool_in_flight",
                            "batch jobs awaiting completion").set(
                self.in_flight)

    # -- aggregate accounting ------------------------------------------------

    def stats(self) -> PoolStats:
        """One consistent, immutable snapshot across every instance.

        All counters — per-instance totals, dispatch/software counts,
        in-flight depth — are read in a single critical section, so a
        snapshot taken mid-batch never shows e.g. a dispatch without its
        matching request total.
        """
        with self._lock:
            instances = [i for i in self._instances if i is not None]
            if self._software is not None:
                instances.append(self._software)
            requests = bytes_in = bytes_out = faults = fallbacks = 0
            modelled = 0.0
            for instance in instances:
                part = instance.stats()
                requests += part.requests
                bytes_in += part.bytes_in
                bytes_out += part.bytes_out
                modelled += part.modelled_seconds
                faults += part.faults
                fallbacks += part.fallbacks
            return PoolStats(
                requests=requests, bytes_in=bytes_in, bytes_out=bytes_out,
                modelled_seconds=modelled, faults=faults,
                fallbacks=fallbacks,
                dispatch_counts=tuple(self.dispatch_counts),
                software_jobs=self.software_jobs,
                in_flight=len(self._by_pending),
                rescues=self.rescues,
                verify_failures=self.verify_failures,
                breaker_opens=self.health.total_opens(),
                breaker_states=tuple(
                    b.state.name for b in self.health.breakers))

    # -- capacity planning ---------------------------------------------------

    def simulate_load(self, per_chip_load: list[float], duration_s: float,
                      size_bytes: int = 262144,
                      seed: int = 42) -> RoutingResult:
        """Queueing DES of this pool's topology under offered load.

        Answers "what would latency/throughput look like" without
        executing jobs — the capacity-planning view of the same policy
        kernel the live ``route`` uses.
        """
        if self.policy == "size_threshold":
            raise ConfigError(
                "size_threshold has no queueing analogue; simulate with "
                "local/round_robin/least_loaded")
        topology = Topology(machine=self.machine,
                            chips_per_drawer=self.chips, drawers=1,
                            cross_chip_penalty_us=self.cross_chip_penalty_us)
        router = MultiChipRouter(topology, policy=self.policy,
                                 size_bytes=size_bytes, seed=seed)
        return router.run(list(per_chip_load), duration_s)
