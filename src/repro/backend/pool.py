"""AcceleratorPool: N per-chip backend instances behind one job router.

A multi-chip system has one NX/zEDC per chip; production software must
decide *which* chip's engine serves each request.  The pool owns one
backend instance per chip (created lazily, so policy studies on large
topologies don't build N driver stacks) plus a software instance for
the size-threshold fallback, and routes with the same policy kernel the
DES in :mod:`repro.perf.routing` uses:

* ``local``          — the submitting chip's engine;
* ``round_robin``    — rotate across chips;
* ``least_loaded``   — fewest pending + served bytes, local on ties;
* ``size_threshold`` — small buffers to software (below break-even the
  invocation overhead dominates), large ones round-robin across chips.

Batch submission rides the asynchronous paste/drain machinery when the
per-chip backend provides it (``submit``/``poll``/``wait_all``), and
falls back to synchronous execution when it does not, so the pool works
identically over ``nx`` and ``dfltcc`` backends.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..nx.params import POWER9, MachineParams, Topology, get_machine
from ..perf.routing import MultiChipRouter, RoutingResult, choose_chip
from ..sysstack.driver import DriverResult
from .base import BackendStats, CompressionBackend
from .registry import create_backend, default_backend

#: Pool routing policies (superset of the DES policies: adds the
#: software fallback threshold, which has no queueing analogue).
ROUTING_POLICIES = ("local", "round_robin", "least_loaded",
                    "size_threshold")

#: Pseudo chip index for the software-fallback instance.
SOFTWARE = -1


@dataclass
class PoolJob:
    """One batch-submitted request and where it was routed."""

    index: int
    chip: int
    nbytes: int
    kind: str
    result: DriverResult | None = None

    @property
    def done(self) -> bool:
        return self.result is not None


class AcceleratorPool:
    """Owns per-chip accelerator backends and routes jobs across them."""

    def __init__(self, machine: MachineParams | str = POWER9,
                 chips: int = 1, policy: str = "round_robin",
                 backend: str | None = None,
                 software_threshold: int = 16384,
                 cross_chip_penalty_us: float = 0.5,
                 **backend_kwargs) -> None:
        if isinstance(machine, str):
            machine = get_machine(machine)
        if chips < 1:
            raise ConfigError(f"need at least one chip, got {chips}")
        if policy not in ROUTING_POLICIES:
            raise ConfigError(f"unknown pool policy {policy!r}; "
                              f"have {ROUTING_POLICIES}")
        self.machine = machine
        self.chips = chips
        self.policy = policy
        self.backend_name = backend or default_backend(machine)
        self.software_threshold = software_threshold
        self.cross_chip_penalty_us = cross_chip_penalty_us
        self._backend_kwargs = backend_kwargs
        self._instances: list[CompressionBackend | None] = [None] * chips
        self._software: CompressionBackend | None = None
        self._rr_state = [0]
        self._pending_bytes = [0] * chips
        self.dispatch_counts = [0] * chips
        self.software_jobs = 0
        self._open: list[PoolJob] = []
        self._by_pending: dict[tuple[int, int], PoolJob] = {}
        self._next_index = 0

    # -- instance management -------------------------------------------------

    def backend_for(self, chip: int) -> CompressionBackend:
        """The (lazily created) backend instance serving ``chip``."""
        if chip == SOFTWARE:
            if self._software is None:
                self._software = create_backend("software",
                                                machine=self.machine)
            return self._software
        if not 0 <= chip < self.chips:
            raise ConfigError(f"chip {chip} outside pool of {self.chips}")
        if self._instances[chip] is None:
            self._instances[chip] = create_backend(
                self.backend_name, machine=self.machine,
                **self._backend_kwargs)
        return self._instances[chip]

    def close(self) -> None:
        for instance in self._instances:
            if instance is not None:
                instance.close()
        if self._software is not None:
            self._software.close()

    def __enter__(self) -> "AcceleratorPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- routing -------------------------------------------------------------

    def route(self, nbytes: int, home: int = 0) -> int:
        """Pick the chip (or :data:`SOFTWARE`) for an ``nbytes`` job."""
        if self.policy == "size_threshold":
            if nbytes < self.software_threshold:
                return SOFTWARE
            return choose_chip("round_robin", home, self._loads(),
                               self._rr_state)
        return choose_chip(self.policy, home, self._loads(),
                           self._rr_state)

    def _loads(self) -> list[float]:
        """Per-chip pending bytes plus bytes already served (live proxy
        for queue depth: synchronous calls never leave work pending)."""
        loads: list[float] = []
        for chip in range(self.chips):
            served = (self._instances[chip].stats().bytes_in
                      if self._instances[chip] is not None else 0)
            loads.append(self._pending_bytes[chip] + served)
        return loads

    def _dispatch(self, chip: int) -> None:
        if chip == SOFTWARE:
            self.software_jobs += 1
        else:
            self.dispatch_counts[chip] += 1

    # -- synchronous operations ----------------------------------------------

    def compress(self, data: bytes, *, strategy: object = "auto",
                 fmt: str | None = None, history: bytes = b"",
                 final: bool = True, home: int = 0) -> DriverResult:
        chip = self.route(len(data), home)
        self._dispatch(chip)
        return self.backend_for(chip).compress(
            data, strategy=strategy, fmt=fmt, history=history, final=final)

    def decompress(self, payload: bytes, *, fmt: str | None = None,
                   history: bytes = b"", home: int = 0) -> DriverResult:
        chip = self.route(len(payload), home)
        self._dispatch(chip)
        return self.backend_for(chip).decompress(payload, fmt=fmt,
                                                 history=history)

    # -- asynchronous batch submission ---------------------------------------

    def submit_compress(self, data: bytes, *, strategy: object = "auto",
                        fmt: str | None = None, home: int = 0) -> PoolJob:
        return self._submit("compress", data, strategy, fmt, home)

    def submit_decompress(self, payload: bytes, *, fmt: str | None = None,
                          home: int = 0) -> PoolJob:
        return self._submit("decompress", payload, "auto", fmt, home)

    def _submit(self, kind: str, data: bytes, strategy: object,
                fmt: str | None, home: int) -> PoolJob:
        chip = self.route(len(data), home)
        self._dispatch(chip)
        backend = self.backend_for(chip)
        job = PoolJob(index=self._next_index, chip=chip,
                      nbytes=len(data), kind=kind)
        self._next_index += 1
        if chip != SOFTWARE and hasattr(backend, "submit"):
            pending = backend.submit(kind, data, strategy=strategy, fmt=fmt)
            self._pending_bytes[chip] += len(data)
            self._by_pending[(chip, pending.sequence)] = job
        elif kind == "compress":
            job.result = backend.compress(data, strategy=strategy, fmt=fmt)
        else:
            job.result = backend.decompress(data, fmt=fmt)
        self._open.append(job)
        return job

    def poll(self) -> list[PoolJob]:
        """Drain every chip once; returns jobs that completed."""
        finished: list[PoolJob] = []
        for chip, instance in enumerate(self._instances):
            if instance is None or not hasattr(instance, "poll"):
                continue
            for pending in instance.poll():
                job = self._by_pending.pop((chip, pending.sequence), None)
                if job is None:
                    continue
                job.result = pending.result
                self._pending_bytes[chip] -= job.nbytes
                finished.append(job)
        return finished

    def wait_all(self) -> list[DriverResult]:
        """Complete every open job; results in submission order."""
        for chip, instance in enumerate(self._instances):
            if (instance is None or not hasattr(instance, "wait_all")
                    or not instance.in_flight):
                continue
            for pending in instance.wait_all():
                job = self._by_pending.pop((chip, pending.sequence), None)
                if job is None:
                    continue
                job.result = pending.result
                self._pending_bytes[chip] -= job.nbytes
        results = [job.result for job in self._open]
        self._open = []
        return results

    @property
    def in_flight(self) -> int:
        return len(self._by_pending)

    # -- aggregate accounting ------------------------------------------------

    def stats(self) -> BackendStats:
        """Totals across every instance (including software fallback)."""
        total = BackendStats()
        instances = [i for i in self._instances if i is not None]
        if self._software is not None:
            instances.append(self._software)
        for instance in instances:
            part = instance.stats()
            total.requests += part.requests
            total.bytes_in += part.bytes_in
            total.bytes_out += part.bytes_out
            total.modelled_seconds += part.modelled_seconds
            total.faults += part.faults
            total.fallbacks += part.fallbacks
        return total

    # -- capacity planning ---------------------------------------------------

    def simulate_load(self, per_chip_load: list[float], duration_s: float,
                      size_bytes: int = 262144,
                      seed: int = 42) -> RoutingResult:
        """Queueing DES of this pool's topology under offered load.

        Answers "what would latency/throughput look like" without
        executing jobs — the capacity-planning view of the same policy
        kernel the live ``route`` uses.
        """
        if self.policy == "size_threshold":
            raise ConfigError(
                "size_threshold has no queueing analogue; simulate with "
                "local/round_robin/least_loaded")
        topology = Topology(machine=self.machine,
                            chips_per_drawer=self.chips, drawers=1,
                            cross_chip_penalty_us=self.cross_chip_penalty_us)
        router = MultiChipRouter(topology, policy=self.policy,
                                 size_bytes=size_bytes, seed=seed)
        return router.run(list(per_chip_load), duration_s)
