"""Unified backend layer: one protocol, four execution paths, one pool.

Everything above the machine models — the public API session, the CLI,
workloads, and benchmarks — acquires compression engines here, by name
from the registry or pooled across chips by :class:`AcceleratorPool`.
"""

from .base import BackendCapabilities, BackendStats, CompressionBackend
from .pool import ROUTING_POLICIES, SOFTWARE, AcceleratorPool, PoolJob
from .registry import (
    backend_capabilities,
    backend_names,
    create_backend,
    default_backend,
    register_backend,
    unregister_backend,
)

__all__ = [
    "CompressionBackend",
    "BackendCapabilities",
    "BackendStats",
    "AcceleratorPool",
    "PoolJob",
    "ROUTING_POLICIES",
    "SOFTWARE",
    "register_backend",
    "unregister_backend",
    "backend_names",
    "backend_capabilities",
    "create_backend",
    "default_backend",
]
