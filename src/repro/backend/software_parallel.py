"""The pigz-style multi-core software backend.

Same functional core as :class:`SoftwareZlibBackend`, but compression
runs through :func:`repro.deflate.parallel.parallel_deflate`: the input
is split into fixed-size chunks, each chunk's window is primed with the
last 32 KB of its predecessor, and the resulting continuation units are
concatenated into one stream.  This is the software baseline the paper
compares the accelerators against on multi-core hosts ("pigz -p N").

Container formats are framed here the way pigz frames them: header and
trailer are computed over the whole input while the body comes from the
chunked compressor.  Decompression runs through
:func:`repro.deflate.parallel_inflate.parallel_inflate` — speculative
block-boundary scanning with marker-tracked chunks, rapidgzip-style —
so with more than one worker both directions use the pool.  Like pigz
``-d`` (and unlike the single-core backend), the gzip path accepts
concatenated multi-member archives.

Modelled time charges the calibrated single-core rate divided by the
worker count actually used — pigz's near-linear scaling, which the
paper's figure 13 uses as the software frontier.
"""

from __future__ import annotations

import os
import struct

from ..deflate import (adler32, crc32, gzip_decompress, inflate_with_stats,
                       zlib_decompress)
from ..deflate.parallel import DEFAULT_CHUNK_SIZE, parallel_deflate
from ..deflate.parallel_inflate import (DEFAULT_INFLATE_CHUNK_SIZE,
                                        parallel_inflate)
from ..errors import ConfigError
from ..nx.params import POWER9, MachineParams, get_machine
from ..obs.trace import TRACE as _TRACE
from ..perf.cost import SoftwareCostModel
from ..sysstack.driver import DriverResult, SubmissionStats
from .base import BackendCapabilities, CompressionBackend

_FORMATS = ("gzip", "zlib", "raw")


class SoftwareParallelBackend(CompressionBackend):
    """Chunked-parallel DEFLATE on general-purpose cores (pigz model)."""

    name = "software-parallel"

    def __init__(self, machine: MachineParams | str = POWER9,
                 level: int = 6, workers: int | None = None,
                 chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        super().__init__()
        if isinstance(machine, str):
            machine = get_machine(machine)
        self.machine = machine
        self.level = level
        self.workers = workers if workers is not None else (
            os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self._cost = SoftwareCostModel(machine)
        self._caps = BackendCapabilities(
            name=self.name,
            formats=_FORMATS,
            strategies=("auto",),
            synchronous=True,
            hardware=False,
            streaming=False,  # whole-buffer chunking, no incremental feed
            compress_gbps=(self._cost.compress_rate_mbps(level)
                           * self.workers / 1000.0),
            decompress_gbps=(self._cost.decompress_rate_mbps()
                             * self.workers / 1000.0),
            per_call_overhead_s=0.0,
            parallel_inflate=True,
        )

    def capabilities(self) -> BackendCapabilities:
        return self._caps

    # -- implementation ------------------------------------------------------

    def _compress(self, data: bytes, strategy: str, fmt: str,
                  history: bytes, final: bool) -> DriverResult:
        if fmt == "raw":
            body = parallel_deflate(data, level=self.level,
                                    chunk_size=self.chunk_size,
                                    workers=self.workers,
                                    history=history, final=final).data
        elif fmt == "zlib":
            self._whole_stream_only(history, final, fmt)
            body = self._zlib_frame(data)
        elif fmt == "gzip":
            self._whole_stream_only(history, final, fmt)
            body = self._gzip_frame(data)
        else:
            raise ConfigError(
                f"software-parallel backend does not produce {fmt!r}")
        nchunks = max(1, -(-len(data) // self.chunk_size))
        used = min(self.workers, nchunks)
        if _TRACE.enabled:
            _TRACE.event("parallel.chunks", chunks=nchunks, workers=used)
        seconds = self._cost.compress_seconds(
            len(data), level=self.level) / used
        stats = SubmissionStats(submissions=nchunks, elapsed_seconds=seconds)
        return DriverResult(output=body, csb=None, stats=stats)

    def _parallel_body(self, data: bytes) -> bytes:
        return parallel_deflate(data, level=self.level,
                                chunk_size=self.chunk_size,
                                workers=self.workers).data

    def _zlib_frame(self, data: bytes) -> bytes:
        from ..deflate.containers import (_LEVEL_TO_FLEVEL, ZLIB_CM_DEFLATE,
                                          ZLIB_WINDOW_32K)
        body = self._parallel_body(data)
        cmf = (ZLIB_WINDOW_32K << 4) | ZLIB_CM_DEFLATE
        header = (cmf << 8) | (_LEVEL_TO_FLEVEL.get(self.level, 2) << 6)
        header += 31 - header % 31
        return struct.pack(">H", header) + body + struct.pack(
            ">I", adler32(data))

    def _gzip_frame(self, data: bytes) -> bytes:
        from ..deflate.containers import (GZIP_MAGIC, GZIP_METHOD_DEFLATE,
                                          GZIP_OS_UNKNOWN)
        body = self._parallel_body(data)
        xfl = 2 if self.level >= 8 else (4 if self.level <= 2 else 0)
        header = GZIP_MAGIC + bytes([GZIP_METHOD_DEFLATE, 0, 0, 0, 0, 0,
                                     xfl, GZIP_OS_UNKNOWN])
        trailer = struct.pack("<II", crc32(data), len(data) & 0xFFFFFFFF)
        return header + body + trailer

    def _decompress(self, payload: bytes, fmt: str,
                    history: bytes) -> DriverResult:
        if fmt not in _FORMATS:
            raise ConfigError(
                f"software-parallel backend does not decode {fmt!r}")
        if self.workers > 1 and not (history and fmt != "raw"):
            chunk = min(DEFAULT_INFLATE_CHUNK_SIZE,
                        max(4096, len(payload) // (2 * self.workers)))
            result = parallel_inflate(payload, fmt, workers=self.workers,
                                      chunk_size=chunk, history=history)
            output = result.data
            used = max(1, min(self.workers, result.chunks_speculated + 1))
            submissions = result.chunks_speculated + result.serial_segments
        elif fmt == "raw":
            output, _stats, _bits = inflate_with_stats(payload,
                                                       history=history)
            used, submissions = 1, 1
        elif fmt == "zlib":
            output = zlib_decompress(payload, zdict=history)
            used, submissions = 1, 1
        else:
            output = gzip_decompress(payload)
            used, submissions = 1, 1
        seconds = self._cost.decompress_seconds(len(output)) / used
        stats = SubmissionStats(submissions=max(1, submissions),
                                elapsed_seconds=seconds)
        return DriverResult(output=output, csb=None, stats=stats)

    @staticmethod
    def _whole_stream_only(history: bytes, final: bool, fmt: str) -> None:
        if history or not final:
            raise ConfigError(
                f"{fmt!r} container requires a whole stream; "
                "use fmt='raw' for continuation units")
