"""The software backend: the from-scratch zlib running on the cores.

This is the path every production deployment keeps as the last resort —
libnxz falls back to it when the accelerator is unavailable and the
offload advisor routes small buffers to it outright.  Functional output
comes from :mod:`repro.deflate`; time is charged from the calibrated
:class:`SoftwareCostModel` (cycles/byte on the machine's cores), the
same rates the driver's fallback path uses.
"""

from __future__ import annotations

from ..deflate import (deflate, gzip_compress, gzip_decompress,
                       inflate_with_stats, zlib_compress, zlib_decompress)
from ..errors import ConfigError
from ..nx.params import POWER9, MachineParams, get_machine
from ..obs.trace import TRACE as _TRACE
from ..perf.cost import SoftwareCostModel
from ..sysstack.driver import DriverResult, SubmissionStats
from .base import BackendCapabilities, CompressionBackend

_FORMATS = ("gzip", "zlib", "raw")


class SoftwareZlibBackend(CompressionBackend):
    """Run DEFLATE on general-purpose cores at the calibrated rate."""

    name = "software"

    def __init__(self, machine: MachineParams | str = POWER9,
                 level: int = 6) -> None:
        super().__init__()
        if isinstance(machine, str):
            machine = get_machine(machine)
        self.machine = machine
        self.level = level
        self._cost = SoftwareCostModel(machine)
        self._caps = BackendCapabilities(
            name=self.name,
            formats=_FORMATS,
            strategies=("auto",),  # zlib has levels, not DHT strategies
            synchronous=True,
            hardware=False,
            streaming=True,
            compress_gbps=self._cost.compress_rate_mbps(level) / 1000.0,
            decompress_gbps=self._cost.decompress_rate_mbps() / 1000.0,
            per_call_overhead_s=0.0,
        )

    def capabilities(self) -> BackendCapabilities:
        return self._caps

    # -- implementation ------------------------------------------------------

    def _compress(self, data: bytes, strategy: str, fmt: str,
                  history: bytes, final: bool) -> DriverResult:
        if fmt == "raw":
            output = deflate(data, level=self.level, history=history,
                             final=final).data
        elif fmt == "zlib":
            self._whole_stream_only(history, final, fmt)
            output = zlib_compress(data, level=self.level)
        elif fmt == "gzip":
            self._whole_stream_only(history, final, fmt)
            output = gzip_compress(data, level=self.level)
        else:
            raise ConfigError(f"software backend does not produce {fmt!r}")
        if _TRACE.enabled:
            _TRACE.event("software.deflate", level=self.level)
        seconds = self._cost.compress_seconds(len(data), level=self.level)
        stats = SubmissionStats(submissions=1, elapsed_seconds=seconds)
        return DriverResult(output=output, csb=None, stats=stats)

    def _decompress(self, payload: bytes, fmt: str,
                    history: bytes) -> DriverResult:
        if fmt == "raw":
            output, _stats, _bits = inflate_with_stats(payload,
                                                       history=history)
        elif fmt == "zlib":
            output = zlib_decompress(payload, zdict=history)
        elif fmt == "gzip":
            output = gzip_decompress(payload)
        else:
            raise ConfigError(f"software backend does not decode {fmt!r}")
        seconds = self._cost.decompress_seconds(len(output))
        stats = SubmissionStats(submissions=1, elapsed_seconds=seconds)
        return DriverResult(output=output, csb=None, stats=stats)

    @staticmethod
    def _whole_stream_only(history: bytes, final: bool, fmt: str) -> None:
        if history or not final:
            raise ConfigError(
                f"{fmt!r} container requires a whole stream; "
                "use fmt='raw' for continuation units")
