"""The z15 synchronous backend: the DFLTCC instruction re-issue loop.

This is the zlib-dfltcc shape: the deflate *body* is produced by the
accelerator (CMPR invocations re-issued while CC=3, the CPU-determined
completion), while the RFC 1950/1952 container framing stays in
software — exactly how the s390 zlib patch wraps the instruction.
Expansion strips the container, runs XPND with output-capacity growth
on CC=1, and verifies the container checksum against the parameter
block's running check value.
"""

from __future__ import annotations

import struct
from dataclasses import replace

from ..deflate.checksums import adler32, crc32
from ..deflate.containers import wrap_gzip, wrap_zlib
from ..errors import AcceleratorError, ChecksumError, ConfigError, \
    DeflateError
from ..nx.dht import DhtStrategy, canned_names
from ..nx.params import Z15, MachineParams, get_machine
from ..nx.z15 import ConditionCode, Dfltcc, ParameterBlock
from ..obs.metrics import REGISTRY as _REGISTRY
from ..obs.trace import TRACE as _TRACE
from ..perf.cost import accelerator_effective_gbps
from ..sysstack.driver import DriverResult, SubmissionStats
from .base import BackendCapabilities, CompressionBackend

_FORMATS = ("gzip", "zlib", "raw")


class DfltccBackend(CompressionBackend):
    """One CPU's view of the on-chip zEDC accelerator (synchronous)."""

    name = "dfltcc"

    def __init__(self, machine: MachineParams | str = Z15,
                 quantum: int = 1 << 20) -> None:
        super().__init__()
        if isinstance(machine, str):
            machine = get_machine(machine)
        self.machine = machine
        # Raises AcceleratorError if the machine has no DFLTCC facility.
        self._facility = Dfltcc(machine=machine, processing_quantum=quantum)
        self._caps = BackendCapabilities(
            name=self.name,
            formats=_FORMATS,
            strategies=tuple(s.value for s in DhtStrategy),
            synchronous=True,
            hardware=True,
            streaming=True,
            compress_gbps=accelerator_effective_gbps(machine, "compress"),
            decompress_gbps=accelerator_effective_gbps(machine,
                                                       "decompress"),
            per_call_overhead_s=(machine.submit_overhead_us
                                 + machine.dispatch_overhead_us) * 1e-6,
        )

    def capabilities(self) -> BackendCapabilities:
        # Recomputed per call: the dictionary service may push trained
        # canned tables after this backend was constructed.
        return replace(self._caps,
                       canned_dicts=tuple(
                           canned_names(include_trained=True)))

    # -- implementation ------------------------------------------------------

    def _compress(self, data: bytes, strategy: str, fmt: str,
                  history: bytes, final: bool) -> DriverResult:
        if fmt not in _FORMATS:
            raise ConfigError(f"dfltcc backend does not produce {fmt!r}")
        block = ParameterBlock(dht_strategy=DhtStrategy(strategy),
                               history=history)
        body = bytearray()
        seconds = 0.0
        invocations = 0
        offset = 0
        while True:
            result = self._facility.compress(block, data[offset:],
                                             last=final)
            body += result.produced
            seconds += result.seconds
            invocations += 1
            offset += result.consumed
            if result.cc is ConditionCode.DONE:
                break
            if result.cc is not ConditionCode.PARTIAL:
                raise AcceleratorError(f"unexpected CC {result.cc!r}")
        if _TRACE.enabled and invocations > 1:
            # The CC=3 re-issue loop: how many CMPR issues this job took.
            _TRACE.event("dfltcc.reissue", invocations=invocations)
        if _REGISTRY.enabled:
            _REGISTRY.counter("repro_backend_dfltcc_invocations_total",
                              "DFLTCC instruction issues").inc(
                invocations, fn="cmpr")
        if fmt == "raw":
            output = bytes(body)
        elif history or not final:
            raise ConfigError(
                f"{fmt!r} container requires a whole stream; "
                "use fmt='raw' for continuation units")
        elif fmt == "zlib":
            output = wrap_zlib(bytes(body), data)
        else:
            output = wrap_gzip(bytes(body), data)
        stats = SubmissionStats(submissions=invocations,
                                elapsed_seconds=seconds)
        return DriverResult(output=output, csb=None, stats=stats)

    def _decompress(self, payload: bytes, fmt: str,
                    history: bytes) -> DriverResult:
        if fmt not in _FORMATS:
            raise ConfigError(f"dfltcc backend does not decode {fmt!r}")
        body = _strip_container(payload, fmt)
        block = ParameterBlock(history=history)
        capacity = max(4096, 4 * len(body))
        invocations = 0
        while True:
            result = self._facility.expand(block, body,
                                           out_capacity=capacity)
            invocations += 1
            if result.cc is ConditionCode.DONE:
                break
            if result.cc is ConditionCode.OP1_FULL:
                if _TRACE.enabled:
                    _TRACE.event("overflow.target", length=capacity)
                capacity *= 2
                continue
            raise AcceleratorError(f"unexpected CC {result.cc!r}")
        _verify_container(payload, result.produced, fmt)
        if _REGISTRY.enabled:
            _REGISTRY.counter("repro_backend_dfltcc_invocations_total",
                              "DFLTCC instruction issues").inc(
                invocations, fn="xpnd")
        stats = SubmissionStats(submissions=invocations,
                                elapsed_seconds=result.seconds)
        return DriverResult(output=result.produced, csb=None, stats=stats)


def _strip_container(payload: bytes, fmt: str) -> bytes:
    """Return the raw deflate body (trailer bytes are ignored by XPND)."""
    if fmt == "raw":
        return payload
    if fmt == "zlib":
        if len(payload) < 6:
            raise DeflateError("zlib stream too short")
        return payload[2:]
    if len(payload) < 18 or payload[:2] != b"\x1f\x8b":
        raise DeflateError("bad gzip header")
    flg = payload[3]
    pos = 10
    if flg & 0x04:  # FEXTRA
        xlen = struct.unpack_from("<H", payload, pos)[0]
        pos += 2 + xlen
    if flg & 0x08:  # FNAME
        pos = payload.index(b"\x00", pos) + 1
    if flg & 0x10:  # FCOMMENT
        pos = payload.index(b"\x00", pos) + 1
    if flg & 0x02:  # FHCRC
        pos += 2
    return payload[pos:]


def _verify_container(payload: bytes, output: bytes, fmt: str) -> None:
    """Check the container trailer against the expanded plaintext."""
    if fmt == "zlib":
        (expected,) = struct.unpack(">I", payload[-4:])
        if adler32(output) != expected:
            raise ChecksumError("zlib Adler-32 mismatch")
    elif fmt == "gzip":
        expected_crc, isize = struct.unpack("<II", payload[-8:])
        if crc32(output) != expected_crc:
            raise ChecksumError("gzip CRC-32 mismatch")
        if (len(output) & 0xFFFFFFFF) != isize:
            raise ChecksumError("gzip ISIZE mismatch")
