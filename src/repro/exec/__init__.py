"""Process-based execution layer: warm worker pools + shared-memory slabs.

The seams above (``deflate/parallel``, the backend pool, the service
dispatcher) submit jobs here instead of spinning up per-call process
pools.  See DESIGN.md "Execution layer" for ownership and failure
semantics.
"""

from .pool import (ExecJob, ProcessWorkerPool, get_default_pool,
                   shutdown_default_pool)
from .shm import Slab, SlabAllocator, live_segments
from .worker import in_worker, register_worker_fn

__all__ = [
    "ExecJob",
    "ProcessWorkerPool",
    "Slab",
    "SlabAllocator",
    "get_default_pool",
    "in_worker",
    "live_segments",
    "register_worker_fn",
    "shutdown_default_pool",
]
