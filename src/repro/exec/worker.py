"""Worker-process side of the execution layer.

Everything here is **spawn-safe**: :func:`worker_main` and every job
function are module-level callables resolved by name, so a worker
started with any ``multiprocessing`` start method (``spawn``, ``fork``,
``forkserver``) can import this module and run jobs without the parent
pickling code objects.

Job functions are published in a string-keyed registry (the same lazy
``"module:attr"`` convention as the backend registry) so a worker only
imports the layers it actually executes.  A task is ``(job_id, fn_name,
args, kwargs, opts)``; the worker answers with

* ``("claim", worker_id, job_id)`` the moment it picks the task up —
  written *before* execution so the parent can attribute a mid-job
  crash to exactly one job;
* ``("done", job_id, result, spans, metrics)`` or
  ``("err", job_id, exception, spans, metrics)`` when it finishes.

Telemetry does not vanish inside workers: when the parent's tracer (or
a job's opts) asks for it, the job runs under this process's own
tracer/metrics registry and the finished span dicts plus a metrics
snapshot ride back on the completion record, where the parent folds
them into its process-global collectors
(:meth:`~repro.obs.trace.Tracer.fold`,
:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`).
"""

from __future__ import annotations

import os
import pickle
import signal
import time
import traceback
from importlib import import_module
from typing import Callable

from ..errors import ExecError
from ..obs.context import TraceContext
from ..obs.metrics import REGISTRY as _REGISTRY
from ..obs.trace import TRACE as _TRACE
from . import shm

#: True inside a pool worker process; layers that would otherwise
#: recurse into the pool (``parallel_deflate``) check this and run
#: inline instead.
_IN_WORKER = False


def in_worker() -> bool:
    """Is this process an execution-layer worker?"""
    return _IN_WORKER


#: Job-function registry: name -> callable or lazy "module:attr" spec.
_WORKER_FNS: dict[str, Callable | str] = {
    "echo": "repro.exec.worker:echo",
    "crash": "repro.exec.worker:crash",
    "crash_once": "repro.exec.worker:crash_once",
    "backend_job": "repro.exec.worker:backend_job",
    "deflate_chunk": "repro.deflate.parallel:deflate_chunk_job",
    "inflate_chunk": "repro.deflate.parallel_inflate:inflate_chunk_job",
}


def register_worker_fn(name: str, fn: Callable | str,
                       replace: bool = False) -> None:
    """Publish a job function under ``name`` (both pool sides)."""
    if not replace and name in _WORKER_FNS:
        raise ExecError(f"worker fn {name!r} already registered")
    _WORKER_FNS[name] = fn


def resolve_worker_fn(name: str) -> Callable:
    """Resolve a job-fn name to a callable, importing lazily.

    A name spelled ``module:attr`` resolves by import even without a
    prior :func:`register_worker_fn` — registrations made in the
    submitting process don't propagate to spawned workers, so a fully
    qualified name is the portable way to ship a custom fn.
    """
    try:
        fn = _WORKER_FNS[name]
    except KeyError:
        if ":" not in name:
            raise ExecError(f"unknown worker fn {name!r}; "
                            f"have {sorted(_WORKER_FNS)}") from None
        fn = name
    if isinstance(fn, str):
        module_name, _, attr = fn.partition(":")
        try:
            fn = getattr(import_module(module_name), attr)
        except (ImportError, AttributeError) as exc:
            raise ExecError(
                f"cannot resolve worker fn {name!r}: {exc}") from exc
        _WORKER_FNS[name] = fn
    return fn


# -- built-in job functions --------------------------------------------------

def echo(value: object = None) -> object:
    """Round-trip probe: returns its argument (pool health checks)."""
    return value


def crash(exitcode: int = 13) -> None:
    """Kill this worker mid-job (crash-recovery tests and chaos)."""
    os._exit(exitcode)


def crash_once(marker: str, value: object = None,
               exitcode: int = 13) -> object:
    """Crash the first time, succeed on resubmission.

    ``marker`` is a filesystem path used as a cross-process latch: the
    first call creates it and kills the worker; the retry sees it and
    returns ``value``.  Exercises the exactly-once telemetry-fold
    guarantee across a crash/resubmit cycle.
    """
    if os.path.exists(marker):
        return value
    with open(marker, "w"):
        pass
    os._exit(exitcode)


#: Worker-side backend cache: one instance per (backend, machine,
#: kwargs) so a warm worker amortises driver-stack construction the
#: same way the pool's lazily created per-chip instances do.
_BACKENDS: dict[tuple, object] = {}


def backend_job(*, backend: str, machine: str, backend_kwargs: dict,
                kind: str, fmt: str, strategy: str = "auto",
                history: bytes = b"", final: bool = True,
                deadline_s: float | None = None,
                src: tuple[str, int, int] | None = None,
                data: bytes | None = None,
                out: tuple[str, int, int] | None = None) -> dict:
    """Run one backend compress/decompress in this worker.

    The payload arrives as a shared-memory reference ``src = (slab,
    offset, length)`` (or inline ``data`` for tiny jobs); the output is
    written into the parent-owned ``out = (slab, offset, capacity)``
    region when it fits, otherwise it rides inline on the completion
    record.  Returns ``{"n", "stats", "inline"?}``.
    """
    from ..backend.registry import create_backend

    key = (backend, machine, tuple(sorted(backend_kwargs.items())))
    instance = _BACKENDS.get(key)
    if instance is None:
        instance = _BACKENDS[key] = create_backend(
            backend, machine=machine, **backend_kwargs)
    if data is None:
        name, offset, length = src
        data = bytes(shm.attach(name).buf[offset:offset + length])
    if kind == "compress":
        result = instance.compress(data, strategy=strategy, fmt=fmt,
                                   history=history, final=final,
                                   deadline_s=deadline_s)
    else:
        result = instance.decompress(data, fmt=fmt, history=history,
                                     deadline_s=deadline_s)
    output = result.output
    record: dict = {"n": len(output), "stats": result.stats}
    if out is not None and len(output) <= out[2]:
        name, offset, _cap = out
        shm.attach(name).buf[offset:offset + len(output)] = output
    else:
        record["inline"] = output
    return record


# -- telemetry capture -------------------------------------------------------

def _run_traced(fn: Callable, args: tuple, kwargs: dict,
                opts: dict) -> tuple[object, BaseException | None,
                                     list | None, dict | None]:
    """Execute one job, capturing this process's spans and metrics.

    The worker's *global* tracer/registry are enabled for the duration
    so the ordinary ``TRACE.enabled`` guards inside the kernels fire;
    both are reset afterwards, leaving nothing behind between jobs.

    Traced jobs run under a ``worker.job`` root span.  When the
    descriptor carries a wire trace context (``opts["traceparent"]``,
    forwarded from the submitting process), the root span joins that
    trace — the parent's :meth:`~repro.obs.trace.Tracer.fold` re-parents
    it locally, and the wire id keeps the join valid even when the spans
    are exported straight from a worker dump.
    """
    want_trace = bool(opts.get("trace"))
    want_metrics = bool(opts.get("metrics"))
    if want_trace:
        _TRACE.reset()
        _TRACE.enable()
    if want_metrics:
        _REGISTRY.reset()
        _REGISTRY.enabled = True
    result: object = None
    error: BaseException | None = None
    try:
        if want_trace:
            parsed = TraceContext.parse(opts.get("traceparent"))
            ctx = parsed.child() if parsed else None
            with _TRACE.span("worker.job", ctx=ctx, pid=os.getpid()) \
                    as root:
                try:
                    result = fn(*args, **kwargs)
                except BaseException as exc:
                    root.set(error=type(exc).__name__)
                    raise
        else:
            result = fn(*args, **kwargs)
    except BaseException as exc:
        error = exc
    spans = metrics = None
    if want_trace:
        _TRACE.disable()
        spans = [span.to_dict() for span in _TRACE.finished()]
        _TRACE.reset()
    if want_metrics:
        _REGISTRY.enabled = False
        metrics = _REGISTRY.snapshot()
        _REGISTRY.reset()
    return result, error, spans, metrics


def _portable_error(exc: BaseException) -> BaseException:
    """An exception safe to pickle across the completion channel."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        detail = "".join(traceback.format_exception(
            type(exc), exc, exc.__traceback__))
        return ExecError(f"worker job failed with unpicklable "
                         f"{type(exc).__name__}: {exc}\n{detail}")


# -- the worker loop ---------------------------------------------------------

def worker_main(worker_id: int, tasks, results, write_lock) -> None:
    """Entry point of one pool worker process.

    ``tasks`` is the shared task queue (``None`` is the shutdown
    sentinel), ``results`` the shared completion pipe guarded by
    ``write_lock`` — writes go through the lock so concurrent workers
    never interleave a record.
    """
    global _IN_WORKER
    _IN_WORKER = True
    # A forked worker inherits the parent's telemetry state and even its
    # collected spans; start from a clean, disabled slate either way.
    _TRACE.disable()
    _TRACE.reset()
    _REGISTRY.enabled = False
    _REGISTRY.reset()
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    def send(record: tuple) -> None:
        with write_lock:
            results.send(record)

    try:
        while True:
            task = tasks.get()
            if task is None:
                send(("bye", worker_id))
                return
            job_id, fn_name, args, kwargs, opts = task
            send(("claim", worker_id, job_id))
            delay_s = opts.get("delay_s", 0.0)
            if delay_s:
                time.sleep(delay_s)
            try:
                fn = resolve_worker_fn(fn_name)
            except ExecError as exc:
                send(("err", job_id, exc, None, None))
                continue
            result, error, spans, metrics = _run_traced(
                fn, args, kwargs, opts)
            if error is not None:
                send(("err", job_id, _portable_error(error), spans,
                      metrics))
            else:
                try:
                    send(("done", job_id, result, spans, metrics))
                except Exception as exc:  # unpicklable result
                    send(("err", job_id, _portable_error(exc), spans,
                          metrics))
    finally:
        shm.detach_all()
