"""ProcessWorkerPool: a persistent, crash-tolerant process fleet.

The GIL makes thread "parallelism" over the pure-Python codec kernels a
regression (BENCH_hotpath recorded the parallel sweep *losing*
throughput as workers grew), and a per-call ``ProcessPoolExecutor``
pays worker spin-up plus full payload pickling on every request.  This
pool is the fix the execution layers share:

* **warm-started once** — workers are spawned lazily on first use and
  reused for every subsequent job, so steady-state calls pay only a
  queue hop;
* **zero-copy payloads** — the pool owns a :class:`~repro.exec.shm.
  SlabAllocator`; callers put bytes in a slab and submit ``(name,
  offset, length)`` descriptors that pickle in constant time;
* **crash containment** — every worker announces which job it claimed
  before running it, so when a worker dies mid-job the parent knows
  exactly which job to fail (:class:`~repro.errors.WorkerCrash`),
  respawns a replacement, and the layers above decide whether to retry
  (pure kernel chunks) or rescue in software (the accelerator pool's
  breaker path);
* **truthful telemetry** — completion records carry the worker's span
  dicts and metrics snapshot; the parent folds them into the
  process-global tracer/registry, so traces and counters look the same
  whether a job ran inline or in a worker.

Start method defaults to ``spawn`` (safe under threaded parents like
the service dispatcher; override with ``start_method=`` or the
``REPRO_EXEC_START_METHOD`` environment variable).  The module-level
default pool (:func:`get_default_pool`) is what ``parallel_deflate``
and the backends share; it is shut down atexit and by the test suite's
leak fixture.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing as mp
import os
import threading
import time

from ..errors import ConfigError, ExecError, WorkerCrash
from ..obs.flight import FLIGHT as _FLIGHT
from ..obs.metrics import REGISTRY as _REGISTRY
from ..obs.trace import TRACE as _TRACE
from .shm import SlabAllocator
from .worker import in_worker, worker_main

#: Default seconds a graceful shutdown waits before terminating workers.
SHUTDOWN_TIMEOUT_S = 5.0

_DEFAULT_START_METHOD = "spawn"


class ExecJob:
    """Handle for one submitted job; resolved by the pool's drain."""

    __slots__ = ("job_id", "fn", "done", "result", "error", "claimed_by",
                 "spans", "metrics", "span_parent", "descriptor")

    def __init__(self, job_id: int, fn: str, descriptor: tuple,
                 span_parent: object = None) -> None:
        self.job_id = job_id
        self.fn = fn
        self.done = False
        self.result: object = None
        self.error: BaseException | None = None
        self.claimed_by: int | None = None
        self.spans: list | None = None
        self.metrics: dict | None = None
        self.span_parent = span_parent
        self.descriptor = descriptor

    @property
    def crashed(self) -> bool:
        return isinstance(self.error, WorkerCrash)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("done" if self.done and self.error is None
                 else type(self.error).__name__ if self.done else "pending")
        return f"ExecJob({self.job_id}, {self.fn!r}, {state})"


#: Every live pool, so the atexit hook can shut them all down before
#: the shm layer's own atexit unlinks any straggler slabs.
_POOLS: set["ProcessWorkerPool"] = set()
_POOLS_LOCK = threading.Lock()


def _shutdown_all_pools() -> None:  # pragma: no cover - exit path
    with _POOLS_LOCK:
        pools = list(_POOLS)
    for pool in pools:
        pool.shutdown(timeout_s=2.0)


atexit.register(_shutdown_all_pools)


class ProcessWorkerPool:
    """Persistent worker processes behind a claim/complete channel."""

    def __init__(self, workers: int | None = None, *,
                 start_method: str | None = None,
                 allocator: SlabAllocator | None = None,
                 name: str = "exec") -> None:
        requested = workers if workers is not None else (
            os.cpu_count() or 1)
        if requested < 1:
            raise ConfigError(f"need at least one worker, got {requested}")
        self.requested_workers = requested
        self.name = name
        method = (start_method
                  or os.environ.get("REPRO_EXEC_START_METHOD")
                  or _DEFAULT_START_METHOD)
        if method not in mp.get_all_start_methods():
            raise ConfigError(
                f"start method {method!r} unavailable; "
                f"have {mp.get_all_start_methods()}")
        self.start_method = method
        self._ctx = mp.get_context(method)
        self.allocator = allocator or SlabAllocator()
        #: Test/chaos hook: every submitted job sleeps this long in the
        #: worker before executing (deterministic crash-mid-job tests).
        self.default_delay_s = 0.0
        self.worker_restarts = 0
        #: Respawn budget: workers dying faster than they do work (e.g.
        #: an import error in every child) must not spin forever.
        self.restart_cap = max(16, 4 * requested)
        self.broken = False
        self.jobs_dispatched = 0
        self.jobs_completed = 0
        self._procs: dict[int, mp.process.BaseProcess] = {}
        self._claimed: dict[int, ExecJob] = {}       # worker -> job
        self._jobs: dict[int, ExecJob] = {}          # outstanding
        self._next_job = itertools.count(1)
        self._next_worker = itertools.count(0)
        self._tasks = None
        self._rx = None
        self._tx = None
        self._wlock = None
        self._started = False
        self._closed = False
        self._lock = threading.RLock()
        with _POOLS_LOCK:
            _POOLS.add(self)

    # -- lifecycle -----------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._started

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def workers(self) -> int:
        with self._lock:
            return len(self._procs) if self._started \
                else self.requested_workers

    @property
    def outstanding(self) -> int:
        with self._lock:
            return len(self._jobs)

    def _ensure_started(self) -> None:
        with self._lock:
            if self._closed:
                raise ExecError(f"pool {self.name!r} is shut down")
            if self.broken:
                raise ExecError(f"pool {self.name!r} is broken "
                                f"(restart cap hit)")
            if self._started:
                return
            self._tasks = self._ctx.SimpleQueue()
            self._rx, self._tx = self._ctx.Pipe(duplex=False)
            self._wlock = self._ctx.Lock()
            self._started = True
            for _ in range(self.requested_workers):
                self._spawn_worker()

    def _spawn_worker(self) -> int:
        worker_id = next(self._next_worker)
        proc = self._ctx.Process(
            target=worker_main,
            args=(worker_id, self._tasks, self._tx, self._wlock),
            name=f"repro-{self.name}-{worker_id}", daemon=True)
        proc.start()
        self._procs[worker_id] = proc
        return worker_id

    def warm(self) -> None:
        """Start the workers now (otherwise they start on first submit)."""
        self._ensure_started()

    def ensure_workers(self, count: int) -> None:
        """Grow the fleet to at least ``count`` workers."""
        self._ensure_started()
        with self._lock:
            while len(self._procs) < count:
                self._spawn_worker()

    def shutdown(self, timeout_s: float = SHUTDOWN_TIMEOUT_S) -> None:
        """Stop workers, fail outstanding jobs, unlink every slab."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            started = self._started
        with _POOLS_LOCK:
            _POOLS.discard(self)
        if started:
            for _ in self._procs:
                try:
                    self._tasks.put(None)
                except Exception:  # pragma: no cover - broken queue
                    break
            deadline = time.monotonic() + timeout_s
            for proc in self._procs.values():
                proc.join(max(0.0, deadline - time.monotonic()))
            for proc in self._procs.values():
                if proc.is_alive():
                    proc.terminate()
                    proc.join(1.0)
            self._procs.clear()
            for job in list(self._jobs.values()):
                if not job.done:
                    job.error = ExecError(
                        f"pool {self.name!r} shut down with job "
                        f"{job.job_id} outstanding")
                    job.done = True
            self._jobs.clear()
            self._claimed.clear()
            for chan in (self._rx, self._tx):
                try:
                    chan.close()
                except Exception:  # pragma: no cover
                    pass
            try:
                self._tasks.close()
            except Exception:  # pragma: no cover
                pass
        self.allocator.close()

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- submission ----------------------------------------------------------

    def submit(self, fn: str, *, span_parent: object = None,
               trace: bool | None = None, metrics: bool = False,
               delay_s: float | None = None,
               traceparent: str | None = None, **kwargs) -> ExecJob:
        """Queue one job; returns a handle resolved by poll/wait.

        ``fn`` names a registered worker function; ``kwargs`` are its
        (picklable) arguments.  ``span_parent`` is the parent-side span
        the worker's folded spans will nest under; ``trace`` defaults to
        the global tracer's enabled flag.  ``metrics=True`` additionally
        captures a worker-side metrics snapshot, merged into the global
        registry at completion.  ``traceparent`` (a W3C-style header
        string) rides in the job descriptor so the worker's root span
        joins the originating wire trace.
        """
        self._ensure_started()
        opts = {
            "trace": _TRACE.enabled if trace is None else trace,
            "metrics": metrics,
            "delay_s": self.default_delay_s if delay_s is None else delay_s,
        }
        if traceparent:
            opts["traceparent"] = traceparent
        with self._lock:
            job_id = next(self._next_job)
            job = ExecJob(job_id, fn, (fn, kwargs, opts), span_parent)
            self._jobs[job_id] = job
            self.jobs_dispatched += 1
            self._tasks.put((job_id, fn, (), kwargs, opts))
        if _REGISTRY.enabled:
            _REGISTRY.counter("repro_exec_jobs_total",
                              "jobs dispatched to pool workers").inc(
                1, fn=fn)
            self._publish_gauges()
        return job

    def _resubmit(self, job: ExecJob) -> None:
        """Re-queue a crashed job's descriptor under the same handle."""
        fn, kwargs, opts = job.descriptor
        with self._lock:
            job.done = False
            job.error = None
            job.claimed_by = None
            self._jobs[job.job_id] = job
            self.jobs_dispatched += 1
            self._tasks.put((job.job_id, fn, (), kwargs, opts))

    # -- completion ----------------------------------------------------------

    def poll(self) -> list[ExecJob]:
        """Drain every available completion; never blocks."""
        return self._drain(block_s=0.0)

    def wait(self, jobs: list[ExecJob] | None = None,
             timeout_s: float | None = None) -> list[ExecJob]:
        """Block until ``jobs`` (default: everything outstanding) resolve.

        Returns the jobs that finished during this call; raises
        :class:`TimeoutError` when the deadline passes first.
        """
        deadline = (time.monotonic() + timeout_s
                    if timeout_s is not None else None)
        finished: list[ExecJob] = []

        def pending() -> bool:
            if jobs is None:
                return bool(self._jobs)
            return any(not job.done for job in jobs)

        while pending():
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"pool {self.name!r}: jobs still pending after "
                    f"{timeout_s}s")
            finished.extend(self._drain(block_s=0.05))
        return finished

    def _drain(self, block_s: float) -> list[ExecJob]:
        """Process claim/done/err records; reap dead workers."""
        finished: list[ExecJob] = []
        with self._lock:
            if not self._started or self._closed:
                return finished
            # Drain everything buffered, then (optionally) block once.
            waited = False
            while True:
                try:
                    ready = self._rx.poll(
                        0.0 if (finished or waited or not block_s)
                        else block_s)
                except (OSError, EOFError):  # pragma: no cover
                    break
                if not ready:
                    if block_s and not waited and not finished:
                        waited = True
                        continue
                    break
                waited = True
                try:
                    record = self._rx.recv()
                except (OSError, EOFError):  # pragma: no cover
                    break
                job = self._handle(record)
                if job is not None:
                    finished.append(job)
            self._reap_dead()
        for job in finished:
            self._fold_telemetry(job)
        if finished and _REGISTRY.enabled:
            self._publish_gauges()
        return finished

    def _handle(self, record: tuple) -> ExecJob | None:
        """Apply one channel record; returns the job if it resolved."""
        kind = record[0]
        if kind == "claim":
            _, worker_id, job_id = record
            job = self._jobs.get(job_id)
            if job is not None:
                job.claimed_by = worker_id
                self._claimed[worker_id] = job
            return None
        if kind == "bye":
            return None
        _, job_id, payload, spans, metrics = record
        job = self._jobs.pop(job_id, None)
        if job is None:  # resolved already (e.g. failed at shutdown)
            return None
        if job.claimed_by is not None:
            claimed = self._claimed.get(job.claimed_by)
            if claimed is job:
                del self._claimed[job.claimed_by]
        job.spans = spans
        job.metrics = metrics
        if kind == "err":
            job.error = payload
        else:
            job.result = payload
        job.done = True
        self.jobs_completed += 1
        return job

    def _reap_dead(self) -> None:
        """Respawn dead workers; fail the jobs they had claimed.

        Runs after the channel is fully drained, so a claim record that
        made it out before the crash has already been applied — the
        claimed-but-unfinished job is attributable to the dead worker.
        """
        for worker_id, proc in list(self._procs.items()):
            if proc.is_alive():
                continue
            exitcode = proc.exitcode
            proc.join()
            del self._procs[worker_id]
            job = self._claimed.pop(worker_id, None)
            if job is not None and not job.done:
                self._jobs.pop(job.job_id, None)
                job.error = WorkerCrash(
                    f"worker {worker_id} died (exit {exitcode}) while "
                    f"running job {job.job_id} ({job.fn})",
                    worker=worker_id, exitcode=exitcode)
                job.done = True
                self.jobs_completed += 1
                _FLIGHT.auto_dump("worker_crash", pool=self.name,
                                  worker=worker_id, exitcode=exitcode,
                                  job_id=job.job_id, fn=job.fn)
            else:
                _FLIGHT.record("exec.worker_exit", pool=self.name,
                               worker=worker_id, exitcode=exitcode)
            if self.broken:
                continue
            if self.worker_restarts >= self.restart_cap:
                self.broken = True
                for stuck in list(self._jobs.values()):
                    if not stuck.done:
                        stuck.error = ExecError(
                            f"pool {self.name!r} broken: "
                            f"{self.worker_restarts} worker restarts "
                            f"(last exit {exitcode})")
                        stuck.done = True
                self._jobs.clear()
                continue
            if not self._closed:
                self._spawn_worker()
                self.worker_restarts += 1
                _TRACE.event("exec.worker_restart", worker=worker_id,
                             exitcode=exitcode)
                if _REGISTRY.enabled:
                    _REGISTRY.counter(
                        "repro_exec_worker_restarts_total",
                        "workers respawned after dying").inc(1)

    def fail_job(self, job: ExecJob, error: BaseException) -> None:
        """Externally resolve an outstanding job as failed.

        Orphan recovery: a worker killed in the instant between popping
        a task and writing its claim record leaves a job no completion
        will ever resolve.  Callers that give up waiting use this to
        fail the handle (and fix the books) so their own rescue path
        can take over.
        """
        with self._lock:
            self._jobs.pop(job.job_id, None)
            if job.claimed_by is not None \
                    and self._claimed.get(job.claimed_by) is job:
                del self._claimed[job.claimed_by]
            if not job.done:
                job.error = error
                job.done = True
                self.jobs_completed += 1

    def _fold_telemetry(self, job: ExecJob) -> None:
        """Merge a completion record's spans/metrics into the parent."""
        if job.spans:
            _TRACE.fold(job.spans, parent=job.span_parent)
        if job.metrics:
            _REGISTRY.merge_snapshot(job.metrics)

    def _publish_gauges(self) -> None:
        _REGISTRY.gauge("repro_exec_in_flight",
                        "jobs submitted to workers, unresolved").set(
            self.outstanding, pool=self.name)
        _REGISTRY.gauge("repro_exec_workers",
                        "live worker processes").set(
            self.workers, pool=self.name)

    # -- batch convenience ---------------------------------------------------

    def run_batch(self, calls: list[tuple[str, dict]], *,
                  span_parent: object = None, crash_retries: int = 2,
                  timeout_s: float | None = None,
                  traceparent: str | None = None,
                  metrics: bool = False) -> list[object]:
        """Run ``calls`` (``(fn, kwargs)`` pairs) and return results in
        order.

        A job whose worker crashed is transparently resubmitted up to
        ``crash_retries`` times — kernel jobs are pure functions of
        their descriptors, so re-execution is safe.  Any other failure
        (or crash-retry exhaustion) raises that job's error.
        """
        jobs = [self.submit(fn, span_parent=span_parent,
                            traceparent=traceparent, metrics=metrics,
                            **kwargs)
                for fn, kwargs in calls]
        retries_left = crash_retries
        while True:
            self.wait(jobs, timeout_s=timeout_s)
            crashed = [job for job in jobs if job.crashed]
            if not crashed:
                break
            if retries_left <= 0:
                raise crashed[0].error
            retries_left -= 1
            for job in crashed:
                self._resubmit(job)
        for job in jobs:
            if job.error is not None:
                raise job.error
        return [job.result for job in jobs]


# -- the shared default pool -------------------------------------------------

_DEFAULT: ProcessWorkerPool | None = None
_DEFAULT_LOCK = threading.Lock()


def get_default_pool(min_workers: int | None = None) -> ProcessWorkerPool:
    """The process-wide warm pool shared by the execution seams.

    Created on first use with one worker per CPU; ``min_workers`` grows
    it when a caller needs a wider fleet.  Never available *inside* a
    worker — nested pools would fork the fleet exponentially.
    """
    if in_worker():
        raise ExecError("no nested pools inside a worker process")
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is not None and _DEFAULT.broken:
            _DEFAULT.shutdown(timeout_s=2.0)
            _DEFAULT = None
        if _DEFAULT is None or _DEFAULT.closed:
            width = max(min_workers or 1, os.cpu_count() or 1)
            _DEFAULT = ProcessWorkerPool(workers=width, name="default")
        pool = _DEFAULT
    if min_workers is not None and pool.started \
            and pool.workers < min_workers:
        pool.ensure_workers(min_workers)
    elif min_workers is not None and not pool.started \
            and pool.requested_workers < min_workers:
        pool.requested_workers = min_workers
    return pool


def shutdown_default_pool(timeout_s: float = SHUTDOWN_TIMEOUT_S) -> None:
    """Shut the shared pool down (tests, clean process exit)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        pool, _DEFAULT = _DEFAULT, None
    if pool is not None:
        pool.shutdown(timeout_s=timeout_s)
