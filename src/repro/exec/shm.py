"""Shared-memory slabs: zero-copy buffers across the process boundary.

The process-based execution layer moves job payloads through
``multiprocessing.shared_memory`` segments ("slabs") instead of pickling
them through pipes: the parent writes source bytes into a slab once,
workers attach the segment by name and slice it, and results come back
the same way.  A job descriptor then carries only ``(name, offset,
length)`` triples — a few dozen bytes regardless of payload size — so
the per-job IPC cost is constant.

Ownership is strictly parent-side:

* only the parent ever *creates* (and ultimately *unlinks*) a slab;
* workers only ever *attach* and must never unlink — :func:`attach`
  un-registers the mapping from the worker's ``resource_tracker`` so an
  exiting worker cannot destroy a segment the parent still uses (the
  CPython < 3.13 tracker registers attachments too, gh-82300);
* every live parent-owned slab is tracked in a module-level table;
  :func:`live_segments` is what the test suite's leak fixture asserts
  empty after the pools shut down.

:class:`SlabAllocator` keeps released slabs on a size-bucketed free
list, so a warm pool reuses the same few segments (same names) across
calls instead of churning ``shm_open``/``mmap`` per job.
"""

from __future__ import annotations

import atexit
import os
import threading
from multiprocessing import resource_tracker, shared_memory

#: Slab names: ``repro-exec-<pid>-<serial>`` so a leak is attributable
#: to its creating process and test runs can scan /dev/shm for them.
_NAME_PREFIX = "repro-exec"

#: Smallest slab ever allocated; requests are rounded up to powers of
#: two above this so the free list buckets stay few and reusable.
MIN_SLAB_BYTES = 1 << 16

#: Parent-owned live slabs by name (creation side only).
_LIVE: dict[str, "Slab"] = {}
_LIVE_LOCK = threading.Lock()
_SERIAL = [0]

#: Worker-side attachment cache: segment names recur (the allocator
#: reuses slabs), so each worker maps a segment at most once.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def _next_name() -> str:
    with _LIVE_LOCK:
        _SERIAL[0] += 1
        return f"{_NAME_PREFIX}-{os.getpid()}-{_SERIAL[0]}"


class Slab:
    """One parent-owned shared-memory segment."""

    __slots__ = ("shm", "capacity")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.shm = shared_memory.SharedMemory(
            name=_next_name(), create=True, size=capacity)
        with _LIVE_LOCK:
            _LIVE[self.shm.name] = self

    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def buf(self) -> memoryview:
        return self.shm.buf

    def write(self, offset: int, data: bytes) -> None:
        self.shm.buf[offset:offset + len(data)] = data

    def read(self, offset: int, length: int) -> bytes:
        return bytes(self.shm.buf[offset:offset + length])

    def destroy(self) -> None:
        """Unmap and unlink; idempotent."""
        with _LIVE_LOCK:
            _LIVE.pop(self.shm.name, None)
        try:
            self.shm.close()
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Slab({self.name!r}, {self.capacity} bytes)"


def live_segments() -> tuple[str, ...]:
    """Names of every parent-owned slab still mapped (leak check)."""
    with _LIVE_LOCK:
        return tuple(sorted(_LIVE))


def destroy_all() -> None:
    """Unlink every tracked slab (interpreter-exit safety net)."""
    with _LIVE_LOCK:
        slabs = list(_LIVE.values())
    for slab in slabs:
        slab.destroy()


atexit.register(destroy_all)


def attach(name: str) -> shared_memory.SharedMemory:
    """Worker-side: map a parent-owned segment by name (cached).

    The attachment is *not* registered with the ``resource_tracker``:
    the parent owns the segment's lifetime, and on CPython < 3.13 a
    tracked attachment would be unlinked out from under the parent when
    the tracker decides it leaked (gh-82300).  Workers share the
    parent's tracker daemon, so registration is suppressed up front
    rather than undone after — an un-register would erase the *parent's*
    cache entry for the same name.  (CPython 3.13+ exposes this as
    ``SharedMemory(..., track=False)``.)
    """
    seg = _ATTACHED.get(name)
    if seg is None:
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            seg = shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original_register
        _ATTACHED[name] = seg
        if len(_ATTACHED) > 64:
            # Names recur via the free list, so the cache stays tiny in
            # practice; bound it anyway against pathological churn.
            stale = next(iter(_ATTACHED))
            if stale != name:
                _ATTACHED.pop(stale).close()
    return seg


def detach_all() -> None:
    """Worker-side: unmap every cached attachment (worker exit)."""
    while _ATTACHED:
        _, seg = _ATTACHED.popitem()
        try:
            seg.close()
        except Exception:  # pragma: no cover
            pass


def _round_capacity(nbytes: int) -> int:
    cap = MIN_SLAB_BYTES
    while cap < nbytes:
        cap <<= 1
    return cap


class SlabAllocator:
    """Size-bucketed free list of parent-owned slabs.

    ``acquire`` returns a slab of at least the requested size (capacity
    rounded up to a power of two); ``release`` parks it for reuse.  The
    allocator caps how many bytes it keeps parked — beyond that,
    released slabs are unlinked instead of hoarded.
    """

    def __init__(self, max_retained_bytes: int = 256 << 20) -> None:
        self.max_retained_bytes = max_retained_bytes
        self._free: dict[int, list[Slab]] = {}
        self._retained = 0
        self._lock = threading.Lock()

    def acquire(self, nbytes: int) -> Slab:
        cap = _round_capacity(max(1, nbytes))
        with self._lock:
            bucket = self._free.get(cap)
            if bucket:
                slab = bucket.pop()
                self._retained -= slab.capacity
                return slab
        return Slab(cap)

    def release(self, slab: Slab) -> None:
        with self._lock:
            if self._retained + slab.capacity <= self.max_retained_bytes:
                self._free.setdefault(slab.capacity, []).append(slab)
                self._retained += slab.capacity
                return
        slab.destroy()

    def close(self) -> None:
        """Unlink every parked slab (pool shutdown)."""
        with self._lock:
            slabs = [s for bucket in self._free.values() for s in bucket]
            self._free = {}
            self._retained = 0
        for slab in slabs:
            slab.destroy()

    @property
    def retained_bytes(self) -> int:
        with self._lock:
            return self._retained
