"""Wire-level trace context: W3C-traceparent-style ids.

The tracer's local ``trace_id``/``span_id`` integers are process-private
counters — cheap, but meaningless outside the process that allocated
them.  A :class:`TraceContext` is the portable identity that survives
the trip across the service socket and the exec completion channel:
a 16-byte trace id and an 8-byte span id, rendered exactly like a W3C
``traceparent`` header (``00-<32 hex>-<16 hex>-01``) so any external
tool that speaks trace-context can join our traces.

Propagation model (one header field, no clock coordination):

* :class:`~repro.service.client.ServiceClient` calls :meth:`new` per
  request and sends ``to_traceparent()`` in the protocol header;
* the server parses it and derives a :meth:`child` context for its
  detached ``service.request`` span, so the span records both its own
  wire identity and the client's span as its wire parent;
* exec job descriptors carry the current traceparent into workers,
  whose root ``worker.job`` span derives its own child context.

Spans stamped with a context serialize it in :meth:`Span.to_dict`;
the exporters group spans from any number of processes into one tree
per *wire* trace id (see :func:`repro.obs.export.spans_to_trees`).
"""

from __future__ import annotations

import os
import re

_TRACEPARENT = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$")


class TraceContext:
    """One wire position: (trace, own span, optional wire parent span)."""

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(self, trace_id: str, span_id: str,
                 parent_id: str | None = None) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id

    @classmethod
    def new(cls) -> "TraceContext":
        """A fresh root context (request origination, e.g. the client)."""
        return cls(os.urandom(16).hex(), os.urandom(8).hex())

    def child(self) -> "TraceContext":
        """A context one hop below this one, in the same trace."""
        return TraceContext(self.trace_id, os.urandom(8).hex(),
                            parent_id=self.span_id)

    def to_traceparent(self) -> str:
        """Render as a W3C ``traceparent`` value (version 00, sampled)."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def parse(cls, value: object) -> "TraceContext | None":
        """Parse a ``traceparent`` string; None on anything malformed.

        Tolerant by design: a bad header from an old client must never
        fail the request, it just breaks the trace join.
        """
        if not isinstance(value, str):
            return None
        match = _TRACEPARENT.match(value.strip().lower())
        if match is None:
            return None
        _, trace_id, span_id, _ = match.groups()
        if trace_id == "0" * 32 or span_id == "0" * 16:
            return None
        return cls(trace_id, span_id)

    def to_dict(self) -> dict:
        out = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        return out

    @classmethod
    def from_dict(cls, record: object) -> "TraceContext | None":
        if not isinstance(record, dict):
            return None
        trace_id = record.get("trace_id")
        span_id = record.get("span_id")
        if not (isinstance(trace_id, str) and isinstance(span_id, str)):
            return None
        return cls(trace_id, span_id, record.get("parent_id"))

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TraceContext)
                and self.trace_id == other.trace_id
                and self.span_id == other.span_id
                and self.parent_id == other.parent_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceContext({self.trace_id[:8]}.., {self.span_id}, "
                f"parent={self.parent_id})")
