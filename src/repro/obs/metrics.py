"""Process-global metrics registry: counters, gauges, histograms.

Naming convention: ``repro_<layer>_<name>`` with Prometheus-style unit
suffixes (``_total`` for counters, ``_seconds``/``_bytes`` on
histograms), so a snapshot reads like the paper's measurement tables —
``repro_api_requests_total``, ``repro_vas_paste_rejections_total``,
``repro_backend_faults_total`` — and scrapes cleanly into any
Prometheus-compatible collector via :meth:`MetricsRegistry.to_prometheus`.

All three metric kinds support optional labels (``inc(1, chip="0")``);
histograms use fixed upper-bound buckets chosen at registration so
observation is O(#buckets) with zero per-sample allocation beyond the
bucket scan.  Like the tracer, the global :data:`REGISTRY` starts
disabled: hot-path instrumentation guards on ``REGISTRY.enabled``;
explicit callers (the self-test, the CLI) may record regardless.
"""

from __future__ import annotations

import json
import threading
import time
from bisect import bisect_left
from collections import deque

#: Default latency buckets (seconds): 1 us .. 10 s, decade thirds.
LATENCY_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0)

#: Default size buckets (bytes): 256 B .. 64 MB, powers of four.
SIZE_BUCKETS = (256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0,
                1048576.0, 4194304.0, 16777216.0, 67108864.0)

#: Default compression-ratio buckets (input/output, bigger is better).
RATIO_BUCKETS = (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0, 32.0)

_LabelKey = tuple  # sorted (key, value) pairs


def _label_key(labels: dict[str, str]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: _LabelKey, extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Metric:
    """Common label-fanout machinery for one named metric family."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.Lock) -> None:
        self.name = name
        self.help = help
        self._lock = lock
        self._values: dict[_LabelKey, object] = {}

    def label_keys(self) -> list[_LabelKey]:
        with self._lock:
            return sorted(self._values)

    def prometheus_block(self) -> list[str]:
        """HELP/TYPE header plus this family's sample lines."""
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        lines.extend(self.prometheus_lines())
        return lines


class Counter(_Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return float(self._values.get(_label_key(labels), 0.0))

    def snapshot_values(self) -> list[dict]:
        return [{"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())]

    def prometheus_lines(self) -> list[str]:
        return [f"{self.name}{_render_labels(key)} {_num(value)}"
                for key, value in sorted(self._values.items())]


class Gauge(_Metric):
    """A value that can go up and down (queue depth, pass/fail)."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return float(self._values.get(_label_key(labels), 0.0))

    snapshot_values = Counter.snapshot_values
    prometheus_lines = Counter.prometheus_lines


class _HistogramState:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, nbuckets: int) -> None:
        self.counts = [0] * (nbuckets + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket distribution (latency, sizes, ratios)."""

    kind = "histogram"

    def __init__(self, name: str, help: str, lock: threading.Lock,
                 buckets: tuple[float, ...] = LATENCY_BUCKETS) -> None:
        super().__init__(name, help, lock)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError(f"histogram {name!r} needs at least one bucket")

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            state = self._values.get(key)
            if state is None:
                state = self._values[key] = _HistogramState(
                    len(self.buckets))
            state.counts[bisect_left(self.buckets, value)] += 1
            state.sum += value
            state.count += 1

    def state(self, **labels: str) -> _HistogramState | None:
        return self._values.get(_label_key(labels))

    def snapshot_values(self) -> list[dict]:
        out = []
        for key, state in sorted(self._values.items()):
            out.append({
                "labels": dict(key),
                "buckets": [[edge, count] for edge, count
                            in zip(self.buckets, state.counts)],
                "inf": state.counts[-1],
                "sum": state.sum,
                "count": state.count,
            })
        return out

    def prometheus_lines(self) -> list[str]:
        lines = []
        for key, state in sorted(self._values.items()):
            cumulative = 0
            for edge, count in zip(self.buckets, state.counts):
                cumulative += count
                le = 'le="%s"' % _num(edge)
                lines.append(f"{self.name}_bucket"
                             f"{_render_labels(key, le)} {cumulative}")
            inf = 'le="+Inf"'
            lines.append(f"{self.name}_bucket"
                         f"{_render_labels(key, inf)} {state.count}")
            lines.append(f"{self.name}_sum{_render_labels(key)} "
                         f"{_num(state.sum)}")
            lines.append(f"{self.name}_count{_render_labels(key)} "
                         f"{state.count}")
        return lines


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[rank]


class RollingWindow(_Metric):
    """Time-windowed sample aggregates: p50/p99, mean, rate.

    The live-ops kind the counters and histograms can't express:
    "p99 latency *over the last minute*, per QoS class", "bytes/s per
    chip *right now*".  Each label set keeps a bounded deque of
    ``(perf_counter, value)`` samples; summaries consider only samples
    inside ``window_s``.  Process-local by design — worker snapshots
    don't carry windows (``merge_snapshot`` skips them), because a
    rolling quantile only means something on the node that serves the
    scrape.
    """

    kind = "window"

    def __init__(self, name: str, help: str, lock: threading.Lock,
                 window_s: float = 60.0, max_samples: int = 2048) -> None:
        super().__init__(name, help, lock)
        self.window_s = float(window_s)
        self.max_samples = max_samples

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            samples = self._values.get(key)
            if samples is None:
                samples = self._values[key] = deque(
                    maxlen=self.max_samples)
            samples.append((time.perf_counter(), float(value)))

    def summary(self, **labels: str) -> dict:
        """Aggregates over the in-window samples for one label set."""
        with self._lock:
            samples = list(self._values.get(_label_key(labels)) or ())
        return self._summarize(samples)

    def _summarize(self, samples: list[tuple[float, float]]) -> dict:
        now = time.perf_counter()
        live = sorted(value for t, value in samples
                      if now - t <= self.window_s)
        if not live:
            return {"count": 0, "rate_per_s": 0.0, "mean": 0.0,
                    "p50": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "count": len(live),
            "rate_per_s": len(live) / self.window_s,
            "mean": sum(live) / len(live),
            "p50": _percentile(live, 0.50),
            "p99": _percentile(live, 0.99),
            "max": live[-1],
        }

    def snapshot_values(self) -> list[dict]:
        with self._lock:
            items = [(key, list(samples))
                     for key, samples in sorted(self._values.items())]
        return [{"labels": dict(key), **self._summarize(samples)}
                for key, samples in items]

    def prometheus_lines(self) -> list[str]:
        lines = []
        for entry in self.snapshot_values():
            key = _label_key(entry["labels"])
            for stat in ("count", "rate_per_s", "mean", "p50", "p99"):
                lines.append(f"{self.name}_{stat}{_render_labels(key)} "
                             f"{_num(round(entry[stat], 9))}")
        return lines

    def prometheus_block(self) -> list[str]:
        # A "window" is not a Prometheus type; expose each derived stat
        # as its own gauge family so scrapers parse it cleanly.
        lines = []
        for stat in ("count", "rate_per_s", "mean", "p50", "p99"):
            name = f"{self.name}_{stat}"
            if self.help:
                lines.append(f"# HELP {name} {self.help} ({stat}, "
                             f"{self.window_s:g}s window)")
            lines.append(f"# TYPE {name} gauge")
            for entry in self.snapshot_values():
                key = _label_key(entry["labels"])
                lines.append(f"{name}{_render_labels(key)} "
                             f"{_num(round(entry[stat], 9))}")
        return lines


def _num(value: float) -> str:
    """Render without a trailing .0 for integral values."""
    as_int = int(value)
    return str(as_int) if value == as_int else repr(float(value))


class MetricsRegistry:
    """Name-keyed metric families with JSON and Prometheus snapshots."""

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # -- registration (get-or-create) --------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, help, Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, help, Gauge)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = LATENCY_BUCKETS) -> Histogram:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = Histogram(
                    name, help, self._lock, buckets=buckets)
        if not isinstance(metric, Histogram):
            raise TypeError(f"{name!r} is a {metric.kind}, not a histogram")
        return metric

    def window(self, name: str, help: str = "",
               window_s: float = 60.0,
               max_samples: int = 2048) -> RollingWindow:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = RollingWindow(
                    name, help, self._lock, window_s=window_s,
                    max_samples=max_samples)
        if not isinstance(metric, RollingWindow):
            raise TypeError(f"{name!r} is a {metric.kind}, not a window")
        return metric

    def _get_or_create(self, name: str, help: str, cls: type) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help, self._lock)
        if type(metric) is not cls:
            raise TypeError(f"{name!r} is a {metric.kind}, "
                            f"not a {cls.kind}")
        return metric

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Drop every registered family (tests and fresh runs)."""
        with self._lock:
            self._metrics = {}

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able view of every family, stably ordered by name."""
        out: dict = {}
        for name in self.names():
            metric = self._metrics[name]
            entry: dict = {"type": metric.kind, "help": metric.help,
                           "values": metric.snapshot_values()}
            if isinstance(metric, Histogram):
                entry["bucket_edges"] = list(metric.buckets)
            if isinstance(metric, RollingWindow):
                entry["window_s"] = metric.window_s
            out[name] = entry
        return out

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        This is how metrics recorded inside pool worker processes reach
        the parent's process-global registry: counters *add*, gauges
        take the incoming value (last write wins, as for any gauge
        set), histograms merge bucket-by-bucket — exact when both sides
        registered the same bucket edges (they do; the worker runs the
        same code), and conservatively folded by edge value otherwise.
        Rolling windows are skipped: their snapshots carry summaries,
        not samples, and a p99-over-the-last-minute only means
        something on the process that serves the scrape.
        """
        for name, entry in snap.items():
            kind = entry.get("type")
            values = entry.get("values") or []
            if kind == "counter":
                counter = self.counter(name, entry.get("help", ""))
                for value in values:
                    counter.inc(value["value"], **value["labels"])
            elif kind == "gauge":
                gauge = self.gauge(name, entry.get("help", ""))
                for value in values:
                    gauge.set(value["value"], **value["labels"])
            elif kind == "histogram":
                edges = tuple(entry.get("bucket_edges")
                              or LATENCY_BUCKETS)
                hist = self.histogram(name, entry.get("help", ""),
                                      buckets=edges)
                for value in values:
                    key = _label_key(value["labels"])
                    with self._lock:
                        state = hist._values.get(key)
                        if state is None:
                            state = hist._values[key] = _HistogramState(
                                len(hist.buckets))
                        for edge, count in value["buckets"]:
                            if count:
                                state.counts[bisect_left(
                                    hist.buckets, edge)] += count
                        state.counts[-1] += value["inf"]
                        state.sum += value["sum"]
                        state.count += value["count"]

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4)."""
        lines: list[str] = []
        for name in self.names():
            lines.extend(self._metrics[name].prometheus_block())
        return "\n".join(lines) + ("\n" if lines else "")


#: The process-global registry the instrumented stack records into.
REGISTRY = MetricsRegistry()


# -- shared recording helpers --------------------------------------------
#
# The three pre-existing stats dataclasses (SessionStats, BackendStats,
# MatchStats) stay the cheap per-handle views; these helpers are the one
# place their recording points also publish into the global registry, so
# a metrics snapshot aggregates every layer consistently.

def record_job(layer: str, *, op: str, nbytes_in: int, nbytes_out: int,
               seconds: float, faults: int = 0, fallback: bool = False,
               **labels: str) -> None:
    """Fold one completed request into the global registry."""
    REGISTRY.counter(f"repro_{layer}_requests_total",
                     "completed requests").inc(1, op=op, **labels)
    REGISTRY.counter(f"repro_{layer}_bytes_in_total",
                     "input bytes").inc(nbytes_in, op=op, **labels)
    REGISTRY.counter(f"repro_{layer}_bytes_out_total",
                     "output bytes").inc(nbytes_out, op=op, **labels)
    REGISTRY.histogram(f"repro_{layer}_job_seconds",
                       "modelled per-job latency",
                       buckets=LATENCY_BUCKETS).observe(
        seconds, op=op, **labels)
    REGISTRY.histogram(f"repro_{layer}_job_bytes",
                       "per-job input size",
                       buckets=SIZE_BUCKETS).observe(
        nbytes_in, op=op, **labels)
    if op == "compress" and nbytes_out:
        REGISTRY.histogram(f"repro_{layer}_ratio",
                           "compression ratio (in/out)",
                           buckets=RATIO_BUCKETS).observe(
            nbytes_in / nbytes_out, **labels)
    if faults:
        REGISTRY.counter(f"repro_{layer}_faults_total",
                         "accelerator page-translation faults").inc(
            faults, **labels)
    if fallback:
        REGISTRY.counter(f"repro_{layer}_fallbacks_total",
                         "software fallbacks after retry exhaustion").inc(
            1, **labels)


def record_service_request(*, op: str, qos: str, outcome: str,
                           tenant: str = "",
                           nbytes_in: int = 0, nbytes_out: int = 0,
                           modelled_s: float = 0.0,
                           queue_wait_s: float = 0.0,
                           reason: str = "") -> None:
    """Fold one service-layer request (served or shed) into the registry.

    ``outcome`` is ``ok`` / ``rejected`` / ``expired`` / ``failed``;
    shed requests carry a ``reason`` (``queue_full``, ``closed``, ...).
    Served requests also flow through :func:`record_job` under the
    ``service`` layer so bytes/latency/ratio aggregate like every other
    layer's.
    """
    labels = {"tenant": tenant} if tenant else {}
    # Admission-level outcomes; completed requests additionally flow
    # through record_job below, which owns repro_service_requests_total.
    REGISTRY.counter("repro_service_outcomes_total",
                     "requests by admission/completion outcome").inc(
        1, op=op, qos=qos, outcome=outcome, **labels)
    REGISTRY.histogram("repro_service_queue_wait_seconds",
                       "wall-clock time a request waited for dispatch",
                       buckets=LATENCY_BUCKETS).observe(
        queue_wait_s, qos=qos)
    if outcome == "ok":
        record_job("service", op=op, nbytes_in=nbytes_in,
                   nbytes_out=nbytes_out, seconds=modelled_s,
                   qos=qos, **labels)
    else:
        REGISTRY.counter("repro_service_rejected_total",
                         "requests shed or failed by the service").inc(
            1, qos=qos, outcome=outcome,
            reason=reason or "unknown", **labels)
