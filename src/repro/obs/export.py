"""Span exporters: JSON-lines log and Chrome ``trace_event`` JSON.

The Chrome format is the one Perfetto / ``chrome://tracing`` opens
directly: complete events (``ph: "X"``) with microsecond timestamps,
one timeline row per trace (job), plus instant events (``ph: "i"``) for
the span annotations — so a parallel-deflate or DES run renders as the
familiar flame chart with faults and resubmits visible as markers.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable

from .trace import Span, Tracer

#: Process name Perfetto shows for the repro timeline.
PROCESS_NAME = "repro"


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One JSON object per line, in span-finish order."""
    return "".join(json.dumps(span.to_dict(), sort_keys=True) + "\n"
                   for span in spans)


def write_spans_jsonl(spans: Iterable[Span],
                      path: str | pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(spans_to_jsonl(spans))
    return path


def spans_to_chrome_trace(spans: Iterable[Span],
                          epoch_perf_s: float = 0.0) -> dict:
    """Build a ``trace_event`` JSON document from finished spans.

    ``epoch_perf_s`` (the tracer's enable-time ``perf_counter``) rebases
    timestamps so the trace starts near zero.  Each trace id becomes one
    thread row, so concurrent jobs stack as parallel timelines.
    """
    events: list[dict] = []
    tids: set[int] = set()
    for span in spans:
        ts_us = (span.start_s - epoch_perf_s) * 1e6
        args = {"span_id": span.span_id, "parent_id": span.parent_id}
        args.update(span.attrs)
        tids.add(span.trace_id)
        events.append({
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "X",
            "ts": ts_us,
            "dur": span.duration_s * 1e6,
            "pid": 1,
            "tid": span.trace_id,
            "args": args,
        })
        for event in span.events:
            events.append({
                "name": event.name,
                "cat": "event",
                "ph": "i",
                "s": "t",
                "ts": (event.timestamp_s - epoch_perf_s) * 1e6,
                "pid": 1,
                "tid": span.trace_id,
                "args": dict(event.attrs),
            })
    meta = [{"name": "process_name", "ph": "M", "pid": 1,
             "args": {"name": PROCESS_NAME}}]
    meta.extend({"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                 "args": {"name": f"job {tid}"}} for tid in sorted(tids))
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def spans_to_trees(spans: Iterable[Span]) -> list[dict]:
    """Group finished spans into one tree per *wire* trace.

    Local trace ids are process-private; the wire identity is the
    :class:`~repro.obs.context.TraceContext` stamped on trace roots by
    the propagation layer (client request spans, the service's adopted
    request spans, worker job roots).  This builder:

    1. groups spans by local trace id and stamps each group with the
       wire trace id of any context-carrying span in it (groups with no
       context stay under a synthetic ``local-<id>`` trace);
    2. merges groups sharing a wire trace id, re-linking each group's
       roots to the span whose wire ``span_id`` matches their context's
       ``parent_id`` — so a client span, the server's request span, and
       folded worker spans come out as *one* nested tree even though
       each was a separate local trace.

    Returns one ``{"trace_id", "spans", "roots"}`` dict per trace, most
    recently started first; each node is a span dict plus ``children``.
    """
    spans = list(spans)
    # 1. wire trace id per local group.
    wire_of_local: dict[int, str] = {}
    for span in spans:
        if span.ctx is not None:
            wire_of_local.setdefault(span.trace_id, span.ctx.trace_id)
    nodes: dict[int, dict] = {}
    groups: dict[str, list[Span]] = {}
    for span in spans:
        wire = wire_of_local.get(span.trace_id,
                                 f"local-{span.trace_id}")
        groups.setdefault(wire, []).append(span)
        node = span.to_dict()
        node["children"] = []
        nodes[span.span_id] = node
    # 2. link: local edges first, then wire edges for local roots.
    trees: list[dict] = []
    for wire, members in groups.items():
        by_wire_span = {span.ctx.span_id: span for span in members
                        if span.ctx is not None}
        local_ids = {span.span_id for span in members}
        roots: list[dict] = []
        for span in sorted(members, key=lambda s: s.start_s):
            parent = None
            if span.parent_id in local_ids:
                parent = nodes[span.parent_id]
            elif span.ctx is not None and span.ctx.parent_id is not None:
                owner = by_wire_span.get(span.ctx.parent_id)
                if owner is not None and owner is not span:
                    parent = nodes[owner.span_id]
            if parent is not None:
                parent["children"].append(nodes[span.span_id])
            else:
                roots.append(nodes[span.span_id])
        trees.append({
            "trace_id": wire,
            "spans": len(members),
            "start_s": min(span.start_s for span in members),
            "roots": roots,
        })
    trees.sort(key=lambda tree: tree["start_s"], reverse=True)
    return trees


def write_chrome_trace(tracer_or_spans: Tracer | Iterable[Span],
                       path: str | pathlib.Path) -> pathlib.Path:
    """Write a Perfetto-openable trace; accepts a tracer or raw spans."""
    if isinstance(tracer_or_spans, Tracer):
        spans = tracer_or_spans.finished()
        epoch = tracer_or_spans.epoch_perf_s
    else:
        spans = list(tracer_or_spans)
        epoch = min((span.start_s for span in spans), default=0.0)
    path = pathlib.Path(path)
    path.write_text(json.dumps(spans_to_chrome_trace(spans, epoch),
                               indent=None, sort_keys=True))
    return path
