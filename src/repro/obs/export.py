"""Span exporters: JSON-lines log and Chrome ``trace_event`` JSON.

The Chrome format is the one Perfetto / ``chrome://tracing`` opens
directly: complete events (``ph: "X"``) with microsecond timestamps,
one timeline row per trace (job), plus instant events (``ph: "i"``) for
the span annotations — so a parallel-deflate or DES run renders as the
familiar flame chart with faults and resubmits visible as markers.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable

from .trace import Span, Tracer

#: Process name Perfetto shows for the repro timeline.
PROCESS_NAME = "repro"


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One JSON object per line, in span-finish order."""
    return "".join(json.dumps(span.to_dict(), sort_keys=True) + "\n"
                   for span in spans)


def write_spans_jsonl(spans: Iterable[Span],
                      path: str | pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(spans_to_jsonl(spans))
    return path


def spans_to_chrome_trace(spans: Iterable[Span],
                          epoch_perf_s: float = 0.0) -> dict:
    """Build a ``trace_event`` JSON document from finished spans.

    ``epoch_perf_s`` (the tracer's enable-time ``perf_counter``) rebases
    timestamps so the trace starts near zero.  Each trace id becomes one
    thread row, so concurrent jobs stack as parallel timelines.
    """
    events: list[dict] = []
    tids: set[int] = set()
    for span in spans:
        ts_us = (span.start_s - epoch_perf_s) * 1e6
        args = {"span_id": span.span_id, "parent_id": span.parent_id}
        args.update(span.attrs)
        tids.add(span.trace_id)
        events.append({
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "X",
            "ts": ts_us,
            "dur": span.duration_s * 1e6,
            "pid": 1,
            "tid": span.trace_id,
            "args": args,
        })
        for event in span.events:
            events.append({
                "name": event.name,
                "cat": "event",
                "ph": "i",
                "s": "t",
                "ts": (event.timestamp_s - epoch_perf_s) * 1e6,
                "pid": 1,
                "tid": span.trace_id,
                "args": dict(event.attrs),
            })
    meta = [{"name": "process_name", "ph": "M", "pid": 1,
             "args": {"name": PROCESS_NAME}}]
    meta.extend({"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                 "args": {"name": f"job {tid}"}} for tid in sorted(tids))
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer_or_spans: Tracer | Iterable[Span],
                       path: str | pathlib.Path) -> pathlib.Path:
    """Write a Perfetto-openable trace; accepts a tracer or raw spans."""
    if isinstance(tracer_or_spans, Tracer):
        spans = tracer_or_spans.finished()
        epoch = tracer_or_spans.epoch_perf_s
    else:
        spans = list(tracer_or_spans)
        epoch = min((span.start_s for span in spans), default=0.0)
    path = pathlib.Path(path)
    path.write_text(json.dumps(spans_to_chrome_trace(spans, epoch),
                               indent=None, sort_keys=True))
    return path
