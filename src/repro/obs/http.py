"""Live ops surface: a tiny HTTP endpoint over the telemetry globals.

``repro serve --http-port N`` starts one of these next to the TCP job
server, giving operators the paper's hypervisor-counter experience —
look at the fleet without stopping it:

* ``GET /metrics``       — Prometheus text exposition of the registry
  (counters, gauges, histograms, and the rolling-window aggregates);
* ``GET /healthz``       — JSON liveness: service state, queue depths,
  and per-chip breaker states (200 while running, 503 once draining);
* ``GET /traces/recent`` — recent span trees grouped by *wire* trace id
  (one tree per client request, worker spans included);
* ``GET /flight``        — the flight recorder ring, as a dump would
  render it;
* ``GET /ops``           — one JSON aggregate (service stats + window
  summaries + breakers) built for ``repro top``.

Stdlib-only (``http.server``), threaded, and read-only: nothing here
mutates the service.  The handler trusts nothing from the request but
the path.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .export import spans_to_trees
from .flight import FLIGHT
from .metrics import REGISTRY, RollingWindow
from .trace import TRACE

#: Trees returned by /traces/recent (most recent first).
RECENT_TRACE_LIMIT = 50


def _breaker_states(service) -> dict:
    """Per-chip breaker states off the service's pool, best-effort."""
    pool = getattr(service, "pool", None)
    health = getattr(pool, "health", None)
    if health is None:
        return {}
    try:
        return {str(chip): health.state(chip).name
                for chip in range(getattr(pool, "chips", 0))}
    except Exception:  # pragma: no cover - introspection only
        return {}


def _service_stats(service) -> dict:
    stats = service.stats()
    return {
        "state": stats.state,
        "accepted": stats.accepted,
        "completed": stats.completed,
        "rejected": stats.rejected,
        "expired": stats.expired,
        "failed": stats.failed,
        "queued": stats.queued,
        "queued_bytes": stats.queued_bytes,
        "bytes_in": stats.bytes_in,
        "bytes_out": stats.bytes_out,
        "batches": stats.batches,
        "per_class": stats.per_class,
        "per_tenant": stats.per_tenant,
    }


def _window_summaries() -> dict:
    """Every rolling-window family's per-label summaries.

    Shape: ``{metric_name: {"k=v,...": {count, rate_per_s, mean, p50,
    p99, max}}}`` — keyed by a flat label string so ``repro top`` (and
    any shell scraper) can sort and render rows without re-deriving the
    label set.
    """
    out: dict = {}
    for name in REGISTRY.names():
        metric = REGISTRY.get(name)
        if not isinstance(metric, RollingWindow):
            continue
        rows: dict = {}
        for row in metric.snapshot_values():
            labels = row.get("labels") or {}
            key = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            rows[key] = {k: v for k, v in row.items() if k != "labels"}
        out[name] = rows
    return out


class OpsServer:
    """The ops endpoint; binds on start(), serves on a daemon thread."""

    def __init__(self, service=None, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self.started_at = time.time()

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    def start(self) -> "OpsServer":
        ops = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args: object) -> None:
                pass  # operators read /metrics, not an access log

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                try:
                    status, content_type, body = ops._respond(self.path)
                except Exception as exc:  # never kill the plane
                    status, content_type = 500, "text/plain"
                    body = f"ops endpoint error: {exc}".encode()
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self._httpd = ThreadingHTTPServer((self.host, self._requested_port),
                                          Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-ops-http", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None

    def __enter__(self) -> "OpsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- responses -----------------------------------------------------------

    def _respond(self, path: str) -> tuple[int, str, bytes]:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/metrics":
            return 200, "text/plain; version=0.0.4", \
                REGISTRY.to_prometheus().encode()
        if path == "/healthz":
            return self._healthz()
        if path == "/traces/recent":
            trees = spans_to_trees(TRACE.finished())[:RECENT_TRACE_LIMIT]
            return 200, "application/json", _json(
                {"traces": trees, "dropped_spans": TRACE.dropped})
        if path == "/flight":
            return 200, "application/json", _json({
                "enabled": FLIGHT.enabled,
                "capacity": FLIGHT.capacity,
                "dumps_written": FLIGHT.dumps_written,
                "records": FLIGHT.snapshot(),
            })
        if path == "/ops":
            doc = {
                "uptime_s": round(time.time() - self.started_at, 3),
                "windows": _window_summaries(),
            }
            if self.service is not None:
                doc["service"] = _service_stats(self.service)
                doc["breakers"] = _breaker_states(self.service)
            return 200, "application/json", _json(doc)
        return 404, "text/plain", \
            b"have: /metrics /healthz /traces/recent /flight /ops"

    def _healthz(self) -> tuple[int, str, bytes]:
        doc: dict = {"status": "ok"}
        status = 200
        if self.service is not None:
            stats = self.service.stats()
            doc["service_state"] = stats.state
            doc["queued"] = stats.queued
            doc["in_service"] = stats.in_service
            doc["breakers"] = _breaker_states(self.service)
            if stats.state != "running":
                doc["status"] = "draining"
                status = 503
        return status, "application/json", _json(doc)


def _json(doc: dict) -> bytes:
    return json.dumps(doc, indent=1, sort_keys=True).encode()
