"""Flight recorder: an always-on ring of compact job/fault records.

Spans answer "where did this job spend its time", but only when someone
turned tracing on *before* the interesting failure.  The paper's
production posture is the opposite: the NX counters are always live, so
a post-mortem starts from data that was already being collected.  The
flight recorder is that posture in software — a fixed-size
``deque(maxlen=...)`` of ``(perf_counter, kind, fields)`` tuples that
every layer appends compact records to unconditionally (one attribute
check and one ring append per record; the cost is measured by
``benchmarks/bench_obs_overhead.py`` and gated by ``perf_gate
--max-obs-overhead`` alongside the span-guard overhead).

On the paths where an operator would want the story — an injected
chaos fault, a breaker opening, a blown deadline, a worker crash — the
layer calls :meth:`FlightRecorder.auto_dump`, which writes the ring to
a JSON file.  Dumps are throttled (a minimum interval and a per-process
cap) so a fault storm produces a handful of files, not thousands.

Environment knobs:

* ``REPRO_FLIGHT=0`` disables recording entirely;
* ``REPRO_FLIGHT_DIR`` sets the dump directory (default: the system
  temp dir, so test runs and CI never litter the working tree).

The ring is process-local; worker processes own their own rings and
dump independently (the dump file name carries the pid).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections import deque

#: Records kept in the ring; compact tuples, so this is ~a few hundred
#: KB of bounded memory at the default capacity.
DEFAULT_CAPACITY = 4096

#: Throttle: at most one dump per interval, at most this many per
#: process lifetime (a crash loop must not fill the disk).
MIN_DUMP_INTERVAL_S = 1.0
MAX_DUMPS_PER_PROCESS = 8


class FlightRecorder:
    """Fixed-size ring of compact event records with throttled dumps."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY, *,
                 min_dump_interval_s: float = MIN_DUMP_INTERVAL_S,
                 max_dumps: int = MAX_DUMPS_PER_PROCESS) -> None:
        self.enabled = os.environ.get("REPRO_FLIGHT", "1") != "0"
        self.capacity = capacity
        self.min_dump_interval_s = min_dump_interval_s
        self.max_dumps = max_dumps
        self.dumps_written = 0
        self.dumps_suppressed = 0
        self._ring: deque = deque(maxlen=capacity)
        self._epoch_time_s = time.time()
        self._epoch_perf_s = time.perf_counter()
        self._last_dump_s = float("-inf")
        self._dump_lock = threading.Lock()
        self._seq = 0

    # -- recording (the hot path) ------------------------------------------

    def record(self, kind: str, /, **fields: object) -> None:
        """Append one compact record; near-free, never raises.

        ``deque.append`` with a ``maxlen`` is atomic under the GIL, so
        the hot path takes no lock.  ``kind`` is positional-only so a
        field may itself be named ``kind`` (the rescue path does).
        """
        if not self.enabled:
            return
        self._ring.append((time.perf_counter(), kind, fields))

    # -- lifecycle ----------------------------------------------------------

    def disable(self) -> None:
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    def reset(self) -> None:
        """Drop the ring and the dump throttle state (tests)."""
        self._ring.clear()
        self.dumps_written = 0
        self.dumps_suppressed = 0
        self._last_dump_s = float("-inf")
        self._seq = 0

    def __len__(self) -> int:
        return len(self._ring)

    # -- inspection / dumping ------------------------------------------------

    def snapshot(self) -> list[dict]:
        """The ring as JSON-able records with absolute timestamps.

        A field whose name collides with the record envelope (``t_s``,
        ``kind``) is kept under an ``f_`` prefix instead of clobbering
        the envelope — the rescue path legitimately records a ``kind``
        field of its own.
        """
        offset = self._epoch_time_s - self._epoch_perf_s
        records = []
        for t, kind, fields in list(self._ring):
            rec = {"t_s": round(t + offset, 6), "kind": kind}
            for key, value in fields.items():
                rec[("f_" + key) if key in rec else key] = value
            records.append(rec)
        return records

    @staticmethod
    def dump_dir() -> str:
        return os.environ.get("REPRO_FLIGHT_DIR") or tempfile.gettempdir()

    def dump(self, reason: str, /, path: str | os.PathLike | None = None,
             **fields: object) -> str | None:
        """Write the ring to a JSON file; returns the path, None on error.

        Dumping must never take down the path that triggered it, so any
        OS error is swallowed (and counted as suppressed).
        """
        self._seq += 1
        if path is None:
            path = os.path.join(
                self.dump_dir(),
                f"repro-flight-{os.getpid()}-{self._seq}.json")
        doc = {
            "reason": reason,
            "pid": os.getpid(),
            "time_s": time.time(),
            "capacity": self.capacity,
            "records": self.snapshot(),
        }
        if fields:
            doc["detail"] = {k: repr(v) if not isinstance(
                v, (str, int, float, bool, type(None))) else v
                for k, v in fields.items()}
        try:
            with open(path, "w") as handle:
                json.dump(doc, handle, indent=1)
        except OSError:
            self.dumps_suppressed += 1
            return None
        self.dumps_written += 1
        return os.fspath(path)

    def auto_dump(self, reason: str, /, **fields: object) -> str | None:
        """Throttled dump for fault paths; returns the path or None.

        The trigger itself is recorded first, so the dump (and the ring
        any *later* dump sees) contains it.
        """
        if not self.enabled:
            return None
        self.record(f"dump.{reason}", **fields)
        with self._dump_lock:
            now = time.perf_counter()
            if (self.dumps_written >= self.max_dumps
                    or now - self._last_dump_s < self.min_dump_interval_s):
                self.dumps_suppressed += 1
                return None
            self._last_dump_s = now
        return self.dump(reason, **fields)


#: The process-global recorder every layer appends to.
FLIGHT = FlightRecorder()
