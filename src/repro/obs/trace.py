"""Low-overhead hierarchical span tracing for accelerator jobs.

One :class:`Span` covers one timed region of one job's journey through
the stack; spans nest via a per-thread stack, so the instrumented call
chain — ``api.compress`` → ``pool.route`` → ``backend.submit`` →
``vas.paste`` → ``engine.run`` → ``csb.complete`` — comes out as a tree
without any layer knowing about any other.  Fault retries, software
fallbacks, and paste rejections attach to the innermost open span as
*events* (point-in-time annotations), mirroring how the paper's
engineers attributed per-job latency to queueing, DMA, and fault
service.

Cost model: the module-level :data:`TRACE` singleton starts disabled.
Hot paths guard instrumentation behind its ``enabled`` attribute — one
attribute load — and non-hot paths may call :meth:`Tracer.span`
unconditionally, which returns the shared allocation-free
:data:`NULL_SPAN` while disabled.  Timing uses ``perf_counter`` so span
durations are wall-clock and monotonic; a paired epoch captured at
enable time lets exporters reconstruct absolute timestamps.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from .context import TraceContext

#: Finished-span ring limit: tracing a long run must not grow without
#: bound, so beyond this the oldest spans are dropped (and counted).
DEFAULT_MAX_SPANS = 100_000


@dataclass
class SpanEvent:
    """A point-in-time annotation inside a span (fault, resubmit, ...)."""

    name: str
    timestamp_s: float
    attrs: dict

    def to_dict(self) -> dict:
        return {"name": self.name, "ts_s": self.timestamp_s,
                "attrs": self.attrs}


class Span:
    """One timed region of one job; nests under the thread's open span."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start_s",
                 "end_s", "attrs", "events", "ctx", "_tracer")

    def __init__(self, name: str, trace_id: int, span_id: int,
                 parent_id: int | None, start_s: float,
                 tracer: "Tracer",
                 ctx: TraceContext | None = None) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s = 0.0
        self.attrs: dict = {}
        self.events: list[SpanEvent] = []
        self.ctx = ctx
        self._tracer = tracer

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    def set(self, **attrs: object) -> "Span":
        """Attach result attributes (bytes out, modelled seconds, ...)."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: object) -> None:
        """Record a point annotation (fault, resubmit, fallback, ...)."""
        self.events.append(SpanEvent(name=name,
                                     timestamp_s=time.perf_counter(),
                                     attrs=attrs))

    def to_dict(self) -> dict:
        """JSON-able form (the JSON-lines exporter writes one per line)."""
        out = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
            "events": [event.to_dict() for event in self.events],
        }
        if self.ctx is not None:
            out["ctx"] = self.ctx.to_dict()
        return out

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.end_s = time.perf_counter()
        self._tracer._finish(self)

    def end(self) -> None:
        """Finish explicitly (detached spans that outlive a scope)."""
        self.__exit__(None, None, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, trace={self.trace_id}, "
                f"id={self.span_id}, parent={self.parent_id})")


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def event(self, name: str, **attrs: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def end(self) -> None:
        pass


#: The single no-op span every disabled-path ``span()`` call returns.
NULL_SPAN = _NullSpan()


class Tracer:
    """Produces spans and collects the finished ones.

    The global :data:`TRACE` instance is what the stack instruments
    against; independent instances (e.g. a bench's private stage
    recorder) are fully supported and never touch global state.
    """

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.enabled = False
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        self.epoch_time_s = 0.0       # time.time() at enable
        self.epoch_perf_s = 0.0       # matching perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_trace = 1
        self._next_span = 1

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> None:
        self.epoch_time_s = time.time()
        self.epoch_perf_s = time.perf_counter()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop collected spans (keeps the enabled flag as-is)."""
        with self._lock:
            self.spans = []
            self.dropped = 0
        self._local.stack = []

    # -- span production ---------------------------------------------------

    def span(self, name: str, ctx: TraceContext | None = None,
             **attrs: object) -> Span | _NullSpan:
        """Open a span under the thread's current one; use as a context
        manager.  Returns :data:`NULL_SPAN` while disabled."""
        if not self.enabled:
            return NULL_SPAN
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        with self._lock:
            span_id = self._next_span
            self._next_span += 1
            if stack:
                parent = stack[-1]
                trace_id = parent.trace_id
                parent_id = parent.span_id
            else:
                trace_id = self._next_trace
                self._next_trace += 1
                parent_id = None
        span = Span(name=name, trace_id=trace_id, span_id=span_id,
                    parent_id=parent_id, start_s=time.perf_counter(),
                    tracer=self, ctx=ctx)
        if attrs:
            span.attrs.update(attrs)
        stack.append(span)
        return span

    def span_detached(self, name: str, parent: "Span | None" = None,
                      ctx: TraceContext | None = None,
                      **attrs: object) -> Span | _NullSpan:
        """A span that is *not* bound to any thread's stack.

        Request lifecycles that cross threads — a service job enqueued
        on a client-handler thread and fulfilled on the dispatcher —
        cannot use the per-thread nesting model: the span must open on
        one thread and close on another.  A detached span has an
        explicit ``parent`` (or starts a fresh trace) and never appears
        on a stack; finishing it only files it with the collected spans.
        """
        if not self.enabled:
            return NULL_SPAN
        with self._lock:
            span_id = self._next_span
            self._next_span += 1
            if parent is not None and isinstance(parent, Span):
                trace_id = parent.trace_id
                parent_id = parent.span_id
            else:
                trace_id = self._next_trace
                self._next_trace += 1
                parent_id = None
        span = Span(name=name, trace_id=trace_id, span_id=span_id,
                    parent_id=parent_id, start_s=time.perf_counter(),
                    tracer=self, ctx=ctx)
        if attrs:
            span.attrs.update(attrs)
        return span

    def adopt(self, span: "Span | _NullSpan") -> "_Adoption":
        """Make ``span`` this thread's innermost span for a scope.

        Used by a worker executing someone else's detached span: while
        adopted, new spans opened on this thread nest under it, so e.g.
        ``pool.route`` comes out as a child of the ``service.request``
        span even though the request was created on another thread.
        Adoption does not finish the span — the owner still exits it.
        """
        return _Adoption(self, span)

    def event(self, name: str, **attrs: object) -> None:
        """Annotate the innermost open span (no-op with none open)."""
        if not self.enabled:
            return
        stack = getattr(self._local, "stack", None)
        if stack:
            stack[-1].event(name, **attrs)

    def current(self) -> Span | None:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def current_ctx(self) -> TraceContext | None:
        """The nearest enclosing span's wire context, if any.

        Walks this thread's open-span stack innermost-first; used at
        process-boundary submission points (exec descriptors) to carry
        the wire trace id onward.  Only called on traced paths.
        """
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        for span in reversed(stack):
            if span.ctx is not None:
                return span.ctx
        return None

    def _finish(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # mis-nested exit: unwind to it
            while stack and stack.pop() is not span:
                pass
        with self._lock:
            if len(self.spans) >= self.max_spans:
                del self.spans[0]
                self.dropped += 1
            self.spans.append(span)

    # -- cross-process folding ---------------------------------------------

    def fold(self, span_dicts: list[dict],
             parent: "Span | None" = None) -> list[Span]:
        """Graft spans recorded in another process into this tracer.

        ``span_dicts`` is a list of :meth:`Span.to_dict` records (the
        form worker completion records carry).  Every span gets fresh
        ids from this tracer so they cannot collide with local ones,
        but the parent/child structure *within* the batch is preserved;
        spans whose parent is not in the batch (the worker's roots)
        attach under ``parent`` when given, else start a fresh trace.

        Timestamps are kept as-is: ``perf_counter`` is
        ``CLOCK_MONOTONIC`` on Linux, which is shared across processes
        on the same host, so worker span times line up with local ones.
        """
        if not self.enabled or not span_dicts:
            return []
        if parent is not None and isinstance(parent, Span):
            trace_id = parent.trace_id
            root_parent = parent.span_id
        else:
            with self._lock:
                trace_id = self._next_trace
                self._next_trace += 1
            root_parent = None
        id_map: dict[int, int] = {}
        with self._lock:
            for record in span_dicts:
                id_map[record["span_id"]] = self._next_span
                self._next_span += 1
        folded: list[Span] = []
        for record in span_dicts:
            old_parent = record.get("parent_id")
            parent_id = id_map.get(old_parent, root_parent) \
                if old_parent is not None else root_parent
            span = Span(name=record["name"], trace_id=trace_id,
                        span_id=id_map[record["span_id"]],
                        parent_id=parent_id,
                        start_s=record["start_s"], tracer=self,
                        ctx=TraceContext.from_dict(record.get("ctx")))
            span.end_s = record["start_s"] + record["duration_s"]
            span.attrs = dict(record.get("attrs") or {})
            span.events = [
                SpanEvent(name=event["name"], timestamp_s=event["ts_s"],
                          attrs=dict(event.get("attrs") or {}))
                for event in record.get("events") or []]
            folded.append(span)
        with self._lock:
            for span in folded:
                if len(self.spans) >= self.max_spans:
                    del self.spans[0]
                    self.dropped += 1
                self.spans.append(span)
        return folded

    # -- inspection --------------------------------------------------------

    def finished(self, name: str | None = None) -> list[Span]:
        """Completed spans, optionally filtered by name."""
        with self._lock:
            spans = list(self.spans)
        if name is None:
            return spans
        return [span for span in spans if span.name == name]

    def trace_tree(self, trace_id: int) -> dict[int | None, list[Span]]:
        """One trace's spans grouped by parent (children in end order)."""
        children: dict[int | None, list[Span]] = {}
        for span in self.finished():
            if span.trace_id == trace_id:
                children.setdefault(span.parent_id, []).append(span)
        return children


class _Adoption:
    """Context manager pushing a foreign span onto this thread's stack."""

    __slots__ = ("_tracer", "_span", "_pushed")

    def __init__(self, tracer: Tracer, span: Span | _NullSpan) -> None:
        self._tracer = tracer
        self._span = span
        self._pushed = False

    def __enter__(self) -> Span | _NullSpan:
        if isinstance(self._span, Span):
            local = self._tracer._local
            stack = getattr(local, "stack", None)
            if stack is None:
                stack = local.stack = []
            stack.append(self._span)
            self._pushed = True
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        if self._pushed:
            stack = getattr(self._tracer._local, "stack", None)
            if stack and stack[-1] is self._span:
                stack.pop()
            elif stack and self._span in stack:
                stack.remove(self._span)


#: The process-global tracer every instrumented layer guards against.
TRACE = Tracer()
