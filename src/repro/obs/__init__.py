"""End-to-end job telemetry: spans, metrics, and trace export.

The observability layer the ROADMAP's production north star needs:

* :mod:`repro.obs.trace` — hierarchical spans following every job across
  the stack (``api.compress`` → ``pool.route`` → ``backend.submit`` →
  ``vas.paste`` → ``engine.run`` → ``csb.complete``), with fault /
  resubmit / fallback events as annotations;
* :mod:`repro.obs.metrics` — a process-global registry of counters,
  gauges, and fixed-bucket histograms, snapshot-able as JSON and
  Prometheus text;
* :mod:`repro.obs.export` — JSON-lines span log and Chrome
  ``trace_event`` JSON (opens directly in Perfetto).

Telemetry is **off by default** and costs one attribute check per
instrumented site while off.  Turn it on per process::

    from repro import obs
    obs.enable()                      # spans + metrics
    ...
    obs.export_chrome_trace("run.trace.json")
    print(obs.registry().to_prometheus())

or from the CLI with ``repro --trace compress file`` / ``repro stats``.
"""

from __future__ import annotations

import pathlib

from .context import TraceContext
from .export import (spans_to_chrome_trace, spans_to_jsonl,
                     spans_to_trees, write_chrome_trace,
                     write_spans_jsonl)
from .flight import FLIGHT, FlightRecorder
from .http import OpsServer
from .metrics import (LATENCY_BUCKETS, RATIO_BUCKETS, SIZE_BUCKETS,
                      REGISTRY, Counter, Gauge, Histogram, MetricsRegistry,
                      RollingWindow, record_job, record_service_request)
from .trace import NULL_SPAN, TRACE, Span, SpanEvent, Tracer

__all__ = [
    "enable", "disable", "reset", "tracing_enabled", "metrics_enabled",
    "tracer", "registry", "flight", "export_chrome_trace",
    "export_spans_jsonl",
    "Tracer", "Span", "SpanEvent", "MetricsRegistry",
    "Counter", "Gauge", "Histogram", "RollingWindow", "record_job",
    "record_service_request",
    "TraceContext", "FlightRecorder", "FLIGHT", "OpsServer",
    "TRACE", "REGISTRY", "NULL_SPAN",
    "spans_to_chrome_trace", "spans_to_jsonl", "spans_to_trees",
    "write_chrome_trace", "write_spans_jsonl",
    "LATENCY_BUCKETS", "SIZE_BUCKETS", "RATIO_BUCKETS",
]


def enable(*, trace: bool = True, metrics: bool = True) -> None:
    """Turn on span collection and/or registry recording, process-wide."""
    if trace:
        TRACE.enable()
    if metrics:
        REGISTRY.enabled = True


def disable() -> None:
    """Stop collecting; already-collected spans/metrics are retained."""
    TRACE.disable()
    REGISTRY.enabled = False


def reset() -> None:
    """Drop collected spans and metric values (keeps enabled flags)."""
    TRACE.reset()
    REGISTRY.reset()


def tracing_enabled() -> bool:
    return TRACE.enabled


def metrics_enabled() -> bool:
    return REGISTRY.enabled


def tracer() -> Tracer:
    """The process-global tracer the stack instruments against."""
    return TRACE


def registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return REGISTRY


def flight() -> FlightRecorder:
    """The process-global flight recorder (on by default)."""
    return FLIGHT


def export_chrome_trace(path: str | pathlib.Path) -> pathlib.Path:
    """Write the global tracer's spans as Perfetto-openable JSON."""
    return write_chrome_trace(TRACE, path)


def export_spans_jsonl(path: str | pathlib.Path) -> pathlib.Path:
    """Write the global tracer's spans as a JSON-lines log."""
    return write_spans_jsonl(TRACE.finished(), path)
