"""A minimal discrete-event simulation kernel.

Deliberately tiny: a time-ordered event heap with deterministic
tie-breaking.  The queueing experiments build client/server processes on
top of plain callbacks; no coroutines, no global state.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Simulator:
    """Event loop with schedule/run semantics."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[_Event] = []
        self._seq = 0
        self.events_processed = 0

    def schedule(self, delay: float,
                 action: Callable[[], None]) -> _Event:
        """Run ``action`` at ``now + delay``; returns a cancellable handle."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        event = _Event(time=self.now + delay, seq=self._seq, action=action)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    @staticmethod
    def cancel(event: _Event) -> None:
        event.cancelled = True

    def run(self, until: float | None = None) -> None:
        """Process events until the heap is empty or ``until`` is reached."""
        while self._heap:
            event = self._heap[0]
            if until is not None and event.time > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self.events_processed += 1
            event.action()
        if until is not None:
            self.now = max(self.now, until)

    def peek_time(self) -> float | None:
        """Time of the next pending event, if any."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
