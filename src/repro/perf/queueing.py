"""Queueing simulation of cores sharing the on-chip accelerator.

The paper's sharing story: one accelerator serves every core on the chip
through VAS windows, so request latency grows with offered load and the
interesting questions are (a) where the knee is and (b) what the tail
looks like for small, latency-sensitive requests mixed with bulk jobs.

Two drive modes:

* **open** — each client emits jobs as a Poisson process (offered load
  independent of completions);
* **closed** — each client keeps one job in flight with exponential
  think time between completions (offered load self-throttles).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..nx.params import MachineParams
from .des import Simulator
from .timing import OffloadTimingModel


@dataclass
class JobRecord:
    """One simulated request's life cycle."""

    client: int
    size_bytes: int
    submit_time: float
    start_time: float = 0.0
    finish_time: float = 0.0

    @property
    def sojourn(self) -> float:
        return self.finish_time - self.submit_time

    @property
    def wait(self) -> float:
        return self.start_time - self.submit_time


@dataclass
class QueueingResult:
    """Aggregate outcome of one simulation run."""

    jobs: list[JobRecord]
    sim_seconds: float
    engines: int

    @property
    def completed(self) -> int:
        return len(self.jobs)

    @property
    def throughput_gbps(self) -> float:
        total = sum(job.size_bytes for job in self.jobs)
        return (total / 1e9) / self.sim_seconds if self.sim_seconds else 0.0

    def latency_percentile(self, pct: float) -> float:
        if not self.jobs:
            return 0.0
        ordered = sorted(job.sojourn for job in self.jobs)
        idx = min(len(ordered) - 1, int(pct / 100.0 * len(ordered)))
        return ordered[idx]

    @property
    def mean_latency(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(job.sojourn for job in self.jobs) / len(self.jobs)

    @property
    def mean_wait(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(job.wait for job in self.jobs) / len(self.jobs)


@dataclass
class AcceleratorQueueSim:
    """FIFO multi-engine queue fed by Poisson or closed-loop clients."""

    machine: MachineParams
    engines: int = 1
    op: str = "compress"
    seed: int = 42
    size_sampler: Callable[[random.Random], int] | None = None

    def __post_init__(self) -> None:
        self.timing = OffloadTimingModel(self.machine, op=self.op)

    def _sample_size(self, rng: random.Random) -> int:
        if self.size_sampler is not None:
            return self.size_sampler(rng)
        return 65536

    def service_seconds(self, size_bytes: int) -> float:
        return (self.timing.service_seconds(size_bytes)
                + self.machine.dispatch_overhead_us * 1e-6)

    # -- open (Poisson) drive ------------------------------------------------

    def run_open(self, arrival_rate_per_s: float, clients: int,
                 duration_s: float) -> QueueingResult:
        """Each client is a Poisson source of rate ``arrival_rate_per_s``."""
        sim = Simulator()
        rng = random.Random(self.seed)
        queue: list[JobRecord] = []
        busy = [False] * self.engines
        done: list[JobRecord] = []

        def try_dispatch() -> None:
            while queue:
                try:
                    engine = busy.index(False)
                except ValueError:
                    return
                job = queue.pop(0)
                busy[engine] = True
                job.start_time = sim.now
                service = self.service_seconds(job.size_bytes)

                def finish(job: JobRecord = job, engine: int = engine) -> None:
                    busy[engine] = False
                    job.finish_time = sim.now
                    done.append(job)
                    try_dispatch()

                sim.schedule(service, finish)

        def arrival(client: int) -> None:
            if sim.now >= duration_s:
                return
            job = JobRecord(client=client,
                            size_bytes=self._sample_size(rng),
                            submit_time=sim.now)
            job.submit_time += self.machine.submit_overhead_us * 1e-6
            queue.append(job)
            try_dispatch()
            gap = rng.expovariate(arrival_rate_per_s)
            sim.schedule(gap, lambda: arrival(client))

        for client in range(clients):
            sim.schedule(rng.expovariate(arrival_rate_per_s),
                         lambda client=client: arrival(client))
        sim.run()
        return QueueingResult(jobs=done, sim_seconds=max(sim.now, duration_s),
                              engines=self.engines)

    # -- closed (think-time) drive ---------------------------------------------

    def run_closed(self, clients: int, think_seconds: float,
                   duration_s: float) -> QueueingResult:
        """Each client resubmits after an exponential think time."""
        sim = Simulator()
        rng = random.Random(self.seed)
        queue: list[JobRecord] = []
        busy = [False] * self.engines
        done: list[JobRecord] = []

        def try_dispatch() -> None:
            while queue:
                try:
                    engine = busy.index(False)
                except ValueError:
                    return
                job = queue.pop(0)
                busy[engine] = True
                job.start_time = sim.now
                service = self.service_seconds(job.size_bytes)

                def finish(job: JobRecord = job, engine: int = engine) -> None:
                    busy[engine] = False
                    job.finish_time = sim.now
                    done.append(job)
                    think = rng.expovariate(1.0 / think_seconds) \
                        if think_seconds > 0 else 0.0
                    if sim.now + think < duration_s:
                        sim.schedule(think,
                                     lambda c=job.client: submit(c))
                    try_dispatch()

                sim.schedule(service, finish)

        def submit(client: int) -> None:
            job = JobRecord(client=client,
                            size_bytes=self._sample_size(rng),
                            submit_time=sim.now)
            queue.append(job)
            try_dispatch()

        for client in range(clients):
            sim.schedule(rng.random() * 1e-6,
                         lambda client=client: submit(client))
        sim.run(until=duration_s * 1.5)
        # Account over the active window, not the idle drain tail.
        last_finish = max((job.finish_time for job in done),
                          default=duration_s)
        return QueueingResult(jobs=done,
                              sim_seconds=max(last_finish, duration_s * 0.5),
                              engines=self.engines)


def load_sweep(machine: MachineParams, loads: list[float],
               size_bytes: int = 65536, clients: int = 16,
               duration_s: float = 0.2, engines: int = 1,
               seed: int = 42) -> list[tuple[float, QueueingResult]]:
    """Sweep offered load as a fraction of engine capacity.

    ``loads`` are utilization targets (0..1+); arrival rates are derived
    from the per-job service time so the sweep brackets the knee.
    """
    results = []
    for load in loads:
        sim = AcceleratorQueueSim(
            machine, engines=engines, seed=seed,
            size_sampler=lambda rng: size_bytes)
        service = sim.service_seconds(size_bytes)
        total_rate = load * engines / service
        per_client = total_rate / clients
        results.append(
            (load, sim.run_open(per_client, clients, duration_s)))
    return results
