"""Multi-chip job routing: which chip's accelerator serves a request?

In a multi-chip system every chip has its own NX/zEDC, and software must
decide where to paste.  The trade: a remote accelerator costs the
cross-chip fabric hop, but the local one may be backed up.  Three
policies are modelled:

* ``local``        — always the submitting chip's engine;
* ``round_robin``  — rotate across chips (ignores load and locality);
* ``least_loaded`` — the engine with the least queued work, paying the
  remote penalty when that engine is not local.

The interesting regime is imbalanced offered load, where ``local``
saturates one engine while others idle — the system-level sharing story
behind the paper's aggregate-rate claims.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import ConfigError
from ..nx.params import Topology
from .des import Simulator
from .queueing import JobRecord
from .timing import OffloadTimingModel

POLICIES = ("local", "round_robin", "least_loaded")


def choose_chip(policy: str, home: int, loads: list[float],
                rr_state: list[int]) -> int:
    """The shared routing kernel: pick a chip index for one job.

    Used by both the live :class:`repro.backend.pool.AcceleratorPool`
    and the queueing DES below, so policy studies and production routing
    cannot drift apart.  ``loads`` is one entry per chip (queued or
    served bytes); ``rr_state`` is a one-element mutable rotation
    cursor.
    """
    chips = len(loads)
    if policy == "local":
        return home
    if policy == "round_robin":
        chip = rr_state[0] % chips
        rr_state[0] = (chip + 1) % chips
        return chip
    if policy == "least_loaded":
        best = home  # prefer local on ties
        for chip in range(chips):
            if loads[chip] < loads[best]:
                best = chip
        return best
    raise ConfigError(f"unknown routing policy {policy!r}; "
                      f"have {POLICIES}")


@dataclass
class RoutedJob(JobRecord):
    """A job plus where it came from and where it ran."""

    home_chip: int = 0
    served_chip: int = 0

    @property
    def remote(self) -> bool:
        return self.home_chip != self.served_chip


@dataclass
class RoutingResult:
    """Outcome of one routing simulation."""

    jobs: list[RoutedJob]
    sim_seconds: float
    chips: int

    @property
    def throughput_gbps(self) -> float:
        total = sum(job.size_bytes for job in self.jobs)
        return (total / 1e9) / self.sim_seconds if self.sim_seconds else 0.0

    @property
    def mean_latency(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(job.sojourn for job in self.jobs) / len(self.jobs)

    def percentile(self, pct: float) -> float:
        if not self.jobs:
            return 0.0
        ordered = sorted(job.sojourn for job in self.jobs)
        return ordered[min(len(ordered) - 1,
                           int(pct / 100.0 * len(ordered)))]

    @property
    def remote_fraction(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(job.remote for job in self.jobs) / len(self.jobs)


@dataclass
class MultiChipRouter:
    """DES of per-chip engines under a routing policy."""

    topology: Topology
    policy: str = "local"
    size_bytes: int = 262144
    seed: int = 42
    _timing: OffloadTimingModel = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ConfigError(f"unknown routing policy {self.policy!r}; "
                              f"have {POLICIES}")
        self._timing = OffloadTimingModel(self.topology.machine)

    def _service(self, size: int) -> float:
        return (self._timing.service_seconds(size)
                + self.topology.machine.dispatch_overhead_us * 1e-6)

    def run(self, per_chip_load: list[float],
            duration_s: float) -> RoutingResult:
        """``per_chip_load`` is each chip's offered load (fraction of one
        engine's capacity); chips can be loaded asymmetrically."""
        chips = self.topology.total_chips
        if len(per_chip_load) != chips:
            raise ConfigError(
                f"need {chips} load entries, got {len(per_chip_load)}")

        sim = Simulator()
        rng = random.Random(self.seed)
        queues: list[list[RoutedJob]] = [[] for _ in range(chips)]
        queued_bytes = [0] * chips
        busy = [False] * chips
        done: list[RoutedJob] = []
        rr_next = [0]
        service = self._service(self.size_bytes)
        penalty = self.topology.cross_chip_penalty_us * 1e-6

        def choose(home: int) -> int:
            loads = [queued_bytes[c] + (self.size_bytes if busy[c] else 0)
                     for c in range(chips)]
            return choose_chip(self.policy, home, loads, rr_next)

        def dispatch(chip: int) -> None:
            if busy[chip] or not queues[chip]:
                return
            job = queues[chip].pop(0)
            queued_bytes[chip] -= job.size_bytes
            busy[chip] = True
            job.start_time = sim.now
            extra = penalty if job.remote else 0.0

            def finish(job: RoutedJob = job, chip: int = chip) -> None:
                busy[chip] = False
                job.finish_time = sim.now
                done.append(job)
                dispatch(chip)

            sim.schedule(service + extra, finish)

        def arrival(home: int) -> None:
            if sim.now >= duration_s:
                return
            job = RoutedJob(client=home, size_bytes=self.size_bytes,
                            submit_time=sim.now, home_chip=home)
            target = choose(home)
            job.served_chip = target
            queues[target].append(job)
            queued_bytes[target] += job.size_bytes
            dispatch(target)
            rate = per_chip_load[home] / service
            if rate > 0:
                sim.schedule(rng.expovariate(rate), lambda: arrival(home))

        for chip, load in enumerate(per_chip_load):
            if load > 0:
                rate = load / service
                sim.schedule(rng.expovariate(rate),
                             lambda chip=chip: arrival(chip))
        sim.run()
        return RoutingResult(jobs=done, sim_seconds=max(sim.now, duration_s),
                             chips=chips)


def policy_comparison(topology: Topology, per_chip_load: list[float],
                      duration_s: float = 0.3,
                      size_bytes: int = 262144,
                      seed: int = 42) -> dict[str, RoutingResult]:
    """Run every policy on the same offered load.

    Each policy is evaluated through an :class:`AcceleratorPool` (built
    lazily here to avoid a module cycle), so benchmarks exercise the
    same routing object production code uses.
    """
    from ..backend.pool import AcceleratorPool

    results: dict[str, RoutingResult] = {}
    for policy in POLICIES:
        pool = AcceleratorPool(
            machine=topology.machine, chips=topology.total_chips,
            policy=policy,
            cross_chip_penalty_us=topology.cross_chip_penalty_us)
        results[policy] = pool.simulate_load(list(per_chip_load),
                                             duration_s,
                                             size_bytes=size_bytes,
                                             seed=seed)
    return results
