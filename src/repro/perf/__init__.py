"""Performance models: cost calibration, timing, queueing, system roll-up."""

from .cost import (
    COMPRESS_CYCLES_PER_BYTE,
    EFFECTIVE_COMPRESS_GBPS,
    SoftwareCostModel,
    accelerator_effective_gbps,
    measure_effective_gbps,
)
from .des import Simulator
from .energy import AreaComparison, EnergyComparison, EnergyModel
from .io_adapter import (
    PcieAdapterModel,
    PcieAdapterParams,
    compare_onchip_vs_adapter,
)
from .completion import CompletionMode, CompletionModel
from .priority import PriorityQueueSim
from .queueing import AcceleratorQueueSim, QueueingResult, load_sweep
from .routing import MultiChipRouter, RoutingResult, policy_comparison
from .system import SystemModel, SystemRates, scaling_series
from .tco import FleetAssumptions, TcoModel, TcoReport
from .timing import LatencyBreakdown, OffloadTimingModel

__all__ = [
    "SoftwareCostModel",
    "COMPRESS_CYCLES_PER_BYTE",
    "EFFECTIVE_COMPRESS_GBPS",
    "accelerator_effective_gbps",
    "measure_effective_gbps",
    "Simulator",
    "OffloadTimingModel",
    "LatencyBreakdown",
    "AcceleratorQueueSim",
    "QueueingResult",
    "load_sweep",
    "SystemModel",
    "SystemRates",
    "scaling_series",
    "EnergyModel",
    "EnergyComparison",
    "AreaComparison",
    "PcieAdapterModel",
    "PcieAdapterParams",
    "compare_onchip_vs_adapter",
    "CompletionModel",
    "CompletionMode",
    "PriorityQueueSim",
    "MultiChipRouter",
    "RoutingResult",
    "policy_comparison",
    "TcoModel",
    "TcoReport",
    "FleetAssumptions",
]
