"""Priority queueing simulation: latency-sensitive vs bulk sharing.

The VAS front end gives the accelerator two receive FIFOs; this DES
model measures what that buys: small high-priority requests (RPC
payloads, page-in decompression) keep microsecond-scale tails even while
bulk jobs saturate the engine.  ``starvation_bound`` reproduces the
anti-starvation arbitration so bulk still makes progress.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..nx.params import MachineParams
from .des import Simulator
from .queueing import JobRecord
from .timing import OffloadTimingModel


@dataclass
class PriorityJobRecord(JobRecord):
    """A job plus its priority class."""

    high_priority: bool = False


@dataclass
class PriorityClassResult:
    """Latency statistics for one priority class."""

    jobs: list[PriorityJobRecord]

    @property
    def count(self) -> int:
        return len(self.jobs)

    @property
    def mean_latency(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(j.sojourn for j in self.jobs) / len(self.jobs)

    def percentile(self, pct: float) -> float:
        if not self.jobs:
            return 0.0
        ordered = sorted(j.sojourn for j in self.jobs)
        idx = min(len(ordered) - 1, int(pct / 100.0 * len(ordered)))
        return ordered[idx]


@dataclass
class PriorityQueueSim:
    """Two-class FIFO service at one engine, VAS-style arbitration."""

    machine: MachineParams
    high_size: int = 8192
    bulk_size: int = 4 << 20
    starvation_bound: int = 8
    use_priority: bool = True  # False models a single shared FIFO
    seed: int = 42

    def __post_init__(self) -> None:
        self.timing = OffloadTimingModel(self.machine, op="compress")

    def _service(self, size: int) -> float:
        return (self.timing.service_seconds(size)
                + self.machine.dispatch_overhead_us * 1e-6)

    def run(self, high_rate_per_s: float, bulk_rate_per_s: float,
            duration_s: float) -> dict[str, PriorityClassResult]:
        sim = Simulator()
        rng = random.Random(self.seed)
        high_q: list[PriorityJobRecord] = []
        bulk_q: list[PriorityJobRecord] = []
        busy = [False]
        done: list[PriorityJobRecord] = []
        consecutive_high = [0]

        def pick() -> PriorityJobRecord | None:
            if not self.use_priority:
                # Single FIFO: merge by submit time.
                pools = [q for q in (high_q, bulk_q) if q]
                if not pools:
                    return None
                queue = min(pools, key=lambda q: q[0].submit_time)
                return queue.pop(0)
            take_bulk = bulk_q and (
                not high_q
                or consecutive_high[0] >= self.starvation_bound)
            if take_bulk:
                consecutive_high[0] = 0
                return bulk_q.pop(0)
            if high_q:
                consecutive_high[0] += 1
                return high_q.pop(0)
            return None

        def dispatch() -> None:
            if busy[0]:
                return
            job = pick()
            if job is None:
                return
            busy[0] = True
            job.start_time = sim.now

            def finish(job: PriorityJobRecord = job) -> None:
                busy[0] = False
                job.finish_time = sim.now
                done.append(job)
                dispatch()

            sim.schedule(self._service(job.size_bytes), finish)

        def arrival(high: bool) -> None:
            if sim.now >= duration_s:
                return
            size = self.high_size if high else self.bulk_size
            job = PriorityJobRecord(client=0, size_bytes=size,
                                    submit_time=sim.now,
                                    high_priority=high)
            (high_q if high else bulk_q).append(job)
            dispatch()
            rate = high_rate_per_s if high else bulk_rate_per_s
            sim.schedule(rng.expovariate(rate), lambda: arrival(high))

        sim.schedule(rng.expovariate(high_rate_per_s),
                     lambda: arrival(True))
        sim.schedule(rng.expovariate(bulk_rate_per_s),
                     lambda: arrival(False))
        sim.run()

        return {
            "high": PriorityClassResult(
                [j for j in done if j.high_priority]),
            "bulk": PriorityClassResult(
                [j for j in done if not j.high_priority]),
        }
