"""System-level aggregation: chips, drawers, and the 280 GB/s claim.

Aggregates per-chip accelerator rates across a topology and compares
against the all-core software alternative — the scaling walk behind the
abstract's "13x over the entire chip" and "280 GB/s on a maximally
configured z15" numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nx.params import MachineParams, Topology
from .cost import SoftwareCostModel, accelerator_effective_gbps


@dataclass(frozen=True)
class SystemRates:
    """Aggregate compression rates for one topology (GB/s)."""

    chips: int
    accelerator_gbps: float
    software_gbps: float

    @property
    def speedup(self) -> float:
        if self.software_gbps == 0:
            return float("inf")
        return self.accelerator_gbps / self.software_gbps


@dataclass
class SystemModel:
    """Throughput roll-up for a machine topology."""

    topology: Topology
    op: str = "compress"
    utilization: float = 1.0  # sustained fraction of per-engine rate

    @property
    def machine(self) -> MachineParams:
        return self.topology.machine

    def per_accelerator_gbps(self) -> float:
        return accelerator_effective_gbps(self.machine, self.op) \
            * self.utilization

    def aggregate_accelerator_gbps(self) -> float:
        return self.per_accelerator_gbps() \
            * self.topology.total_accelerators

    def aggregate_software_gbps(self, level: int = 6) -> float:
        cost = SoftwareCostModel(self.machine)
        per_chip = (cost.chip_compress_rate_gbps(level)
                    if self.op == "compress"
                    else cost.chip_decompress_rate_gbps())
        return per_chip * self.topology.total_chips

    def rates(self, level: int = 6) -> SystemRates:
        return SystemRates(
            chips=self.topology.total_chips,
            accelerator_gbps=self.aggregate_accelerator_gbps(),
            software_gbps=self.aggregate_software_gbps(level),
        )


def scaling_series(machine: MachineParams, max_chips: int,
                   chips_per_drawer: int = 4,
                   op: str = "compress") -> list[SystemRates]:
    """Aggregate rate as the system grows one chip at a time."""
    series = []
    for chips in range(1, max_chips + 1):
        drawers = -(-chips // chips_per_drawer)
        topo = Topology(machine=machine,
                        chips_per_drawer=min(chips, chips_per_drawer),
                        drawers=drawers)
        # Build an exact-chip topology: distribute evenly when possible,
        # otherwise fall back to a flat single-drawer layout.
        if topo.total_chips != chips:
            topo = Topology(machine=machine, chips_per_drawer=chips,
                            drawers=1)
        series.append(SystemModel(topo, op=op).rates())
    return series
