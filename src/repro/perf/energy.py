"""Area, power, and energy-per-byte model.

The abstract's claim: the accelerator occupies < 0.5 % of the POWER9 chip
yet replaces the compression work of the whole chip of cores — so the
area- and energy-efficiency gaps are even larger than the speedup.  This
module quantifies both sides from the machine parameters plus the
calibrated rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nx.params import MachineParams
from .cost import SoftwareCostModel, accelerator_effective_gbps


@dataclass(frozen=True)
class EnergyComparison:
    """Energy per compressed byte: accelerator vs software cores."""

    accelerator_nj_per_byte: float
    software_nj_per_byte: float

    @property
    def efficiency_gain(self) -> float:
        if self.accelerator_nj_per_byte == 0:
            return float("inf")
        return self.software_nj_per_byte / self.accelerator_nj_per_byte


@dataclass(frozen=True)
class AreaComparison:
    """Area efficiency: throughput per mm^2."""

    accelerator_gbps_per_mm2: float
    cores_gbps_per_mm2: float
    area_fraction: float

    @property
    def efficiency_gain(self) -> float:
        if self.cores_gbps_per_mm2 == 0:
            return float("inf")
        return self.accelerator_gbps_per_mm2 / self.cores_gbps_per_mm2


@dataclass
class EnergyModel:
    """Energy/area accounting for one machine."""

    machine: MachineParams
    op: str = "compress"

    def accelerator_energy_nj_per_byte(self) -> float:
        rate = accelerator_effective_gbps(self.machine, self.op) * 1e9
        return self.machine.accelerator_power_w / rate * 1e9

    def software_energy_nj_per_byte(self, level: int = 6) -> float:
        cost = SoftwareCostModel(self.machine)
        seconds_per_byte = (cost.compress_seconds(1, level)
                            if self.op == "compress"
                            else cost.decompress_seconds(1))
        return self.machine.core_power_w * seconds_per_byte * 1e9

    def energy_comparison(self, level: int = 6) -> EnergyComparison:
        return EnergyComparison(
            accelerator_nj_per_byte=self.accelerator_energy_nj_per_byte(),
            software_nj_per_byte=self.software_energy_nj_per_byte(level),
        )

    def area_comparison(self, level: int = 6) -> AreaComparison:
        machine = self.machine
        accel_rate = accelerator_effective_gbps(machine, self.op)
        cost = SoftwareCostModel(machine)
        chip_sw_rate = (cost.chip_compress_rate_gbps(level)
                        if self.op == "compress"
                        else cost.chip_decompress_rate_gbps())
        # Charge the cores the whole chip area minus the accelerator: the
        # compression-software alternative occupies the core complex.
        core_area = machine.chip_area_mm2 - machine.accelerator_area_mm2
        return AreaComparison(
            accelerator_gbps_per_mm2=accel_rate
            / machine.accelerator_area_mm2,
            cores_gbps_per_mm2=chip_sw_rate / core_area,
            area_fraction=machine.area_fraction,
        )

    def cpu_cycles_freed_per_gb(self, level: int = 6) -> float:
        """Core cycles returned to the application per GB offloaded."""
        cost = SoftwareCostModel(self.machine)
        return cost.compress_cycles(10 ** 9, level)
