"""Calibrated software-codec cost model (the zlib baseline).

Pure-Python wall-clock time says nothing about a POWER9 core, so software
cost is modelled as cycles-per-byte, calibrated so the abstract's claims
are mutually consistent:

* zlib -6 compression ≈ 208 cycles/byte → ≈ 18 MB/s on a 3.8 GHz core,
  which puts one NX accelerator (≈ 7.1 GB/s effective) at ≈ 388x;
* the full 24-core SMT4 chip then sustains ≈ 0.55 GB/s → ≈ 13x slower
  than the accelerator;
* inflate ≈ 24 cycles/byte (≈ 160 MB/s/core), matching the common
  order-of-magnitude gap between deflate and inflate.

The per-level curve follows zlib's effort growth (chain lengths and lazy
evaluation), so level sweeps have the right shape, not just level 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nx.params import MachineParams

COMPRESS_CYCLES_PER_BYTE: dict[int, float] = {
    0: 1.5,   # stored: memcpy + checksum
    1: 55.0,
    2: 70.0,
    3: 90.0,
    4: 120.0,
    5: 160.0,
    6: 208.0,
    7: 260.0,
    8: 400.0,
    9: 620.0,
}

DECOMPRESS_CYCLES_PER_BYTE = 24.0

# Effective accelerator rates measured from the engine model on the
# reference corpus (tests re-derive these within tolerance).
EFFECTIVE_COMPRESS_GBPS: dict[str, float] = {"POWER9": 7.1, "z15": 13.8}
EFFECTIVE_DECOMPRESS_GBPS: dict[str, float] = {"POWER9": 14.0, "z15": 28.0}


@dataclass
class SoftwareCostModel:
    """Time/energy cost of running the codec on general-purpose cores."""

    machine: MachineParams
    compressibility_factor: float = 1.0  # >1 for match-heavy (slower) data

    def _core_hz(self) -> float:
        return self.machine.cores.clock_ghz * 1e9

    def compress_cycles(self, nbytes: int, level: int = 6) -> float:
        if level not in COMPRESS_CYCLES_PER_BYTE:
            raise ValueError(f"no calibration for level {level}")
        cpb = COMPRESS_CYCLES_PER_BYTE[level] * self.compressibility_factor
        return nbytes * cpb

    def compress_seconds(self, nbytes: int, level: int = 6) -> float:
        return self.compress_cycles(nbytes, level) / self._core_hz()

    def compress_rate_mbps(self, level: int = 6) -> float:
        """Single-thread software compression rate in MB/s."""
        seconds = self.compress_seconds(1_000_000, level)
        return 1.0 / seconds if seconds else 0.0

    def decompress_cycles(self, nbytes_out: int) -> float:
        return nbytes_out * DECOMPRESS_CYCLES_PER_BYTE

    def decompress_seconds(self, nbytes_out: int) -> float:
        return self.decompress_cycles(nbytes_out) / self._core_hz()

    def decompress_rate_mbps(self) -> float:
        return 1.0 / self.decompress_seconds(1_000_000)

    # -- aggregate (whole chip) -----------------------------------------

    def chip_threads_speedup(self) -> float:
        """Aggregate scaling from using every core and SMT thread."""
        cores = self.machine.cores
        return cores.cores * cores.smt_scaling

    def chip_compress_rate_gbps(self, level: int = 6) -> float:
        """All cores of the chip compressing independent streams."""
        return (self.compress_rate_mbps(level)
                * self.chip_threads_speedup()) / 1000.0

    def chip_decompress_rate_gbps(self) -> float:
        return (self.decompress_rate_mbps()
                * self.chip_threads_speedup()) / 1000.0


def accelerator_effective_gbps(machine: MachineParams,
                               op: str = "compress") -> float:
    """Calibrated sustained accelerator rate for timing/queueing models."""
    table = (EFFECTIVE_COMPRESS_GBPS if op == "compress"
             else EFFECTIVE_DECOMPRESS_GBPS)
    if machine.name not in table:
        raise ValueError(f"no calibration for machine {machine.name!r}")
    return table[machine.name]


def measure_effective_gbps(machine: MachineParams,
                           sample: bytes) -> float:
    """Re-derive the effective rate from the engine model on ``sample``.

    Used by tests to keep :data:`EFFECTIVE_COMPRESS_GBPS` honest.
    """
    from ..nx.compressor import NxCompressor
    from ..nx.dht import DhtStrategy

    compressor = NxCompressor(machine.engine)
    result = compressor.compress(sample, strategy=DhtStrategy.DYNAMIC)
    return result.throughput_gbps
