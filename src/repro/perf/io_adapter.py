"""PCIe-attached compression adapter baseline (the design the paper beats).

Before on-chip integration, the alternative was an FPGA/ASIC adapter in a
PCIe slot: same class of engine, but every job pays driver + doorbell +
interrupt overheads and two PCIe traversals, and the card consumes a slot
and watts.  The on-chip accelerator's win at small and medium buffer
sizes comes almost entirely from this overhead gap, which is the
comparison E12 regenerates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nx.params import MachineParams
from .timing import LatencyBreakdown, OffloadTimingModel


@dataclass(frozen=True)
class PcieAdapterParams:
    """An I/O-attached accelerator card."""

    name: str = "pcie-fpga-adapter"
    engine_rate_gbps: float = 8.0     # engine itself is competitive
    pcie_gbps: float = 12.0           # PCIe Gen4 x8 effective
    driver_overhead_us: float = 18.0  # syscall + ring doorbell
    interrupt_overhead_us: float = 12.0
    dma_setup_us: float = 4.0
    slot_power_w: float = 25.0
    card_cost_usd: float = 2500.0


@dataclass
class PcieAdapterModel:
    """Latency model of the adapter path, comparable to OffloadTimingModel."""

    params: PcieAdapterParams = PcieAdapterParams()

    def offload_latency(self, nbytes: int, ratio: float = 2.5,
                        queue_wait: float = 0.0) -> LatencyBreakdown:
        """One compression job: host -> card -> host.

        Input crosses PCIe at full size; output returns at
        ``nbytes / ratio``.  Engine compute overlaps neither transfer
        (store-and-forward DMA), which is the common adapter design.
        """
        p = self.params
        transfer_in = nbytes / (p.pcie_gbps * 1e9)
        transfer_out = (nbytes / ratio) / (p.pcie_gbps * 1e9)
        compute = nbytes / (p.engine_rate_gbps * 1e9)
        return LatencyBreakdown(
            submit=(p.driver_overhead_us + p.dma_setup_us) * 1e-6,
            dispatch=transfer_in,
            queue_wait=queue_wait,
            service=compute + transfer_out,
            completion=p.interrupt_overhead_us * 1e-6,
        )

    def effective_throughput_gbps(self, nbytes: int) -> float:
        latency = self.offload_latency(nbytes).total
        return (nbytes / 1e9) / latency if latency else 0.0


def compare_onchip_vs_adapter(machine: MachineParams, sizes: list[int],
                              adapter: PcieAdapterModel | None = None
                              ) -> list[tuple[int, float, float]]:
    """(size, on-chip GB/s, adapter GB/s) series across buffer sizes."""
    adapter = adapter or PcieAdapterModel()
    onchip = OffloadTimingModel(machine)
    return [
        (size,
         onchip.effective_throughput_gbps(size),
         adapter.effective_throughput_gbps(size))
        for size in sizes
    ]
