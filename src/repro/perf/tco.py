"""Total-cost-of-ownership model: what on-chip compression is worth.

The abstract's economic claims: compression saves storage/memory/IO
cost, the on-chip engine adds "practically zero hardware cost", and it
"eliminates the cost and I/O slots that would have been necessary with
FPGA/ASIC based compression adapters".  This module turns those claims
into a small, explicit fleet-level model:

* storage saved = data volume x (1 - 1/ratio) x $/TB-month;
* core-hours returned = software codec core-seconds the engine absorbs;
* adapter cost avoided = cards + slots + watts the PCIe alternative
  would need for the same offered load.

Every input has a visible default and can be overridden, so the output
is an auditable estimate, not an oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nx.params import MachineParams
from .cost import SoftwareCostModel, accelerator_effective_gbps
from .io_adapter import PcieAdapterParams


@dataclass(frozen=True)
class FleetAssumptions:
    """Fleet-level workload and price inputs."""

    compressed_tb_per_day: float = 100.0   # data volume through the codec
    compression_ratio: float = 3.0
    storage_usd_per_tb_month: float = 20.0
    core_hour_usd: float = 0.04            # amortized server core-hour
    power_usd_per_kwh: float = 0.12
    adapter: PcieAdapterParams = PcieAdapterParams()


@dataclass(frozen=True)
class TcoReport:
    """Monthly savings attributable to the on-chip accelerator."""

    storage_usd_per_month: float
    core_hours_per_month: float
    core_usd_per_month: float
    adapters_avoided: int
    adapter_capex_usd: float
    adapter_power_usd_per_month: float

    @property
    def recurring_usd_per_month(self) -> float:
        return (self.storage_usd_per_month + self.core_usd_per_month
                + self.adapter_power_usd_per_month)


@dataclass
class TcoModel:
    """Composes the savings for one machine + fleet assumption set."""

    machine: MachineParams
    assumptions: FleetAssumptions = FleetAssumptions()
    level: int = 6

    def storage_savings_usd_per_month(self) -> float:
        a = self.assumptions
        stored_tb = a.compressed_tb_per_day * 30.0
        saved_tb = stored_tb * (1.0 - 1.0 / a.compression_ratio)
        return saved_tb * a.storage_usd_per_tb_month

    def core_hours_returned_per_month(self) -> float:
        """Core time the software codec would have burned."""
        a = self.assumptions
        cost = SoftwareCostModel(self.machine)
        seconds_per_byte = cost.compress_seconds(1, self.level)
        bytes_per_month = a.compressed_tb_per_day * 1e12 * 30.0
        return bytes_per_month * seconds_per_byte / 3600.0

    def adapters_avoided(self) -> int:
        """PCIe cards needed to carry the same offered load."""
        a = self.assumptions
        offered_gbps = a.compressed_tb_per_day * 1e12 / 86400.0 / 1e9
        per_card = min(a.adapter.engine_rate_gbps,
                       a.adapter.pcie_gbps / 1.4)  # in + compressed out
        return max(1, -(-int(offered_gbps * 100) // int(per_card * 100)))

    def report(self) -> TcoReport:
        a = self.assumptions
        cards = self.adapters_avoided()
        core_hours = self.core_hours_returned_per_month()
        return TcoReport(
            storage_usd_per_month=self.storage_savings_usd_per_month(),
            core_hours_per_month=core_hours,
            core_usd_per_month=core_hours * a.core_hour_usd,
            adapters_avoided=cards,
            adapter_capex_usd=cards * a.adapter.card_cost_usd,
            adapter_power_usd_per_month=(
                cards * a.adapter.slot_power_w / 1000.0 * 24 * 30
                * a.power_usd_per_kwh),
        )

    def accelerators_needed(self) -> int:
        """On-chip engines required for the same load (for context)."""
        offered_gbps = (self.assumptions.compressed_tb_per_day * 1e12
                        / 86400.0 / 1e9)
        rate = accelerator_effective_gbps(self.machine)
        return max(1, -(-int(offered_gbps * 100) // int(rate * 100)))
