"""Completion notification: polling vs interrupts vs the wait facility.

The asynchronous interface leaves a policy question: how does the
submitting thread learn that the CSB went valid?

* **poll** — spin on the CSB cache line: detection within one poll
  iteration (~0.2 µs), but the core burns cycles for the whole service
  time — cycles the offload was supposed to give back.
* **interrupt** — sleep and take a completion interrupt: no burned
  cycles, but interrupt delivery + scheduler wakeup adds microseconds
  to the observed latency.
* **wait** — the POWER 'wait' (or z 'SIGP-less' pause) facility parks
  the thread on the cache line: near-poll detection latency, near-zero
  burn, but the hardware thread is held (SMT siblings keep the core
  productive).

The interesting output is the crossover: small jobs want poll, large
jobs want interrupt, and wait dominates when SMT can absorb the held
thread — the trade the production library's 'poll budget' knob tunes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..nx.params import MachineParams
from .timing import OffloadTimingModel

POLL_DETECT_SECONDS = 0.2e-6
INTERRUPT_DELIVERY_SECONDS = 4.0e-6
SCHEDULER_WAKEUP_SECONDS = 2.0e-6
WAIT_WAKEUP_SECONDS = 0.5e-6
WAIT_THREAD_HOLD_FACTOR = 0.25  # SMT sibling recovers most of the thread


class CompletionMode(enum.Enum):
    POLL = "poll"
    INTERRUPT = "interrupt"
    WAIT = "wait"


@dataclass(frozen=True)
class CompletionCost:
    """What one offloaded request costs under a notification mode."""

    mode: CompletionMode
    latency_seconds: float      # submit -> caller resumes with the result
    cpu_burn_seconds: float     # core time unavailable to other work

    def weighted_cost(self, cpu_weight: float = 1.0) -> float:
        """Scalar objective: latency + weighted CPU burn."""
        return self.latency_seconds + cpu_weight * self.cpu_burn_seconds


@dataclass
class CompletionModel:
    """Evaluates the three notification modes for one machine."""

    machine: MachineParams
    op: str = "compress"

    def __post_init__(self) -> None:
        self._timing = OffloadTimingModel(self.machine, op=self.op)

    def costs(self, nbytes: int) -> dict[CompletionMode, CompletionCost]:
        base = self._timing.offload_latency(nbytes)
        service_window = base.dispatch + base.service
        submit = base.submit

        poll = CompletionCost(
            mode=CompletionMode.POLL,
            latency_seconds=submit + service_window + POLL_DETECT_SECONDS,
            cpu_burn_seconds=submit + service_window
            + POLL_DETECT_SECONDS,
        )
        interrupt = CompletionCost(
            mode=CompletionMode.INTERRUPT,
            latency_seconds=submit + service_window
            + INTERRUPT_DELIVERY_SECONDS + SCHEDULER_WAKEUP_SECONDS,
            cpu_burn_seconds=submit + INTERRUPT_DELIVERY_SECONDS
            + SCHEDULER_WAKEUP_SECONDS,
        )
        wait = CompletionCost(
            mode=CompletionMode.WAIT,
            latency_seconds=submit + service_window + WAIT_WAKEUP_SECONDS,
            cpu_burn_seconds=submit + WAIT_WAKEUP_SECONDS
            + WAIT_THREAD_HOLD_FACTOR * service_window,
        )
        return {c.mode: c for c in (poll, interrupt, wait)}

    def best_mode(self, nbytes: int,
                  cpu_weight: float = 1.0) -> CompletionMode:
        """Mode minimizing latency + weighted CPU burn."""
        costs = self.costs(nbytes)
        return min(costs.values(),
                   key=lambda c: c.weighted_cost(cpu_weight)).mode

    def crossover_bytes(self, cpu_weight: float = 1.0,
                        from_mode: CompletionMode = CompletionMode.WAIT,
                        lo: int = 256, hi: int = 64 << 20) -> int:
        """Smallest size at which ``from_mode`` stops being best."""
        size = lo
        while size < hi:
            if self.best_mode(size, cpu_weight) is not from_mode:
                return size
            size *= 2
        return hi
