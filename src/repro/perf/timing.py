"""End-to-end offload timing and break-even analysis.

Composes the invocation path the paper describes: CRB build + paste
(submit), switchboard routing (dispatch), engine occupancy (compute
overlapped with DMA), and completion notification.  The same model with
synchronous parameters covers the z15 DFLTCC instruction, whose overhead
is a fraction of a microsecond instead of several.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nx.params import MachineParams
from .cost import SoftwareCostModel, accelerator_effective_gbps


@dataclass(frozen=True)
class LatencyBreakdown:
    """Components of one offloaded request's latency (seconds)."""

    submit: float
    dispatch: float
    queue_wait: float
    service: float
    completion: float

    @property
    def total(self) -> float:
        return (self.submit + self.dispatch + self.queue_wait
                + self.service + self.completion)

    @property
    def overhead(self) -> float:
        """Everything that is not productive engine service time."""
        return self.total - self.service


@dataclass
class OffloadTimingModel:
    """Latency/throughput of accelerator offload for one machine."""

    machine: MachineParams
    op: str = "compress"

    def __post_init__(self) -> None:
        self.rate_gbps = accelerator_effective_gbps(self.machine, self.op)
        self._cost = SoftwareCostModel(self.machine)

    def fixed_overhead_seconds(self) -> float:
        machine = self.machine
        return (machine.submit_overhead_us + machine.dispatch_overhead_us
                + machine.completion_overhead_us) * 1e-6

    def service_seconds(self, nbytes: int) -> float:
        compute = nbytes / (self.rate_gbps * 1e9)
        dma = nbytes / (self.machine.dma_read_gbps * 1e9)
        return max(compute, dma)

    def offload_latency(self, nbytes: int,
                        queue_wait: float = 0.0) -> LatencyBreakdown:
        machine = self.machine
        return LatencyBreakdown(
            submit=machine.submit_overhead_us * 1e-6,
            dispatch=machine.dispatch_overhead_us * 1e-6,
            queue_wait=queue_wait,
            service=self.service_seconds(nbytes),
            completion=machine.completion_overhead_us * 1e-6,
        )

    def software_latency(self, nbytes: int, level: int = 6) -> float:
        if self.op == "compress":
            return self._cost.compress_seconds(nbytes, level)
        return self._cost.decompress_seconds(nbytes)

    def effective_throughput_gbps(self, nbytes: int) -> float:
        """Including invocation overheads: the 'ramp' the paper shows."""
        latency = self.offload_latency(nbytes).total
        return (nbytes / 1e9) / latency if latency else 0.0

    def speedup(self, nbytes: int, level: int = 6) -> float:
        """Offload speedup over one software thread at ``level``."""
        return (self.software_latency(nbytes, level)
                / self.offload_latency(nbytes).total)

    def break_even_bytes(self, level: int = 6) -> float:
        """Buffer size where offload latency equals software latency.

        Solves ``overhead + n/hw = n/sw``; returns ``inf`` if software
        is never slower (it always is for real levels).
        """
        sw_rate = (self._cost.compress_rate_mbps(level) * 1e6
                   if self.op == "compress"
                   else self._cost.decompress_rate_mbps() * 1e6)
        hw_rate = self.rate_gbps * 1e9
        if hw_rate <= sw_rate:
            return float("inf")
        gap = 1.0 / sw_rate - 1.0 / hw_rate
        return self.fixed_overhead_seconds() / gap

    def ramp(self, sizes: list[int]) -> list[tuple[int, float]]:
        """(size, effective GB/s) series for the throughput-ramp figure."""
        return [(size, self.effective_throughput_gbps(size))
                for size in sizes]
