"""Content-addressed compressed-result cache with singleflight.

A million-user service sees heavy key skew: the same hot objects are
compressed over and over.  This cache addresses results by content —
``sha256(op | fmt | strategy | dict-epoch | payload)`` — so identical
requests are served from memory at hash cost instead of accelerator
cost, regardless of which client sent them.

Three guarantees, each carried by an exact counter:

* **singleflight** — N concurrent misses on one key run exactly one
  compression (``executions == unique keys``); followers park on the
  leader's event (the :mod:`repro.service.idempotency` claim pattern);
* **partition** — every request is exactly a hit or a miss
  (``hits + misses == requests``); waits are counted separately and
  resolve into one of the two;
* **bounds** — a global LRU capped by entries *and* bytes, plus
  per-tenant quotas so one chatty tenant cannot wash out the others.
  A blob larger than any applicable byte bound is simply not cached
  (``uncacheable``) rather than evicting the world.

Failure policy: a leader that fails aborts its claim; parked followers
wake, observe no cached value, and re-claim — so a failed execution
never poisons a key (at-most-one *successful* execution per key).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

from ..obs.flight import FLIGHT as _FLIGHT
from ..obs.metrics import REGISTRY as _REGISTRY

#: Default bounds: a useful working set, bounded for a fleet.
DEFAULT_MAX_ENTRIES = 4096
DEFAULT_MAX_BYTES = 64 << 20
DEFAULT_MAX_TENANTS = 64


def result_key(payload: bytes, *, op: str = "compress", fmt: str = "raw",
               strategy: str = "auto", epoch: int = 0) -> str:
    """Content address of one codec result.

    Every parameter that changes the output bytes must be part of the
    key; ``epoch`` is the dictionary-service epoch, so pushing newly
    trained tables invalidates cached results without any flush.
    """
    h = hashlib.sha256()
    h.update(f"{op}|{fmt}|{strategy}|{epoch}|".encode("ascii"))
    h.update(payload)
    return h.hexdigest()


class _Claim:
    """One in-flight execution of a keyed compression."""

    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event = threading.Event()


class ResultCache:
    """Bounded content-addressed LRU + singleflight claim table."""

    def __init__(self, *, max_entries: int = DEFAULT_MAX_ENTRIES,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 tenant_max_entries: int | None = None,
                 tenant_max_bytes: int | None = None,
                 max_tenants: int = DEFAULT_MAX_TENANTS) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.tenant_max_entries = tenant_max_entries or max_entries
        self.tenant_max_bytes = tenant_max_bytes or max_bytes
        self.max_tenants = max_tenants
        self._lock = threading.Lock()
        # tenant -> OrderedDict[key -> blob]; tenant order is LRU too.
        self._tenants: OrderedDict[str, OrderedDict[str, bytes]] = \
            OrderedDict()
        self._tenant_bytes: dict[str, int] = {}
        # global LRU order across tenants: (tenant, key) -> len(blob)
        self._order: OrderedDict[tuple[str, str], int] = OrderedDict()
        self._bytes = 0
        self._inflight: dict[tuple[str, str], _Claim] = {}
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.executions = 0
        self.waits = 0
        self.evictions = 0
        self.uncacheable = 0
        self.aborts = 0

    # -- the dispatch-facing protocol -----------------------------------------

    def begin(self, tenant: str, key: str):
        """Start (or join) one keyed compression.

        Returns one of::

            ("hit", blob)       # cached result; do not execute
            ("leader", claim)   # execute, then commit() or abort()
            ("wait", claim)     # a leader is executing; wait on
                                # claim.event, then call begin() again

        Exactly one of ``hits``/``misses`` is counted per request at
        its *resolution* (a wait resolves on the retry), keeping
        ``hits + misses == requests`` exact.
        """
        ckey = (tenant, key)
        with self._lock:
            entries = self._tenants.get(tenant)
            if entries is not None and key in entries:
                entries.move_to_end(key)
                self._tenants.move_to_end(tenant)
                self._order.move_to_end(ckey)
                self.requests += 1
                self.hits += 1
                self._count("hit")
                return "hit", entries[key]
            claim = self._inflight.get(ckey)
            if claim is not None:
                self.waits += 1
                self._count("wait")
                return "wait", claim
            claim = self._inflight[ckey] = _Claim()
            self.requests += 1
            self.misses += 1
            self.executions += 1
            self._count("miss")
            return "leader", claim

    def commit(self, tenant: str, key: str, blob: bytes) -> bool:
        """Store the leader's result and wake parked followers.

        Returns False when the blob exceeded a byte bound and was not
        cached (followers still wake and will re-execute on retry — the
        cache never blocks progress, it only dedupes it).
        """
        ckey = (tenant, key)
        with self._lock:
            cacheable = (len(blob) <= self.max_bytes
                         and len(blob) <= self.tenant_max_bytes)
            if cacheable:
                entries = self._tenants.get(tenant)
                if entries is None:
                    if len(self._tenants) >= self.max_tenants:
                        self._evict_tenant_locked()
                    entries = self._tenants[tenant] = OrderedDict()
                    self._tenant_bytes[tenant] = 0
                if key not in entries:
                    entries[key] = blob
                    self._tenant_bytes[tenant] += len(blob)
                    self._order[ckey] = len(blob)
                    self._bytes += len(blob)
                    self._tenants.move_to_end(tenant)
                    self._evict_locked(tenant)
            else:
                self.uncacheable += 1
                _FLIGHT.record("cache.uncacheable", tenant=tenant,
                               nbytes=len(blob))
            self._release_locked(ckey)
            return cacheable

    def abort(self, tenant: str, key: str) -> None:
        """The leader failed: free the key so a follower can re-claim."""
        with self._lock:
            self.aborts += 1
            self._release_locked((tenant, key))

    def resolve_follower(self) -> None:
        """Count one parked follower served with the leader's result.

        The service's non-blocking integration fulfils followers
        directly from the leader's fulfilment instead of retrying
        ``begin`` — for accounting that *is* a hit, keeping
        ``hits + misses == requests`` exact in that topology too.
        """
        with self._lock:
            self.requests += 1
            self.hits += 1
            self._count("hit")

    def get_or_compute(self, tenant: str, key: str, compute):
        """Blocking convenience: resolve one request to result bytes.

        ``compute()`` runs at most once across all concurrent callers
        of the same key while it succeeds; if it raises, the exception
        propagates to the leader and followers re-claim.
        """
        while True:
            state, value = self.begin(tenant, key)
            if state == "hit":
                return value
            if state == "wait":
                value.event.wait()
                continue
            try:
                blob = compute()
            except BaseException:
                self.abort(tenant, key)
                raise
            self.commit(tenant, key, blob)
            return blob

    # -- internals ------------------------------------------------------------

    def _release_locked(self, ckey: tuple[str, str]) -> None:
        claim = self._inflight.pop(ckey, None)
        if claim is not None:
            claim.event.set()

    def _drop_locked(self, tenant: str, key: str) -> None:
        entries = self._tenants[tenant]
        blob = entries.pop(key)
        self._tenant_bytes[tenant] -= len(blob)
        self._order.pop((tenant, key))
        self._bytes -= len(blob)
        self.evictions += 1
        self._count_evict()
        if not entries:
            del self._tenants[tenant]
            del self._tenant_bytes[tenant]

    def _evict_tenant_locked(self) -> None:
        """Make room for a new tenant: drop the LRU tenant entirely."""
        tenant = next(iter(self._tenants))
        for key in list(self._tenants[tenant]):
            self._drop_locked(tenant, key)

    def _evict_locked(self, tenant: str) -> None:
        # Per-tenant quota first (oldest of that tenant)...
        entries = self._tenants.get(tenant)
        while entries and (len(entries) > self.tenant_max_entries
                           or self._tenant_bytes[tenant]
                           > self.tenant_max_bytes):
            self._drop_locked(tenant, next(iter(entries)))
            entries = self._tenants.get(tenant)
        # ...then the global bound (oldest across all tenants).
        while self._order and (len(self._order) > self.max_entries
                               or self._bytes > self.max_bytes):
            t, k = next(iter(self._order))
            self._drop_locked(t, k)

    def _count(self, outcome: str) -> None:
        if _REGISTRY.enabled:
            _REGISTRY.counter(
                "repro_cache_requests_total",
                "result-cache lookups by outcome").inc(outcome=outcome)

    def _count_evict(self) -> None:
        if _REGISTRY.enabled:
            _REGISTRY.counter(
                "repro_cache_evictions_total",
                "result-cache entries evicted by LRU bounds").inc()

    # -- introspection --------------------------------------------------------

    def entries(self) -> int:
        with self._lock:
            return len(self._order)

    def cached_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> dict:
        with self._lock:
            if _REGISTRY.enabled:
                _REGISTRY.gauge(
                    "repro_cache_entries",
                    "live result-cache entries").set(len(self._order))
                _REGISTRY.gauge(
                    "repro_cache_bytes",
                    "live result-cache payload bytes").set(self._bytes)
            return {
                "requests": self.requests,
                "hits": self.hits,
                "misses": self.misses,
                "executions": self.executions,
                "waits": self.waits,
                "evictions": self.evictions,
                "uncacheable": self.uncacheable,
                "aborts": self.aborts,
                "entries": len(self._order),
                "bytes": self._bytes,
                "tenants": len(self._tenants),
            }

    def snapshot_keys(self) -> list[tuple[str, str]]:
        """Global LRU order, oldest first (for the property suite)."""
        with self._lock:
            return list(self._order)
