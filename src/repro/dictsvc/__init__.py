"""The dictionary service: tenant-trained canned DHTs + result cache.

The paper's accelerator ships canned (precomputed) Huffman tables
because two-pass DHT generation dominates the latency of small-buffer
requests — exactly the regime where a cloud service lives.  This
package productizes that engine feature across tenants:

* :class:`DictionaryRegistry` samples per-tenant traffic, clusters it
  by byte-histogram/match-density signature, and trains one canned DHT
  plus one 32 KB LZ77 priming dictionary per cluster, versioned and
  pushed to backends through ``BackendCapabilities.canned_dicts``.
* :class:`ResultCache` is a content-addressed compressed-result cache
  (sha256 of payload + codec parameters), bounded by entries and bytes
  with per-tenant quotas, with singleflight so N concurrent misses on
  one key run exactly one compression.
"""

from .cache import ResultCache, result_key
from .registry import DictionaryRegistry, TrainedDictionary

__all__ = [
    "DictionaryRegistry",
    "TrainedDictionary",
    "ResultCache",
    "result_key",
]
