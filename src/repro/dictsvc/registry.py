"""Per-tenant dictionary training: sample → cluster → canned DHT + zdict.

The registry ingests traffic samples per tenant (or workload family),
clusters them on the 20-dimension :func:`repro.nx.dht.sample_signature`
(byte histogram + match-density probe), and trains two artifacts per
cluster:

* a **canned DHT** — length-limited canonical code lengths built from
  the cluster's pooled LZ token statistics, covering every symbol so
  any input stays encodable;
* a **32 KB LZ77 priming dictionary** — representative sample content,
  most valuable bytes last (zlib ``zdict`` semantics: the tail of the
  dictionary is the closest history).

Training is fully deterministic under a fixed seed: reservoir sampling,
cluster assignment, and priming-content scoring all derive from the
registry seed, so two runs over the same traffic produce byte-identical
dictionaries — the property the golden-parity suite pins.

Versioning: every :meth:`DictionaryRegistry.train` call for a tenant
bumps that tenant's epoch, and dictionary names embed it
(``tenant.c0.v2``).  Pushing a new epoch replaces the engine tables
under fresh names and retires the previous epoch's, so a stale name can
never silently serve a new table — and cache keys that include the
dictionary epoch invalidate naturally.
"""

from __future__ import annotations

import base64
import json
import random
from dataclasses import dataclass, field

from ..deflate.compress import token_frequencies
from ..deflate.constants import (
    MAX_CODE_LENGTH,
    NUM_DIST_SYMBOLS,
    NUM_LITLEN_SYMBOLS,
    WINDOW_SIZE,
)
from ..deflate.huffman import limited_code_lengths
from ..errors import ConfigError
from ..nx.dht import (
    register_trained_dht,
    sample_signature,
    signature_distance,
    unregister_trained_dht,
)
from ..obs.flight import FLIGHT as _FLIGHT
from ..obs.metrics import REGISTRY as _REGISTRY

#: Default per-tenant reservoir size; large enough for stable cluster
#: statistics, small enough that train() stays sub-second.
DEFAULT_MAX_SAMPLES = 128

#: Bytes of each sample the signature/training pipeline looks at.
DEFAULT_SAMPLE_BYTES = 4096

#: Greedy leader clustering: a sample starts a new cluster when its
#: signature is farther than this (squared distance) from every leader.
CLUSTER_RADIUS = 0.02


@dataclass(frozen=True)
class TrainedDictionary:
    """One versioned, shippable dictionary for one traffic cluster."""

    name: str                         # "<tenant>.c<idx>.v<epoch>"
    tenant: str
    cluster: int
    epoch: int
    centroid: tuple[float, ...]
    litlen_lengths: tuple[int, ...]
    dist_lengths: tuple[int, ...]
    priming: bytes                    # ≤ 32 KB zdict
    samples: int                      # reservoir samples in the cluster

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "tenant": self.tenant,
            "cluster": self.cluster,
            "epoch": self.epoch,
            "centroid": list(self.centroid),
            "litlen_lengths": list(self.litlen_lengths),
            "dist_lengths": list(self.dist_lengths),
            "priming_b64": base64.b64encode(self.priming).decode("ascii"),
            "samples": self.samples,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "TrainedDictionary":
        return cls(
            name=obj["name"],
            tenant=obj["tenant"],
            cluster=int(obj["cluster"]),
            epoch=int(obj["epoch"]),
            centroid=tuple(float(x) for x in obj["centroid"]),
            litlen_lengths=tuple(int(x) for x in obj["litlen_lengths"]),
            dist_lengths=tuple(int(x) for x in obj["dist_lengths"]),
            priming=base64.b64decode(obj["priming_b64"]),
            samples=int(obj["samples"]),
        )


@dataclass
class _Reservoir:
    """Seeded reservoir of one tenant's observed samples."""

    rng: random.Random
    capacity: int
    seen: int = 0
    samples: list[bytes] = field(default_factory=list)

    def offer(self, sample: bytes) -> None:
        self.seen += 1
        if len(self.samples) < self.capacity:
            self.samples.append(sample)
            return
        slot = self.rng.randrange(self.seen)
        if slot < self.capacity:
            self.samples[slot] = sample


class DictionaryRegistry:
    """Samples traffic, trains clustered dictionaries, ships them."""

    def __init__(self, *, max_samples: int = DEFAULT_MAX_SAMPLES,
                 sample_bytes: int = DEFAULT_SAMPLE_BYTES,
                 max_clusters: int = 4,
                 cluster_radius: float = CLUSTER_RADIUS,
                 priming_bytes: int = WINDOW_SIZE,
                 seed: int = 0,
                 engine: "EngineParams | None" = None) -> None:
        if priming_bytes > WINDOW_SIZE:
            raise ConfigError(
                f"priming dictionary cannot exceed the {WINDOW_SIZE}-byte "
                "DEFLATE window")
        self.max_samples = max_samples
        self.sample_bytes = sample_bytes
        self.max_clusters = max_clusters
        self.cluster_radius = cluster_radius
        self.priming_bytes = priming_bytes
        self.seed = seed
        # Tokenize training samples with the engine's own match
        # pipeline (GDHT-on-sample runs on the accelerator), so the
        # trained tables see the same length/distance code mix the
        # engine will emit at compress time.
        if engine is None:
            from ..nx.params import POWER9
            engine = POWER9.engine
        from ..nx.pipeline import NxMatchPipeline
        self._pipeline = NxMatchPipeline(engine)
        self._reservoirs: dict[str, _Reservoir] = {}
        self._epochs: dict[str, int] = {}
        self._trained: dict[str, list[TrainedDictionary]] = {}
        self._pushed: set[str] = set()

    # -- ingest ---------------------------------------------------------------

    def observe(self, tenant: str, payload: bytes) -> None:
        """Feed one request payload into the tenant's sample reservoir."""
        if not payload:
            return
        res = self._reservoirs.get(tenant)
        if res is None:
            # Tenant-keyed seed: observation order across tenants does
            # not perturb any one tenant's reservoir.
            rng = random.Random(f"{self.seed}:{tenant}")
            res = self._reservoirs[tenant] = _Reservoir(
                rng=rng, capacity=self.max_samples)
        res.offer(bytes(payload[:self.sample_bytes]))
        if _REGISTRY.enabled:
            _REGISTRY.counter(
                "repro_dictsvc_samples_total",
                "payload samples offered to dictionary reservoirs").inc(
                    tenant=tenant)

    # -- train ----------------------------------------------------------------

    def train(self, tenant: str) -> list[TrainedDictionary]:
        """Cluster the tenant's reservoir and train one dict per cluster."""
        res = self._reservoirs.get(tenant)
        if res is None or not res.samples:
            raise ConfigError(f"no samples observed for tenant {tenant!r}")
        epoch = self._epochs.get(tenant, 0) + 1
        self._epochs[tenant] = epoch

        clusters = self._cluster(res.samples)
        trained: list[TrainedDictionary] = []
        for idx, members in enumerate(clusters):
            centroid = _mean_signature([sample_signature(m) for m in members])
            lit, dist = self._train_dht(members)
            priming = self._build_priming(members)
            trained.append(TrainedDictionary(
                name=f"{tenant}.c{idx}.v{epoch}",
                tenant=tenant, cluster=idx, epoch=epoch,
                centroid=centroid,
                litlen_lengths=lit, dist_lengths=dist,
                priming=priming, samples=len(members)))
        self._trained[tenant] = trained
        if _REGISTRY.enabled:
            _REGISTRY.counter(
                "repro_dictsvc_train_runs_total",
                "dictionary training runs").inc(tenant=tenant)
            _REGISTRY.gauge(
                "repro_dictsvc_clusters",
                "clusters trained in the latest epoch").set(
                    len(trained), tenant=tenant)
        _FLIGHT.record("dictsvc.train", tenant=tenant, epoch=epoch,
                       clusters=len(trained), samples=len(res.samples))
        return trained

    def _cluster(self, samples: list[bytes]) -> list[list[bytes]]:
        """Greedy leader clustering on signatures (deterministic order)."""
        leaders: list[tuple[float, ...]] = []
        clusters: list[list[bytes]] = []
        for sample in samples:
            sig = sample_signature(sample)
            best, best_dist = -1, float("inf")
            for i, leader in enumerate(leaders):
                d = signature_distance(sig, leader)
                if d < best_dist:
                    best, best_dist = i, d
            if best >= 0 and (best_dist <= self.cluster_radius
                              or len(leaders) >= self.max_clusters):
                clusters[best].append(sample)
            else:
                leaders.append(sig)
                clusters.append([sample])
        return clusters

    def _train_dht(self, members: list[bytes]) -> tuple[tuple[int, ...],
                                                        tuple[int, ...]]:
        """Pooled LZ statistics → length-limited canonical code lengths."""
        lit_freq = [0] * NUM_LITLEN_SYMBOLS
        dist_freq = [0] * NUM_DIST_SYMBOLS
        for member in members:
            tokens = self._pipeline.scan(member).tokens
            lit, dist = token_frequencies(tokens)
            for i, f in enumerate(lit):
                lit_freq[i] += f
            for i, f in enumerate(dist):
                dist_freq[i] += f
        # Floor the literals + EOB: those must stay encodable for the
        # engine's literal fallback.  Length/distance codes get a
        # contiguous floor up to the highest code the cluster used —
        # codes inside that span sit inside the HLIT/HDIST range
        # anyway, and flooring them keeps near-miss matches encodable
        # instead of demoted.  Codes beyond the span stay at zero so
        # the per-block table header trims them.
        for i in range(257):
            lit_freq[i] = max(1, lit_freq[i])
        max_len = max((i for i in range(257, 286) if lit_freq[i]),
                      default=256)
        for i in range(257, max_len + 1):
            lit_freq[i] = max(1, lit_freq[i])
        max_dist = max((i for i in range(NUM_DIST_SYMBOLS) if dist_freq[i]),
                       default=-1)
        for i in range(max_dist + 1):
            dist_freq[i] = max(1, dist_freq[i])
        lit_freq[286] = 0   # reserved symbols stay uncoded
        lit_freq[287] = 0
        lit = tuple(limited_code_lengths(lit_freq, MAX_CODE_LENGTH))
        dist = tuple(limited_code_lengths(dist_freq, MAX_CODE_LENGTH))
        return lit, dist

    def _build_priming(self, members: list[bytes]) -> bytes:
        """Concatenate the most representative samples, best last.

        zlib zdict semantics put the *end* of the dictionary nearest the
        data, so the highest-scoring sample goes last.  Scoring is
        cross-sample 8-byte shingle overlap — content many cluster
        members share primes the most matches.
        """
        shingle_counts: dict[bytes, int] = {}
        for member in members:
            for sh in _shingles(member):
                shingle_counts[sh] = shingle_counts.get(sh, 0) + 1
        scored = []
        for pos, member in enumerate(members):
            shs = _shingles(member)
            score = sum(shingle_counts[sh] for sh in shs) / max(1, len(shs))
            scored.append((score, pos, member))
        scored.sort()  # ascending: best content ends up last
        out = bytearray()
        for _score, _pos, member in scored:
            out += member
        return bytes(out[-self.priming_bytes:])

    # -- ship -----------------------------------------------------------------

    def push(self) -> list[str]:
        """Register every trained table with the engine's canned library.

        Retires any previously pushed names first, so exactly the
        current epoch's tables are live; backends expose the result via
        ``BackendCapabilities.canned_dicts``.
        """
        for name in self._pushed:
            unregister_trained_dht(name)
        self._pushed.clear()
        pushed: list[str] = []
        for dicts in self._trained.values():
            for d in dicts:
                register_trained_dht(d.name, d.litlen_lengths,
                                     d.dist_lengths, d.centroid,
                                     replace=True)
                self._pushed.add(d.name)
                pushed.append(d.name)
        if _REGISTRY.enabled:
            _REGISTRY.gauge(
                "repro_dictsvc_pushed_tables",
                "trained canned tables live in the engine").set(len(pushed))
        _FLIGHT.record("dictsvc.push", tables=len(pushed))
        return sorted(pushed)

    def retire(self) -> None:
        """Remove every table this registry pushed from the engine."""
        for name in self._pushed:
            unregister_trained_dht(name)
        self._pushed.clear()

    # -- introspection / persistence ------------------------------------------

    def trained(self, tenant: str | None = None) -> list[TrainedDictionary]:
        if tenant is not None:
            return list(self._trained.get(tenant, []))
        out: list[TrainedDictionary] = []
        for t in sorted(self._trained):
            out.extend(self._trained[t])
        return out

    def epoch(self, tenant: str) -> int:
        return self._epochs.get(tenant, 0)

    def save_bundle(self, path: str) -> None:
        """Serialize every trained dictionary to a JSON bundle."""
        bundle = {
            "version": 1,
            "seed": self.seed,
            "dictionaries": [d.to_json() for d in self.trained()],
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(bundle, fh, indent=1, sort_keys=True)
            fh.write("\n")

    def load_bundle(self, path: str) -> list[TrainedDictionary]:
        """Load a bundle, replacing this registry's trained state."""
        try:
            with open(path, encoding="utf-8") as fh:
                bundle = json.load(fh)
        except OSError as exc:
            raise ConfigError(f"cannot read bundle {path!r}: "
                              f"{exc.strerror or exc}") from exc
        except json.JSONDecodeError as exc:
            raise ConfigError(f"bundle {path!r} is not valid JSON: "
                              f"{exc}") from exc
        if not isinstance(bundle, dict) or bundle.get("version") != 1:
            raise ConfigError(f"unsupported bundle version in {path!r}")
        self._trained.clear()
        for obj in bundle["dictionaries"]:
            d = TrainedDictionary.from_json(obj)
            self._trained.setdefault(d.tenant, []).append(d)
            self._epochs[d.tenant] = max(self._epochs.get(d.tenant, 0),
                                         d.epoch)
        return self.trained()


def _shingles(member: bytes, width: int = 8, limit: int = 512) -> list[bytes]:
    """Up to ``limit`` evenly spaced ``width``-byte shingles of a sample."""
    n = len(member) - width + 1
    if n <= 0:
        return [member] if member else []
    step = max(1, n // limit)
    return [bytes(member[i:i + width]) for i in range(0, n, step)]


def _mean_signature(signatures: list[tuple[float, ...]]
                    ) -> tuple[float, ...]:
    dims = len(signatures[0])
    total = [0.0] * dims
    for sig in signatures:
        for i, x in enumerate(sig):
            total[i] += x
    return tuple(x / len(signatures) for x in total)
