"""Bounded retries, deterministic backoff, and per-job deadlines.

The seed repository retried forever in two places: the VAS paste loop
span until a credit freed (never, under an injected credit leak) and the
driver's ad-hoc ``max_retries`` counting.  :class:`RetryPolicy` replaces
both with one declarative budget — bounded attempts, exponential backoff
with *deterministic* jitter (the model must replay byte- and
cycle-exactly under a fixed seed), and an optional per-job deadline
expressed in modelled seconds.

Deadline semantics: a deadline bounds *waiting* — paste retries, fault
fixups, resubmissions — not useful work already done.  A job that
completes successfully is returned even if it finished over budget; a
job that is still retrying past its deadline raises
:class:`~repro.errors.DeadlineExceeded`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeadlineExceeded

#: Attempts the production library makes before giving up (libnxz takes
#: the same last-resort software path).  Mirrors the driver's historic
#: ``DEFAULT_MAX_RETRIES = 8`` (8 retries = 9 attempts).
DEFAULT_MAX_ATTEMPTS = 9

#: Paste (credit) retries before declaring the window wedged.  Healthy
#: backpressure clears in a handful of drains; only a leak gets here.
DEFAULT_MAX_PASTE_RETRIES = 4096


def _mix(*parts: int) -> int:
    """Cheap deterministic integer mix (splitmix64 finalizer)."""
    acc = 0x9E3779B97F4A7C15
    for part in parts:
        acc = (acc ^ (part & 0xFFFFFFFFFFFFFFFF)) * 0xBF58476D1CE4E5B9
        acc &= 0xFFFFFFFFFFFFFFFF
        acc ^= acc >> 27
    acc = (acc * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return acc ^ (acc >> 31)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, and how long to back off between tries.

    ``backoff_s`` grows exponentially per retry and carries a
    deterministic jitter derived from ``(seed, attempt, token)`` — two
    runs with the same seed replay the exact same modelled timeline,
    which the chaos regression suite relies on.
    """

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    max_paste_retries: int = DEFAULT_MAX_PASTE_RETRIES
    base_backoff_s: float = 0.5e-6
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 64e-6
    jitter_fraction: float = 0.25
    seed: int = 0

    @classmethod
    def from_max_retries(cls, max_retries: int, **overrides) -> "RetryPolicy":
        """Adapter for the driver's historic ``max_retries`` knob."""
        return cls(max_attempts=max_retries + 1, **overrides)

    def allows(self, attempt: int) -> bool:
        """May a 0-indexed ``attempt`` still run?"""
        return attempt < self.max_attempts

    def backoff_s(self, retry: int, token: int = 0) -> float:
        """Deterministically jittered backoff before retry ``retry``."""
        # Clamp the exponent: deep paste-retry counts would overflow the
        # float power long after the cap has taken over anyway.
        base = min(self.base_backoff_s
                   * self.backoff_multiplier ** min(retry, 64),
                   self.max_backoff_s)
        if not self.jitter_fraction:
            return base
        unit = _mix(self.seed, retry, token) / 2.0 ** 64  # [0, 1)
        return base * (1.0 + self.jitter_fraction * (2.0 * unit - 1.0))


def check_deadline(elapsed_s: float, deadline_s: float | None,
                   where: str) -> None:
    """Raise :class:`DeadlineExceeded` once modelled time passes budget."""
    if deadline_s is not None and elapsed_s > deadline_s:
        raise DeadlineExceeded(
            f"{where}: modelled {elapsed_s * 1e6:.1f} us exceeds "
            f"deadline {deadline_s * 1e6:.1f} us",
            elapsed_s=elapsed_s, deadline_s=deadline_s)
