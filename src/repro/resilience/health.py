"""Per-chip circuit breakers and health scores for the accelerator pool.

The breaker state machine is the classic three-state one, but its clock
is *routing decisions*, not wall time — the model must behave
identically under a fixed seed regardless of host speed:

::

    CLOSED --[failure_threshold consecutive failures]--> OPEN
    OPEN   --[cooldown_routes routing ticks]-----------> HALF_OPEN
    HALF_OPEN --[probe_successes KAT probes pass]------> CLOSED
    HALF_OPEN --[any probe or job failure]-------------> OPEN

While OPEN the chip is quarantined: :meth:`HealthTracker.available_chips`
excludes it, so the pool's ``route()`` can never pick a dead chip.
HALF_OPEN admits the chip again, but the pool runs a known-answer probe
(:func:`repro.nx.selftest.probe_backend`) before trusting it with user
jobs.  Every transition is published as a gauge + counter
(``repro_resilience_breaker_state`` / ``_transitions_total``) and a
``breaker.open`` span event, so a chaos campaign can assert the full
state history from exported metrics alone.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field

from ..obs.flight import FLIGHT as _FLIGHT
from ..obs.metrics import REGISTRY as _REGISTRY
from ..obs.trace import TRACE as _TRACE


class BreakerState(enum.IntEnum):
    """Breaker position; the int value is the exported gauge level."""

    CLOSED = 0
    HALF_OPEN = 1
    OPEN = 2


@dataclass(frozen=True)
class HealthConfig:
    """Tunables for one pool's breakers."""

    failure_threshold: int = 4     # consecutive failures to open
    cooldown_routes: int = 16      # routing ticks OPEN before HALF_OPEN
    probe_successes: int = 2       # passing probes to close again
    score_decay: float = 0.8       # EWMA weight on history


@dataclass
class CircuitBreaker:
    """One chip's breaker; transitions are driven by the pool."""

    chip: int
    config: HealthConfig = field(default_factory=HealthConfig)
    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    opened_at_tick: int = 0
    probe_passes: int = 0
    opens: int = 0
    #: EWMA success score in [0, 1]; 1.0 is perfectly healthy.
    score: float = 1.0
    transitions: list[tuple[str, int]] = field(default_factory=list)

    def record_success(self, tick: int) -> None:
        self.consecutive_failures = 0
        self.score = (self.config.score_decay * self.score
                      + (1.0 - self.config.score_decay))
        if self.state is BreakerState.HALF_OPEN:
            self.probe_passes += 1
            if self.probe_passes >= self.config.probe_successes:
                self._transition(BreakerState.CLOSED, tick)

    def record_failure(self, tick: int) -> None:
        self.consecutive_failures += 1
        self.score *= self.config.score_decay
        if self.state is BreakerState.HALF_OPEN:
            self._transition(BreakerState.OPEN, tick)
        elif (self.state is BreakerState.CLOSED
                and self.consecutive_failures
                >= self.config.failure_threshold):
            self._transition(BreakerState.OPEN, tick)

    def tick(self, tick: int) -> None:
        """Advance the route-count clock; OPEN cools down to HALF_OPEN."""
        if (self.state is BreakerState.OPEN
                and tick - self.opened_at_tick
                >= self.config.cooldown_routes):
            self._transition(BreakerState.HALF_OPEN, tick)

    @property
    def available(self) -> bool:
        """May ``route()`` pick this chip?  OPEN means quarantined."""
        return self.state is not BreakerState.OPEN

    @property
    def needs_probe(self) -> bool:
        return self.state is BreakerState.HALF_OPEN

    def _transition(self, to: BreakerState, tick: int) -> None:
        if to is BreakerState.OPEN:
            self.opens += 1
            self.opened_at_tick = tick
            if _TRACE.enabled:
                _TRACE.event("breaker.open", chip=self.chip,
                             failures=self.consecutive_failures)
            _FLIGHT.auto_dump("breaker_open", chip=self.chip,
                              failures=self.consecutive_failures,
                              tick=tick)
        else:
            _FLIGHT.record("breaker.transition", chip=self.chip,
                           to=to.name, tick=tick)
        if to is not BreakerState.HALF_OPEN:
            self.probe_passes = 0
        self.state = to
        self.transitions.append((to.name, tick))
        if _REGISTRY.enabled:
            _REGISTRY.gauge(
                "repro_resilience_breaker_state",
                "per-chip breaker (0 closed, 1 half-open, 2 open)").set(
                int(to), chip=str(self.chip))
            _REGISTRY.counter(
                "repro_resilience_breaker_transitions_total",
                "breaker state transitions").inc(
                1, chip=str(self.chip), to=to.name)


class HealthTracker:
    """All chips' breakers plus the shared routing-tick clock."""

    def __init__(self, chips: int,
                 config: HealthConfig | None = None) -> None:
        self.config = config or HealthConfig()
        self.breakers = [CircuitBreaker(chip=c, config=self.config)
                         for c in range(chips)]
        self._tick = 0
        self._lock = threading.Lock()

    def tick(self) -> int:
        """One routing decision happened; cool down OPEN breakers."""
        with self._lock:
            self._tick += 1
            for breaker in self.breakers:
                breaker.tick(self._tick)
            return self._tick

    def available_chips(self) -> list[int]:
        with self._lock:
            return [b.chip for b in self.breakers if b.available]

    def needs_probe(self, chip: int) -> bool:
        with self._lock:
            return self.breakers[chip].needs_probe

    def record_success(self, chip: int) -> None:
        with self._lock:
            self.breakers[chip].record_success(self._tick)

    def record_failure(self, chip: int) -> None:
        with self._lock:
            self.breakers[chip].record_failure(self._tick)

    def state(self, chip: int) -> BreakerState:
        with self._lock:
            return self.breakers[chip].state

    def scores(self) -> list[float]:
        with self._lock:
            return [b.score for b in self.breakers]

    def transition_log(self) -> dict[int, list[tuple[str, int]]]:
        """Per-chip ``(state, tick)`` history (for survival reports)."""
        with self._lock:
            return {b.chip: list(b.transitions) for b in self.breakers}

    def total_opens(self) -> int:
        with self._lock:
            return sum(b.opens for b in self.breakers)
