"""Verify-after-compress: inflate the payload and check its CRC-32.

The production zEDC path can re-inflate compressed output and compare
the CRC before handing the buffer back — a data-integrity backstop
against a mis-executing engine.  This module provides that check for
the model plus the software *repair* path: when verification fails the
job is re-run on the calling core (charged at the calibrated software
rate) so the caller always receives bytes that round-trip.
"""

from __future__ import annotations

from ..deflate import (crc32, deflate, gzip_compress, gzip_decompress,
                       inflate, zlib_compress, zlib_decompress)
from ..errors import ReproError
from ..obs.metrics import REGISTRY as _REGISTRY
from ..obs.trace import TRACE as _TRACE


def decode_payload(payload: bytes, fmt: str) -> bytes:
    """Reference software decode of any wire format the stack emits."""
    if fmt == "gzip":
        return gzip_decompress(payload)
    if fmt == "zlib":
        return zlib_decompress(payload)
    if fmt == "842":
        from ..e842 import decompress as e842_decompress

        return e842_decompress(payload)
    return inflate(payload)


def verify_payload(original: bytes, payload: bytes, fmt: str = "raw") -> bool:
    """Does ``payload`` inflate back to ``original`` (CRC-32 checked)?"""
    try:
        restored = decode_payload(payload, fmt)
    except ReproError:
        return False
    return (crc32(restored) == crc32(original)
            and restored == original)


def software_compress(data: bytes, fmt: str = "raw", level: int = 6,
                      machine=None) -> tuple[bytes, float]:
    """Known-good software re-encode plus its modelled core seconds."""
    if fmt == "gzip":
        payload = gzip_compress(data, level=level)
    elif fmt == "zlib":
        payload = zlib_compress(data, level=level)
    elif fmt == "842":
        from ..e842 import compress as e842_compress

        payload = e842_compress(data).data
        level = 1  # software 842 costs roughly a fast-level zlib
    else:
        payload = deflate(data, level=level).data
    seconds = 0.0
    if machine is not None:
        from ..perf.cost import SoftwareCostModel

        seconds = SoftwareCostModel(machine).compress_seconds(
            len(data), level=level)
    return payload, seconds


def note_mismatch(backend: str, fmt: str, nbytes: int) -> None:
    """Publish one verify failure into metrics and the open span."""
    if _TRACE.enabled:
        _TRACE.event("verify.mismatch", backend=backend, fmt=fmt,
                     nbytes=nbytes)
    if _REGISTRY.enabled:
        _REGISTRY.counter(
            "repro_resilience_verify_mismatch_total",
            "compressed payloads that failed verify-after-compress").inc(
            1, backend=backend, fmt=fmt)
