"""Seeded, deterministic network fault injection for the service wire.

PR 4's :class:`~repro.resilience.faults.FaultInjector` made chip-level
failure a first-class, replayable event; this module does the same for
the *network* between a :class:`~repro.service.client.ServiceClient`
and the TCP server — the failure domain a multi-node sharded fleet
(ROADMAP item 4) lives in.  A shared accelerator reached over a socket
must survive connection resets, mid-frame truncation, slow-loris
dribble, latency spikes, and duplicated or stale responses without ever
double-executing a job or returning wrong bytes.

The API deliberately mirrors the chip injector:

* :class:`NetFaultPlan` — one declarative fault: what, when (``at_op``
  is the wrapper's send/recv operation counter), how often, how hard.
* :class:`NetFaultInjector` — evaluates plans deterministically from
  one ``random.Random`` seeded from ``(seed, peer)``; records firings
  in ``fired`` for exact campaign accounting.
* :class:`FaultySocket` — the installable wrapper: on the client it
  wraps the connected socket (``ServiceClient(socket_wrapper=...)``),
  on the server it shims every accepted connection
  (``CompressionServer(socket_wrapper=...)``).

Faults act at message granularity — :func:`~repro.service.protocol.
send_message` emits one ``sendall`` per message precisely so duplicate
and stale injections replay *whole frames*, the case the request-id
dedup machinery has to defeat, not torn byte salads.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass

from ..errors import ConfigError
from ..obs.flight import FLIGHT as _FLIGHT
from ..obs.metrics import REGISTRY as _REGISTRY
from ..obs.trace import TRACE as _TRACE

#: Every network fault kind a plan may declare.
NET_FAULT_KINDS = (
    "reset",       # the connection dies with a reset on this operation
    "truncate",    # a send delivers only a prefix, then the socket dies
    "slow_send",   # slow-loris: the message dribbles out in tiny chunks
    "latency",     # the operation stalls ``magnitude`` milliseconds
    "duplicate",   # the frame just sent is sent again, back to back
    "stale",       # a previously sent frame is replayed before this one
)

#: Kinds that fire on the send path (the rest also fire on recv).
_SEND_ONLY = ("truncate", "slow_send", "duplicate", "stale")

#: Seconds between slow-loris chunks: long enough to exercise partial
#: reads on the peer, short enough for seeded CI campaigns.
_SLOW_CHUNK_DELAY_S = 0.002


@dataclass(frozen=True)
class NetFaultPlan:
    """One declarative wire fault: what, when, how often, how hard.

    ``at_op`` fires deterministically when the wrapper's
    *direction-specific* operation counter hits that value — for a
    send-capable kind that is the Nth ``sendall`` on the connection, so
    ``NetFaultPlan("truncate", at_op=1)`` on the server shim kills
    exactly the first response of each connection mid-frame;
    ``probability`` fires per opportunity from the seeded stream.
    ``max_fires`` caps total firings (``at_op`` plans default to one).
    ``magnitude`` is kind-specific: milliseconds of stall for
    ``latency``, dribble chunk count for ``slow_send``, and the
    fraction of the frame delivered before a ``truncate`` kill.
    """

    kind: str
    probability: float = 0.0
    at_op: int | None = None
    max_fires: int | None = None
    magnitude: float = 8.0

    def __post_init__(self) -> None:
        if self.kind not in NET_FAULT_KINDS:
            raise ConfigError(f"unknown net fault kind {self.kind!r}; "
                              f"have {NET_FAULT_KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"net fault probability must be in [0, 1], "
                f"got {self.probability}")
        if self.at_op is None and self.probability == 0.0:
            raise ConfigError(
                f"plan {self.kind!r} can never fire: give it at_op "
                "or a probability")

    @property
    def fire_cap(self) -> float:
        if self.max_fires is not None:
            return self.max_fires
        return 1 if self.at_op is not None else float("inf")


@dataclass
class _PlanState:
    plan: NetFaultPlan
    fires: int = 0


class NetFaultInjector:
    """Evaluates wire fault plans per socket operation, deterministically.

    One injector covers one connection (one ``peer``); a campaign
    builds one per accepted / dialled socket via :func:`fault_factory`
    so every connection replays its own seeded timeline.
    """

    def __init__(self, plans: list[NetFaultPlan] | tuple[NetFaultPlan, ...]
                 = (), seed: int = 0, peer: int = 0) -> None:
        self.seed = seed
        self.peer = peer
        self._rng = random.Random(seed * 9_999_991 + peer)
        self._states = [_PlanState(plan) for plan in plans]
        self.op_counter = 0
        self.send_counter = 0
        self.recv_counter = 0
        self.fired: dict[str, int] = {}

    # -- plan evaluation -----------------------------------------------------

    def on_op(self, direction: str) -> NetFaultPlan | None:
        """One send/recv opportunity; returns the plan that fires, if any.

        Exactly one fault fires per operation (the first matching plan)
        so a combined scenario stays a sequence of recognisable events
        rather than a pile-up on one syscall.  ``at_op`` plans match
        the per-direction counter, so "the Nth send" stays aimable no
        matter how many reads interleave.
        """
        self.op_counter += 1
        if direction == "send":
            self.send_counter += 1
            counter = self.send_counter
        else:
            self.recv_counter += 1
            counter = self.recv_counter
        for state in self._states:
            plan = state.plan
            if state.fires >= plan.fire_cap:
                continue
            if direction == "recv" and plan.kind in _SEND_ONLY:
                continue
            hit = False
            if plan.at_op is not None:
                hit = counter == plan.at_op
            if not hit and plan.probability > 0.0:
                hit = self._rng.random() < plan.probability
            if hit:
                state.fires += 1
                self._record(plan.kind, direction)
                return plan
        return None

    def _record(self, kind: str, direction: str) -> None:
        self.fired[kind] = self.fired.get(kind, 0) + 1
        if _TRACE.enabled:
            _TRACE.event("net.fault", kind=kind, peer=self.peer,
                         direction=direction)
        _FLIGHT.record("net.fault", kind=kind, peer=self.peer,
                       direction=direction, op=self.op_counter)
        if _REGISTRY.enabled:
            _REGISTRY.counter(
                "repro_resilience_net_faults_injected_total",
                "wire chaos faults fired by the injector").inc(
                1, kind=kind)

    def total_fired(self) -> int:
        return sum(self.fired.values())

    # -- installation --------------------------------------------------------

    def wrap(self, sock: socket.socket) -> "FaultySocket":
        """Install this injector on one connected socket."""
        return FaultySocket(sock, self)


class FaultySocket:
    """A socket proxy that injects the planned wire faults.

    Wraps send/recv; everything else (``settimeout``, ``close``,
    ``shutdown``, ``fileno``…) delegates to the real socket, so the
    wrapper drops into both :class:`~repro.service.client.ServiceClient`
    and the server's per-connection handler unchanged.
    """

    def __init__(self, sock: socket.socket,
                 injector: NetFaultInjector) -> None:
        self._sock = sock
        self._chaos = injector
        self._last_frame: bytes | None = None
        self._older_frame: bytes | None = None

    # -- fault actions -------------------------------------------------------

    def _kill(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def sendall(self, data: bytes) -> None:
        plan = self._chaos.on_op("send")
        if plan is None:
            self._sock.sendall(data)
        elif plan.kind == "reset":
            self._kill()
            raise ConnectionResetError("injected connection reset on send")
        elif plan.kind == "truncate":
            cut = max(1, int(len(data) * min(0.9, plan.magnitude / 10.0))) \
                if len(data) > 1 else 0
            if cut:
                try:
                    self._sock.sendall(bytes(data[:cut]))
                except OSError:
                    pass
            self._kill()
            raise ConnectionResetError(
                f"injected truncation after {cut} of {len(data)} bytes")
        elif plan.kind == "slow_send":
            chunks = max(2, int(plan.magnitude))
            step = max(1, len(data) // chunks)
            view = memoryview(bytes(data))
            for start in range(0, len(view), step):
                self._sock.sendall(view[start:start + step])
                time.sleep(_SLOW_CHUNK_DELAY_S)
        elif plan.kind == "latency":
            time.sleep(plan.magnitude * 1e-3)
            self._sock.sendall(data)
        elif plan.kind == "duplicate":
            self._sock.sendall(data)
            self._sock.sendall(data)
        elif plan.kind == "stale":
            if self._older_frame is not None:
                self._sock.sendall(self._older_frame)
            self._sock.sendall(data)
        else:  # pragma: no cover - kinds list is closed
            self._sock.sendall(data)
        self._older_frame = self._last_frame
        self._last_frame = bytes(data)

    def send(self, data: bytes) -> int:
        self.sendall(data)
        return len(data)

    def recv(self, nbytes: int) -> bytes:
        plan = self._chaos.on_op("recv")
        if plan is not None:
            if plan.kind == "reset":
                self._kill()
                raise ConnectionResetError(
                    "injected connection reset on recv")
            if plan.kind == "latency":
                time.sleep(plan.magnitude * 1e-3)
        return self._sock.recv(nbytes)

    # -- passthrough ---------------------------------------------------------

    def __getattr__(self, name: str):
        return getattr(self._sock, name)

    def __enter__(self) -> "FaultySocket":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._sock.close()


def fault_factory(plans: list[NetFaultPlan] | tuple[NetFaultPlan, ...],
                  seed: int = 0, max_connections: int | None = None):
    """A ``socket_wrapper`` that seeds a fresh injector per connection.

    Each call wraps one socket with its own :class:`NetFaultInjector`
    (``peer`` increments per connection, so reconnects replay new but
    deterministic timelines).  ``max_connections`` bounds how many
    connections get faults at all — ``max_connections=1`` with an
    ``at_op`` plan stages exactly one aimed failure (e.g. "kill the
    first response mid-frame") and lets every retry through clean.
    The factory's ``injectors`` list keeps every injector it created
    for end-of-campaign fault accounting.
    """
    injectors: list[NetFaultInjector] = []

    def wrapper(sock: socket.socket):
        if max_connections is not None \
                and len(injectors) >= max_connections:
            return sock
        injector = NetFaultInjector(plans, seed=seed, peer=len(injectors))
        injectors.append(injector)
        return injector.wrap(sock)

    wrapper.injectors = injectors
    return wrapper
