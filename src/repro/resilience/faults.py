"""Seeded, deterministic fault injection for the modelled stack.

A z15 zEDC unit lives inside a mainframe RAS envelope: a shared
user-mode accelerator must survive translation-fault storms, credit
exhaustion, corrupted engine output, and whole-engine death without
taking down tenants.  This module makes every one of those first-class,
*replayable* events so the retry/breaker/verify machinery can be tested
against them.

A :class:`FaultInjector` holds declarative :class:`FaultPlan` entries
and is installed on one chip's model via :meth:`FaultInjector.install`,
which sets the ``chaos`` hook attribute consulted (when non-``None``) at
three points:

* ``nx/accelerator.py`` — per popped CRB (:meth:`on_job_start` for
  hang / chip-death / translation-storm) and per executed job
  (:meth:`on_outcome` for slowdown and output corruption);
* ``sysstack/driver.py`` — per CSB read (:meth:`on_csb` for spurious
  non-success completion codes);
* ``sysstack/vas.py`` — per credit return (:meth:`on_credit_return`
  for credit leaks).

All randomness comes from one ``random.Random`` seeded from
``(seed, chip)``, and decisions are consumed in submission order, so a
campaign with a fixed seed replays the identical fault timeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ConfigError
from ..obs.flight import FLIGHT as _FLIGHT
from ..obs.metrics import REGISTRY as _REGISTRY
from ..obs.trace import TRACE as _TRACE
from ..sysstack.crb import CcCode

#: Every fault kind a plan may declare.
FAULT_KINDS = (
    "engine_hang",        # the engine never completes; credit stays held
    "engine_slow",        # busy time multiplied by ``magnitude``
    "corrupt_output",     # one output byte flipped after a SUCCESS job
    "spurious_cc",        # a SUCCESS CSB rewritten to a non-success CC
    "translation_storm",  # the next ``magnitude`` jobs fault on source
    "credit_leak",        # a completed job's window credit is never freed
    "chip_death",         # from job N every job fails until recovery
)


@dataclass(frozen=True)
class FaultPlan:
    """One declarative fault: what, when, how often, how hard.

    ``at_job`` fires deterministically when the chip's job counter hits
    that value; ``probability`` fires per opportunity from the seeded
    stream; both may be combined across separate plans.  ``max_fires``
    caps total firings (``at_job`` plans default to one).
    ``magnitude`` is kind-specific: the slowdown factor for
    ``engine_slow``, the storm length for ``translation_storm``.
    ``recover_at_job`` resurrects a dead chip (``chip_death`` only).
    """

    kind: str
    probability: float = 0.0
    at_job: int | None = None
    max_fires: int | None = None
    magnitude: float = 8.0
    recover_at_job: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r}; "
                              f"have {FAULT_KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"fault probability must be in [0, 1], "
                f"got {self.probability}")
        if self.at_job is None and self.probability == 0.0:
            raise ConfigError(
                f"plan {self.kind!r} can never fire: give it at_job "
                "or a probability")

    @property
    def fire_cap(self) -> float:
        if self.max_fires is not None:
            return self.max_fires
        # A pinned one-shot unless the caller widened it explicitly.
        return 1 if self.at_job is not None else float("inf")


@dataclass
class _PlanState:
    plan: FaultPlan
    fires: int = 0


class FaultInjector:
    """Evaluates fault plans at the model's hook points, deterministically."""

    def __init__(self, plans: list[FaultPlan] | tuple[FaultPlan, ...] = (),
                 seed: int = 0, chip: int = 0) -> None:
        self.seed = seed
        self.chip = chip
        self._rng = random.Random(seed * 1_000_003 + chip)
        self._states = [_PlanState(plan) for plan in plans]
        self.job_counter = 0
        self.fired: dict[str, int] = {}
        self._storm_remaining = 0
        self._dead = False

    # -- installation --------------------------------------------------------

    def install(self, accelerator) -> "FaultInjector":
        """Attach to one chip's accelerator (and its switchboard)."""
        accelerator.chaos = self
        accelerator.vas.chaos = self
        return self

    # -- plan evaluation -----------------------------------------------------

    def _fires(self, kind: str, counter: int | None = None) -> _PlanState | None:
        """Does any ``kind`` plan fire at this opportunity?"""
        for state in self._states:
            plan = state.plan
            if plan.kind != kind or state.fires >= plan.fire_cap:
                continue
            hit = False
            if plan.at_job is not None and counter is not None:
                hit = counter == plan.at_job
            if not hit and plan.probability > 0.0:
                hit = self._rng.random() < plan.probability
            if hit:
                state.fires += 1
                self._record(kind)
                return state
        return None

    def _record(self, kind: str) -> None:
        self.fired[kind] = self.fired.get(kind, 0) + 1
        if _TRACE.enabled:
            _TRACE.event("fault.injected", kind=kind, chip=self.chip)
        _FLIGHT.auto_dump("fault_" + kind, chip=self.chip,
                          job=self.job_counter)
        if _REGISTRY.enabled:
            _REGISTRY.counter(
                "repro_resilience_faults_injected_total",
                "chaos faults fired by the injector").inc(
                1, kind=kind, chip=str(self.chip))

    # -- hook points ---------------------------------------------------------

    def on_job_start(self, crb) -> str | None:
        """Accelerator hook, once per popped CRB; returns the action.

        ``"hang"`` — drop the job, keep the credit; ``"dead"`` — fail
        with an engine-check CC; ``"translation"`` — fabricate a
        translation fault on the source; ``None`` — run normally.
        """
        self.job_counter += 1
        counter = self.job_counter
        # Chip death dominates everything else while active.
        for state in self._states:
            plan = state.plan
            if plan.kind != "chip_death":
                continue
            if self._dead and (plan.recover_at_job is not None
                               and counter >= plan.recover_at_job):
                self._dead = False
            if not self._dead and state.fires < plan.fire_cap:
                if ((plan.at_job is not None and counter >= plan.at_job
                     and (plan.recover_at_job is None
                          or counter < plan.recover_at_job))
                        or (plan.probability > 0.0
                            and self._rng.random() < plan.probability)):
                    state.fires += 1
                    self._record("chip_death")
                    self._dead = True
        if self._dead:
            return "dead"
        if self._storm_remaining > 0:
            self._storm_remaining -= 1
            return "translation"
        storm = self._fires("translation_storm", counter)
        if storm is not None:
            self._storm_remaining = max(0, int(storm.plan.magnitude) - 1)
            return "translation"
        if self._fires("engine_hang", counter) is not None:
            return "hang"
        return None

    def on_outcome(self, crb, outcome, space) -> None:
        """Accelerator hook after a job executed: slow it or corrupt it."""
        slow = self._fires("engine_slow", self.job_counter)
        if slow is not None:
            outcome.busy_seconds *= slow.plan.magnitude
        csb = outcome.csb
        if (csb.cc is CcCode.SUCCESS and csb.target_written > 0
                and self._fires("corrupt_output",
                                self.job_counter) is not None):
            offset = self._rng.randrange(csb.target_written)
            address = crb.target.address + offset
            original = space.read(address, 1)
            space.write(address, bytes((original[0] ^ 0xA5,)))

    def on_csb(self, csb) -> None:
        """Driver hook at CSB-read time: inject a spurious non-success CC."""
        if (csb.cc is CcCode.SUCCESS
                and self._fires("spurious_cc", self.job_counter) is not None):
            csb.cc = CcCode.FUNCTION

    def on_credit_return(self, window_id: int) -> bool:
        """VAS hook per credit return; True means the credit leaks."""
        return self._fires("credit_leak", self.job_counter) is not None

    # -- introspection -------------------------------------------------------

    @property
    def dead(self) -> bool:
        return self._dead

    def total_fired(self) -> int:
        return sum(self.fired.values())
