"""Resilience layer: fault injection, retries, breakers, verification.

Four pieces, wired through the whole VAS → CRB → engine → CSB path:

* :mod:`.faults` — seeded deterministic fault injection (hangs,
  slowdowns, corruption, spurious CCs, translation storms, credit
  leaks, chip death) via ``chaos`` hook points in the model;
* :mod:`.policy` — bounded retries, deterministic backoff, deadlines;
* :mod:`.health` — per-chip circuit breakers + health scores for the
  :class:`~repro.backend.pool.AcceleratorPool`;
* :mod:`.verify` — verify-after-compress with software repair;
* :mod:`.netfaults` — seeded wire fault injection (resets, truncation,
  slow-loris, latency spikes, duplicated/stale frames) installable on
  client and server sockets;
* :mod:`.chaos` — seeded survival campaigns over all of the above
  (imported lazily: it pulls in the backend pool).
"""

from .faults import FAULT_KINDS, FaultInjector, FaultPlan
from .health import (BreakerState, CircuitBreaker, HealthConfig,
                     HealthTracker)
from .netfaults import (NET_FAULT_KINDS, FaultySocket, NetFaultInjector,
                        NetFaultPlan, fault_factory)
from .policy import RetryPolicy, check_deadline
from .verify import (decode_payload, note_mismatch, software_compress,
                     verify_payload)

__all__ = [
    "FAULT_KINDS", "FaultInjector", "FaultPlan",
    "NET_FAULT_KINDS", "NetFaultInjector", "NetFaultPlan",
    "FaultySocket", "fault_factory",
    "BreakerState", "CircuitBreaker", "HealthConfig", "HealthTracker",
    "RetryPolicy", "check_deadline",
    "decode_payload", "note_mismatch", "software_compress",
    "verify_payload",
    "CampaignReport", "ScenarioResult", "default_plans", "run_campaign",
    "run_scenario",
    "NetworkCampaignReport", "NetworkScenarioResult",
    "default_network_plans", "run_network_campaign",
    "run_network_scenario",
]

_CHAOS_NAMES = {"CampaignReport", "ScenarioResult", "default_plans",
                "run_campaign", "run_scenario",
                "NetworkCampaignReport", "NetworkScenarioResult",
                "default_network_plans", "run_network_campaign",
                "run_network_scenario"}


def __getattr__(name: str):
    # chaos imports the backend pool, which imports this package — load
    # it on first use instead of at package import.
    if name in _CHAOS_NAMES:
        from . import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
