"""Seeded chaos campaigns: survive every fault plan with correct bytes.

A campaign runs a pool of per-chip backends through a series of
*scenarios*, one per fault kind plus a combined storm, each injecting a
deterministic fault timeline (see :mod:`repro.resilience.faults`).
Every compressed payload is round-trip checked against the reference
software decoder, so the campaign's headline number — ``wrong_bytes`` —
is an end-to-end data-integrity count across the retry, breaker,
rescue, and verify machinery.  With the resilience layer working it is
zero for every scenario, under every seed.

This is the regression harness behind ``repro chaos`` and the CI
``chaos-smoke`` job.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import ChipUnavailable, DeadlineExceeded, ReproError
from ..nx.params import POWER9, MachineParams, get_machine
from .faults import FaultInjector, FaultPlan
from .health import HealthConfig
from .netfaults import NetFaultPlan, fault_factory
from .verify import decode_payload

#: Jobs per scenario unless the caller widens the campaign.
DEFAULT_JOBS = 200


def default_plans(jobs: int = DEFAULT_JOBS) -> dict[str, list[FaultPlan]]:
    """One scenario per fault kind, plus a combined storm.

    Probabilities are scaled so each scenario fires often enough to
    exercise its machinery in ``jobs`` submissions without drowning the
    pool (the model still has to finish the campaign).
    """
    return {
        "baseline": [],
        "engine_hang": [FaultPlan("engine_hang", probability=0.08)],
        "engine_slow": [FaultPlan("engine_slow", probability=0.10,
                                  magnitude=16.0)],
        "corrupt_output": [FaultPlan("corrupt_output", probability=0.10)],
        "spurious_cc": [FaultPlan("spurious_cc", probability=0.10)],
        "translation_storm": [FaultPlan("translation_storm",
                                        probability=0.05, magnitude=6.0)],
        "credit_leak": [FaultPlan("credit_leak", probability=0.08,
                                  max_fires=8)],
        "chip_death": [FaultPlan("chip_death", at_job=5,
                                 recover_at_job=max(40, jobs // 4))],
        "combined": [
            FaultPlan("engine_hang", probability=0.02),
            FaultPlan("corrupt_output", probability=0.05),
            FaultPlan("spurious_cc", probability=0.05),
            FaultPlan("translation_storm", probability=0.02,
                      magnitude=4.0),
            FaultPlan("credit_leak", probability=0.02, max_fires=4),
        ],
    }


@dataclass
class ScenarioResult:
    """What one fault scenario did to the pool — and what survived."""

    name: str
    jobs: int
    wrong_bytes: int = 0
    shed: int = 0                    # DeadlineExceeded / ChipUnavailable
    rescues: int = 0
    verify_failures: int = 0
    fallbacks: int = 0
    breaker_opens: int = 0
    faults_injected: dict[str, int] = field(default_factory=dict)
    breaker_log: dict[int, list[tuple[str, int]]] = field(
        default_factory=dict)
    modelled_seconds: float = 0.0

    @property
    def survived(self) -> bool:
        return self.wrong_bytes == 0


@dataclass
class CampaignReport:
    """All scenarios of one seeded campaign."""

    seed: int
    chips: int
    scenarios: list[ScenarioResult] = field(default_factory=list)

    @property
    def survived(self) -> bool:
        return all(s.survived for s in self.scenarios)

    @property
    def total_faults(self) -> int:
        return sum(sum(s.faults_injected.values()) for s in self.scenarios)

    def render(self) -> str:
        """Human-readable survival report for the CLI."""
        lines = [
            f"chaos campaign  seed={self.seed}  chips={self.chips}",
            f"{'scenario':<18} {'jobs':>5} {'faults':>6} {'opens':>5} "
            f"{'rescue':>6} {'verify':>6} {'shed':>4} {'wrong':>5}",
        ]
        for s in self.scenarios:
            lines.append(
                f"{s.name:<18} {s.jobs:>5} "
                f"{sum(s.faults_injected.values()):>6} "
                f"{s.breaker_opens:>5} {s.rescues:>6} "
                f"{s.verify_failures:>6} {s.shed:>4} {s.wrong_bytes:>5}")
        verdict = "SURVIVED" if self.survived else "DATA LOSS"
        lines.append(f"result: {verdict}  "
                     f"({self.total_faults} faults injected, "
                     f"{sum(s.wrong_bytes for s in self.scenarios)} "
                     "wrong payloads)")
        return "\n".join(lines)


def _payload(rng: random.Random, i: int, max_size: int) -> bytes:
    """Deterministic mixed-compressibility job input."""
    size = rng.choice((256, 1024, max_size))
    runs = bytes([65 + (i % 26)]) * 48
    noise = bytes(rng.getrandbits(8) for _ in range(48))
    block = runs + noise
    return (block * (size // len(block) + 1))[:size]


def run_scenario(name: str, plans: list[FaultPlan], *,
                 seed: int = 7, jobs: int = DEFAULT_JOBS,
                 chips: int = 2,
                 machine: MachineParams | str = POWER9,
                 max_size: int = 4096,
                 deadline_s: float | None = None) -> ScenarioResult:
    """Run one fault scenario through a health-aware pool."""
    from ..backend.pool import AcceleratorPool

    if isinstance(machine, str):
        machine = get_machine(machine)
    # A tight breaker so quarantine/recovery happens inside the run.
    health = HealthConfig(failure_threshold=3, cooldown_routes=8,
                          probe_successes=2)
    result = ScenarioResult(name=name, jobs=jobs)
    with AcceleratorPool(machine=machine, chips=chips,
                         policy="round_robin", backend="nx",
                         health=health, verify=True) as pool:
        injectors = [
            FaultInjector(plans, seed=seed, chip=chip).install(
                pool.backend_for(chip).accelerator)
            for chip in range(chips)
        ]
        rng = random.Random(seed * 7919 + len(name))
        for i in range(jobs):
            data = _payload(rng, i, max_size)
            try:
                out = pool.compress(data, fmt="gzip",
                                    deadline_s=deadline_s)
            except (DeadlineExceeded, ChipUnavailable):
                result.shed += 1
                continue
            try:
                restored = decode_payload(out.output, "gzip")
            except ReproError:
                restored = None
            if restored != data:
                result.wrong_bytes += 1
            result.fallbacks += int(out.stats.fallback_to_software)
            result.modelled_seconds += out.stats.elapsed_seconds
        stats = pool.stats()
        result.rescues = stats.rescues
        result.verify_failures = stats.verify_failures
        result.breaker_opens = stats.breaker_opens
        result.breaker_log = pool.health.transition_log()
        for injector in injectors:
            for kind, count in injector.fired.items():
                result.faults_injected[kind] = (
                    result.faults_injected.get(kind, 0) + count)
    return result


def run_campaign(seed: int = 7, jobs: int = DEFAULT_JOBS, chips: int = 2,
                 machine: MachineParams | str = POWER9,
                 plans: dict[str, list[FaultPlan]] | None = None,
                 max_size: int = 4096) -> CampaignReport:
    """Every fault scenario, one seeded deterministic campaign."""
    scenarios = plans if plans is not None else default_plans(jobs)
    report = CampaignReport(seed=seed, chips=chips)
    for name, scenario_plans in scenarios.items():
        report.scenarios.append(
            run_scenario(name, scenario_plans, seed=seed, jobs=jobs,
                         chips=chips, machine=machine, max_size=max_size))
    return report


# -- chaos under load: faults while a live service handles clients ----------


@dataclass
class ServiceScenarioResult:
    """One chaos-under-load run: faults vs a serving, multi-client stack.

    The integrity bar is the same as the offline campaign — zero wrong
    payloads among *accepted* requests — plus the service-level
    contract: every shed request carried a retryable error, and the
    queues stayed within their configured bounds throughout.
    """

    name: str
    jobs: int
    clients: int
    wrong_bytes: int = 0
    served: int = 0
    shed_retryable: int = 0
    shed_nonretryable: int = 0
    failed: int = 0
    rescues: int = 0
    breaker_opens: int = 0
    breaker_closes: int = 0
    max_queue_depth: int = 0
    queue_bound: int = 0
    worker_kills: int = 0
    worker_restarts: int = 0
    faults_injected: dict[str, int] = field(default_factory=dict)

    @property
    def survived(self) -> bool:
        return (self.wrong_bytes == 0 and self.shed_nonretryable == 0
                and (self.queue_bound == 0
                     or self.max_queue_depth <= self.queue_bound))

    def render(self) -> str:
        lines = [
            f"chaos under load  scenario={self.name}  "
            f"clients={self.clients}  jobs={self.jobs}",
            f"  served={self.served}  shed(retryable)={self.shed_retryable}"
            f"  failed={self.failed}  wrong={self.wrong_bytes}",
            f"  rescues={self.rescues}  breaker opens={self.breaker_opens}"
            f"  closes={self.breaker_closes}",
            f"  peak queue depth={self.max_queue_depth}"
            f" (bound {self.queue_bound})",
            f"  faults injected: {dict(sorted(self.faults_injected.items()))}",
        ]
        if self.worker_kills:
            lines.insert(-1,
                         f"  exec workers killed={self.worker_kills}  "
                         f"restarted={self.worker_restarts}")
        verdict = "SURVIVED" if self.survived else "FAILED"
        lines.append(f"result: {verdict}")
        return "\n".join(lines)


def run_service_scenario(*, seed: int = 7, jobs: int = DEFAULT_JOBS,
                         chips: int = 2,
                         machine: MachineParams | str = POWER9,
                         max_size: int = 4096, clients: int = 4,
                         scenario: str | None = None,
                         backend: str = "nx",
                         exec_workers: int | None = None
                         ) -> ServiceScenarioResult:
    """Inject faults while a live service handles concurrent clients.

    ``clients`` threads submit seeded payloads through one
    :class:`~repro.service.core.CompressionService` while the chaos
    injectors fire on every chip.  Checked invariants:

    * every accepted compress round-trips to its original bytes
      (wrong_bytes == 0);
    * every shed request carried a *retryable* error
      (``ServiceOverloaded``) — overload never surfaces as data loss
      or an opaque failure;
    * breakers opened and closed (the fault plan guarantees failures;
      recovery probes must bring chips back);
    * queue depth snapshots never exceed the configured bound.

    With ``exec_workers`` the pool runs batch submits through the
    process-based execution layer, and the chaos dimension changes with
    it: on backends without a modelled accelerator (``backend=
    "software"``) there is nothing to fault-inject, so a killer thread
    terminates live pool workers throughout the run instead — a crashed
    worker's job must come back as a software rescue, never as wrong or
    missing bytes.
    """
    import threading

    from ..errors import ServiceOverloaded
    from ..service.core import CompressionService
    from ..service.qos import QosClass, QosPolicy

    if isinstance(machine, str):
        machine = get_machine(machine)
    plans_by_name = default_plans(jobs)
    name = scenario or "combined"
    if name not in plans_by_name:
        raise ReproError(f"unknown chaos scenario {name!r}; "
                         f"have {sorted(plans_by_name)}")
    plans = plans_by_name[name]
    from ..backend.pool import AcceleratorPool

    health = HealthConfig(failure_threshold=3, cooldown_routes=8,
                          probe_successes=2)
    queue_limit = 64
    qos = QosPolicy((
        QosClass("interactive", fifo="high", rank=0,
                 queue_limit=queue_limit, max_batch=2),
        QosClass("bulk", fifo="normal", rank=1,
                 queue_limit=queue_limit, max_batch=4),
    ))
    result = ServiceScenarioResult(name=name, jobs=jobs, clients=clients,
                                   queue_bound=queue_limit)
    pool = AcceleratorPool(machine=machine, chips=chips,
                          policy="round_robin", backend=backend,
                          health=health, verify=True,
                          exec_workers=exec_workers)
    injectors = []
    if hasattr(pool.backend_for(0), "accelerator"):
        injectors = [
            FaultInjector(plans, seed=seed, chip=chip).install(
                pool.backend_for(chip).accelerator)
            for chip in range(chips)
        ]
    lock = threading.Lock()
    stop_chaos = threading.Event()
    killer = None
    exec_pool = pool._exec() if exec_workers else None
    if exec_pool is not None:
        # Chaos kills arrive far faster than real crashes would; give
        # the respawn budget room so the scenario measures recovery,
        # not the runaway-restart backstop.
        exec_pool.restart_cap = max(exec_pool.restart_cap, 10 * jobs)

        # A kill budget keeps the scenario about *recovery*: unbounded
        # killing on a small host murders workers faster than spawn can
        # replace them and the run degenerates into restart churn.
        kill_budget = max(3, jobs // 8)

        def kill_workers() -> None:
            kill_rng = random.Random(seed * 31337)
            while not stop_chaos.wait(0.25):
                with lock:
                    if result.worker_kills >= kill_budget:
                        return
                procs = [p for p in exec_pool._procs.values()
                         if p.is_alive()]
                if procs:
                    kill_rng.choice(procs).terminate()
                    with lock:
                        result.worker_kills += 1

        killer = threading.Thread(target=kill_workers,
                                  name="repro-chaos-worker-killer",
                                  daemon=True)
        killer.start()
    with CompressionService(pool, qos=qos) as service:
        def client(worker: int) -> None:
            rng = random.Random(seed * 104729 + worker)
            qos_name = "interactive" if worker % 2 == 0 else "bulk"
            for i in range(jobs // clients):
                data = _payload(rng, worker * 1000 + i, max_size)
                try:
                    out = service.request("compress", data, fmt="gzip",
                                          qos=qos_name, timeout_s=60.0)
                except ServiceOverloaded:
                    with lock:
                        result.shed_retryable += 1
                    continue
                except ReproError as exc:
                    with lock:
                        if getattr(exc, "retryable", False):
                            result.shed_retryable += 1
                        else:
                            result.failed += 1
                    continue
                try:
                    restored = decode_payload(out.output, "gzip")
                except ReproError:
                    restored = None
                with lock:
                    result.served += 1
                    if restored != data:
                        result.wrong_bytes += 1
                snapshot = service.stats()
                with lock:
                    result.max_queue_depth = max(result.max_queue_depth,
                                                 snapshot.queued)

        threads = [threading.Thread(target=client, args=(w,))
                   for w in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop_chaos.set()
        if killer is not None:
            killer.join(5.0)
        if exec_pool is not None:
            result.worker_restarts = exec_pool.worker_restarts
        stats = pool.stats()
        result.rescues = stats.rescues
        result.breaker_opens = stats.breaker_opens
        for transitions in pool.health.transition_log().values():
            result.breaker_closes += sum(
                1 for state, _ in transitions if state == "CLOSED")
        for injector in injectors:
            for kind, count in injector.fired.items():
                result.faults_injected[kind] = (
                    result.faults_injected.get(kind, 0) + count)
    return result


# -- network chaos: wire faults vs reconnecting idempotent clients -----------


def default_network_plans() -> dict[str, dict[str, list[NetFaultPlan]]]:
    """One scenario per wire fault kind, plus a combined storm.

    Each scenario names ``client`` plans (installed on every socket the
    clients dial) and ``server`` plans (installed on every accepted
    connection).  Probabilities are per socket *operation* and tuned so
    each connection sees a handful of faults without degenerating into
    pure reconnect churn — the campaign measures recovery arithmetic,
    not survival of a dead wire.
    """
    return {
        "net_baseline": {"client": [], "server": []},
        "net_reset": {
            "client": [NetFaultPlan("reset", probability=0.06)],
            "server": [NetFaultPlan("reset", probability=0.06)],
        },
        "net_truncate": {
            "client": [],
            "server": [NetFaultPlan("truncate", probability=0.20)],
        },
        "net_slow": {
            "client": [NetFaultPlan("slow_send", probability=0.25,
                                    magnitude=4.0)],
            "server": [NetFaultPlan("latency", probability=0.25,
                                    magnitude=5.0)],
        },
        "net_duplicate": {
            "client": [],
            "server": [NetFaultPlan("duplicate", probability=0.25),
                       NetFaultPlan("stale", probability=0.25)],
        },
        "net_combined": {
            "client": [NetFaultPlan("reset", probability=0.03),
                       NetFaultPlan("latency", probability=0.10,
                                    magnitude=3.0)],
            "server": [NetFaultPlan("truncate", probability=0.08),
                       NetFaultPlan("duplicate", probability=0.10),
                       NetFaultPlan("stale", probability=0.10),
                       NetFaultPlan("reset", probability=0.03)],
        },
    }


@dataclass
class NetworkScenarioResult:
    """One wire-chaos run and its exactly-once reconciliation.

    The proof obligations, all exact arithmetic (no tolerances):

    * ``wrong_bytes == 0`` — every fulfilled request round-trips;
    * ``duplicate_stores == 0`` — no request id was ever executed and
      stored twice (the double-execution detector);
    * ``executions == stores == successes`` — every logical client
      request executed exactly once, no matter how many resends the
      wire forced (``dedup_hits`` counts the replays that made that
      possible);
    * ``gave_up == 0`` — all clients converged: reconnect + retry
      budget sufficed to land every request.
    """

    name: str
    jobs: int
    clients: int
    served: int = 0
    wrong_bytes: int = 0
    gave_up: int = 0
    reconnects: int = 0
    dedup_hits: int = 0
    dedup_waits: int = 0
    executions: int = 0
    stores: int = 0
    duplicate_stores: int = 0
    bad_frames: int = 0
    client_faults: dict[str, int] = field(default_factory=dict)
    server_faults: dict[str, int] = field(default_factory=dict)

    @property
    def survived(self) -> bool:
        return (self.wrong_bytes == 0 and self.duplicate_stores == 0
                and self.gave_up == 0
                and self.executions == self.stores == self.served)

    def render(self) -> str:
        lines = [
            f"network chaos  scenario={self.name}  "
            f"clients={self.clients}  jobs={self.jobs}",
            f"  served={self.served}  wrong={self.wrong_bytes}  "
            f"gave up={self.gave_up}",
            f"  reconnects={self.reconnects}  "
            f"dedup hits={self.dedup_hits}  waits={self.dedup_waits}",
            f"  executions={self.executions}  stores={self.stores}  "
            f"duplicate stores={self.duplicate_stores}",
            f"  faults: client={dict(sorted(self.client_faults.items()))} "
            f"server={dict(sorted(self.server_faults.items()))}",
        ]
        verdict = ("SURVIVED" if self.survived
                   else "FAILED (wrong bytes / double execution / "
                        "non-convergence)")
        lines.append(f"result: {verdict}")
        return "\n".join(lines)


@dataclass
class NetworkCampaignReport:
    """All wire scenarios of one seeded network campaign."""

    seed: int
    clients: int
    scenarios: list[NetworkScenarioResult] = field(default_factory=list)

    @property
    def survived(self) -> bool:
        return all(s.survived for s in self.scenarios)

    def render(self) -> str:
        lines = [
            f"network chaos campaign  seed={self.seed}  "
            f"clients={self.clients}",
            f"{'scenario':<16} {'jobs':>5} {'faults':>6} {'reconn':>6} "
            f"{'dedup':>5} {'exec':>5} {'dup':>4} {'wrong':>5} {'lost':>4}",
        ]
        for s in self.scenarios:
            faults = (sum(s.client_faults.values())
                      + sum(s.server_faults.values()))
            lines.append(
                f"{s.name:<16} {s.jobs:>5} {faults:>6} "
                f"{s.reconnects:>6} {s.dedup_hits:>5} {s.executions:>5} "
                f"{s.duplicate_stores:>4} {s.wrong_bytes:>5} "
                f"{s.gave_up:>4}")
        verdict = ("SURVIVED" if self.survived
                   else "FAILED (wrong bytes / double execution / "
                        "non-convergence)")
        wrong = sum(s.wrong_bytes for s in self.scenarios)
        dups = sum(s.duplicate_stores for s in self.scenarios)
        lines.append(f"result: {verdict}  ({wrong} wrong payloads, "
                     f"{dups} double executions)")
        return "\n".join(lines)


def run_network_scenario(name: str, *, seed: int = 7, jobs: int = 40,
                         clients: int = 4, max_size: int = 4096,
                         plans: dict[str, list[NetFaultPlan]] | None = None,
                         backend: str = "software"
                         ) -> NetworkScenarioResult:
    """Wire faults vs concurrent reconnecting clients, reconciled exactly.

    One real TCP server fronts one :class:`CompressionService`;
    ``clients`` threads drive QoS-tagged compress requests through
    :class:`~repro.service.client.ServiceClient` instances with
    reconnect enabled, while seeded injectors mangle both ends of every
    connection.  See :class:`NetworkScenarioResult` for the invariants.
    """
    import threading

    from ..service.client import RetryBudget, ServiceClient
    from ..service.core import CompressionService
    from ..service.idempotency import IdempotencyCache
    from ..service.server import serve

    all_plans = default_network_plans()
    if plans is None:
        if name not in all_plans:
            raise ReproError(f"unknown network scenario {name!r}; "
                             f"have {sorted(all_plans)}")
        plans = all_plans[name]
    result = NetworkScenarioResult(name=name, jobs=jobs, clients=clients)
    dedup = IdempotencyCache()
    server_wrapper = fault_factory(plans.get("server", ()), seed=seed)
    service = CompressionService(chips=1, backend=backend)
    server = serve(service, port=0, dedup=dedup,
                   socket_wrapper=server_wrapper, idle_timeout_s=30.0)
    # One shared budget across all clients: generous enough for the
    # planned fault rates to converge, bounded enough that retries stay
    # etiquette rather than amplification.
    budget = RetryBudget(capacity=8.0 * jobs, deposit=1.0)
    lock = threading.Lock()
    try:
        def run_client(worker: int) -> None:
            rng = random.Random(seed * 104729 + worker)
            qos_name = "interactive" if worker % 2 == 0 else "bulk"
            client_wrapper = fault_factory(plans.get("client", ()),
                                           seed=seed * 613 + worker)
            try:
                client = ServiceClient(
                    port=server.port, reconnect=True, max_reconnects=12,
                    retry_budget=budget, socket_wrapper=client_wrapper,
                    timeout_s=30.0)
            except ReproError:
                with lock:
                    result.gave_up += jobs // clients
                return
            try:
                for i in range(jobs // clients):
                    data = _payload(rng, worker * 1000 + i, max_size)
                    try:
                        out = client.request(
                            "compress", data, fmt="gzip", qos=qos_name,
                            tenant=f"tenant{worker % 2}", retries=4)
                    except ReproError:
                        with lock:
                            result.gave_up += 1
                        continue
                    try:
                        restored = decode_payload(out.output, "gzip")
                    except ReproError:
                        restored = None
                    with lock:
                        result.served += 1
                        if restored != data:
                            result.wrong_bytes += 1
                        result.reconnects += out.reconnects
                        result.dedup_hits += int(out.deduped)
            finally:
                with lock:
                    for kind, count in _factory_fired(client_wrapper):
                        result.client_faults[kind] = (
                            result.client_faults.get(kind, 0) + count)
                client.close()

        threads = [threading.Thread(target=run_client, args=(w,),
                                    name=f"repro-netchaos-client-{w}")
                   for w in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        server.shutdown()
        service.close()
    stats = service.stats()
    cache = dedup.stats()
    result.executions = stats.completed
    result.stores = cache["stores"]
    result.duplicate_stores = cache["duplicate_stores"]
    result.dedup_waits = cache["waits"]
    # Server-side dedup hits are authoritative (a replayed response can
    # be lost on the wire too — the client only sees the last one).
    result.dedup_hits = cache["hits"]
    for kind, count in _factory_fired(server_wrapper):
        result.server_faults[kind] = (
            result.server_faults.get(kind, 0) + count)
    return result


def _factory_fired(factory) -> list[tuple[str, int]]:
    fired: dict[str, int] = {}
    for injector in getattr(factory, "injectors", ()):
        for kind, count in injector.fired.items():
            fired[kind] = fired.get(kind, 0) + count
    return sorted(fired.items())


def run_network_campaign(seed: int = 7, jobs: int = 40, clients: int = 4,
                         max_size: int = 4096,
                         scenario: str | None = None
                         ) -> NetworkCampaignReport:
    """Every wire fault scenario, one seeded deterministic campaign."""
    names = sorted(default_network_plans())
    if scenario is not None:
        if scenario not in names:
            raise ReproError(f"unknown network scenario {scenario!r}; "
                             f"have {names}")
        names = [scenario]
    report = NetworkCampaignReport(seed=seed, clients=clients)
    for name in names:
        report.scenarios.append(
            run_network_scenario(name, seed=seed, jobs=jobs,
                                 clients=clients, max_size=max_size))
    return report
