"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compress``   — compress a file through the accelerator model
* ``decompress`` — decompress a file (gzip/zlib/raw)
* ``machines``   — list modelled machines and their calibrated rates
* ``advise``     — offload advice for a request size
* ``ratio``      — compare codec ratios on a file or named generator

The CLI exists so the model is usable without writing Python; every
command prints the modelled timing next to the functional result.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from .core.api import NxGzip
from .core.metrics import Table, human_bytes
from .core.offload import OffloadAdvisor
from .nx.params import MACHINES, get_machine


def _add_machine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--machine", default="POWER9",
                        choices=sorted(MACHINES),
                        help="machine model to run on")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IBM POWER9/z15 compression accelerator model")
    sub = parser.add_subparsers(dest="command", required=True)

    p_comp = sub.add_parser("compress", help="compress a file")
    p_comp.add_argument("input", type=pathlib.Path)
    p_comp.add_argument("-o", "--output", type=pathlib.Path)
    p_comp.add_argument("--fmt", default="gzip",
                        choices=["gzip", "zlib", "raw"])
    p_comp.add_argument("--strategy", default="auto",
                        choices=["auto", "fixed", "dynamic", "canned"])
    _add_machine_arg(p_comp)

    p_dec = sub.add_parser("decompress", help="decompress a file")
    p_dec.add_argument("input", type=pathlib.Path)
    p_dec.add_argument("-o", "--output", type=pathlib.Path)
    p_dec.add_argument("--fmt", default="gzip",
                       choices=["gzip", "zlib", "raw"])
    _add_machine_arg(p_dec)

    sub.add_parser("machines", help="list machine models")

    p_adv = sub.add_parser("advise", help="offload advice for a size")
    p_adv.add_argument("size", type=int, help="request size in bytes")
    p_adv.add_argument("--level", type=int, default=6)
    _add_machine_arg(p_adv)

    p_ratio = sub.add_parser("ratio", help="codec ratio comparison")
    p_ratio.add_argument("source",
                         help="a file path or generator:<name>[:size]")
    _add_machine_arg(p_ratio)

    p_self = sub.add_parser("selftest",
                            help="known-answer vectors through both pipes")
    _add_machine_arg(p_self)
    return parser


def _load_source(source: str) -> tuple[str, bytes]:
    if source.startswith("generator:"):
        from .workloads.generators import generate

        parts = source.split(":")
        name = parts[1]
        size = int(parts[2]) if len(parts) > 2 else 65536
        return f"{name}({human_bytes(size)})", generate(name, size, seed=1)
    path = pathlib.Path(source)
    return path.name, path.read_bytes()


def cmd_compress(args: argparse.Namespace) -> int:
    data = args.input.read_bytes()
    with NxGzip(args.machine) as session:
        result = session.compress(data, strategy=args.strategy,
                                  fmt=args.fmt)
    suffix = {"gzip": ".gz", "zlib": ".zz", "raw": ".deflate"}[args.fmt]
    output = args.output or args.input.with_name(args.input.name + suffix)
    output.write_bytes(result.data)
    ratio = len(data) / len(result.data) if result.data else 0.0
    print(f"{args.input} -> {output}")
    print(f"  {human_bytes(len(data))} -> {human_bytes(len(result.data))} "
          f"(ratio {ratio:.2f})")
    print(f"  modelled time on {args.machine}: "
          f"{result.modelled_seconds * 1e6:.1f} us "
          f"({len(data) / 1e9 / result.modelled_seconds:.2f} GB/s)")
    return 0


def cmd_decompress(args: argparse.Namespace) -> int:
    payload = args.input.read_bytes()
    with NxGzip(args.machine) as session:
        result = session.decompress(payload, fmt=args.fmt)
    output = args.output or args.input.with_suffix(".out")
    output.write_bytes(result.data)
    print(f"{args.input} -> {output}")
    print(f"  {human_bytes(len(payload))} -> "
          f"{human_bytes(len(result.data))}")
    print(f"  modelled time on {args.machine}: "
          f"{result.modelled_seconds * 1e6:.1f} us")
    return 0


def cmd_machines(_args: argparse.Namespace) -> int:
    from .perf.cost import SoftwareCostModel, accelerator_effective_gbps

    table = Table(headers=["machine", "cores", "accel GB/s",
                           "sw zlib-6 MB/s", "area %", "interface"])
    for name in sorted(MACHINES):
        machine = get_machine(name)
        cost = SoftwareCostModel(machine)
        table.add(name, machine.cores.cores,
                  accelerator_effective_gbps(machine),
                  cost.compress_rate_mbps(6),
                  100 * machine.area_fraction,
                  "sync DFLTCC" if machine.synchronous else "async VAS")
    print(table.render("modelled machines"))
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    advisor = OffloadAdvisor(get_machine(args.machine), level=args.level)
    rec = advisor.recommend(args.size)
    print(f"request: {human_bytes(args.size)} on {args.machine} "
          f"(vs zlib -{args.level})")
    print(f"  route: {rec.route.value}  (gain {rec.gain:.1f}x)")
    print(f"  hardware latency: {rec.hw_latency_s * 1e6:.1f} us; "
          f"software: {rec.sw_latency_s * 1e6:.1f} us")
    print(f"  break-even size: {human_bytes(rec.break_even_bytes)}")
    return 0


def cmd_ratio(args: argparse.Namespace) -> int:
    from .deflate.compress import deflate
    from .e842 import compress as e842_compress
    from .nx.compressor import NxCompressor
    from .nx.dht import DhtStrategy

    name, data = _load_source(args.source)
    machine = get_machine(args.machine)
    nx = NxCompressor(machine.engine)
    table = Table(headers=["codec", "bytes", "ratio"])
    table.add("input", len(data), 1.0)
    for label, size in (
            ("zlib -1", len(deflate(data, 1).data)),
            ("zlib -6", len(deflate(data, 6).data)),
            ("zlib -9", len(deflate(data, 9).data)),
            ("NX fixed", len(nx.compress(data, DhtStrategy.FIXED).data)),
            ("NX canned", len(nx.compress(data, DhtStrategy.CANNED).data)),
            ("NX dht", len(nx.compress(data, DhtStrategy.DYNAMIC).data)),
            ("842", len(e842_compress(data).data)),
    ):
        table.add(label, size, len(data) / size if size else 0.0)
    print(table.render(f"codec comparison: {name}"))
    return 0


def cmd_selftest(args: argparse.Namespace) -> int:
    from .nx.selftest import run_selftest

    report = run_selftest(get_machine(args.machine),
                          raise_on_failure=False)
    status = "PASS" if report.passed else "FAIL"
    print(f"{report.machine}: {status} "
          f"({report.vectors_run} vectors x "
          f"{report.strategies_run} strategies)")
    return 0 if report.passed else 1


_COMMANDS = {
    "compress": cmd_compress,
    "decompress": cmd_decompress,
    "machines": cmd_machines,
    "advise": cmd_advise,
    "ratio": cmd_ratio,
    "selftest": cmd_selftest,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
