"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compress``   — compress a file through the accelerator model
* ``decompress`` — decompress a file (gzip/zlib/raw)
* ``cat``        — decompress to stdout; ``--range OFF:LEN`` serves a
  random read through a seek-index sidecar without decoding the prefix
* ``machines``   — list modelled machines and their calibrated rates
* ``backends``   — list registered backends and their capabilities
* ``advise``     — offload advice for a request size
* ``ratio``      — compare codec ratios on a file or named generator
* ``stats``      — telemetry snapshot: metrics registry + engine health
  (or ``--url`` to scrape a live server's ops endpoint)
* ``chaos``      — seeded fault-injection survival campaign
* ``serve``      — compression job server (QoS queues, batching);
  ``--http-port`` adds the ops plane (``/metrics`` ``/healthz``
  ``/traces/recent`` ``/flight`` ``/ops``)
* ``submit``     — client: send a file to a running server
* ``top``        — live fleet view: poll a server's ops endpoint and
  render rolling-window latency/throughput/shed/breaker state

Telemetry is off by default; ``repro --trace <command>`` records spans
for every job and writes a Chrome ``trace_event`` JSON (open it in
Perfetto or chrome://tracing), and ``--metrics`` prints a Prometheus
snapshot of the metrics registry after the command.

Every engine acquisition goes through the backend registry: pick the
execution path with ``--backend`` and fan jobs across chips with
``--pool-chips``/``--pool-policy``.  The CLI exists so the model is
usable without writing Python; every command prints the modelled timing
next to the functional result.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from .backend import (ROUTING_POLICIES, AcceleratorPool,
                      backend_capabilities, backend_names)
from .core.metrics import Table, human_bytes
from .core.offload import OffloadAdvisor
from .errors import ReproError
from .nx.params import MACHINES, get_machine


def _add_machine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--machine", default="POWER9",
                        choices=sorted(MACHINES),
                        help="machine model to run on")


def _add_backend_args(parser: argparse.ArgumentParser,
                      pool: bool = False) -> None:
    parser.add_argument("--backend", default=None,
                        choices=sorted(backend_names()),
                        help="execution backend from the registry "
                             "(default: the machine's driver stack)")
    if pool:
        parser.add_argument("--pool-chips", type=int, default=1,
                            help="route across N per-chip accelerator "
                                 "instances (default: 1, no pool)")
        parser.add_argument("--pool-policy", default="round_robin",
                            choices=ROUTING_POLICIES,
                            help="pool routing policy")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IBM POWER9/z15 compression accelerator model")
    parser.add_argument("--trace", action="store_true",
                        help="record job spans and write a Chrome "
                             "trace_event JSON after the command")
    parser.add_argument("--trace-out", type=pathlib.Path, default=None,
                        help="trace output path "
                             "(default: repro-trace.json)")
    parser.add_argument("--metrics", action="store_true",
                        help="print a Prometheus metrics snapshot "
                             "after the command")
    sub = parser.add_subparsers(dest="command", required=True)

    p_comp = sub.add_parser("compress", help="compress a file")
    p_comp.add_argument("input", type=pathlib.Path)
    p_comp.add_argument("-o", "--output", type=pathlib.Path)
    p_comp.add_argument("--fmt", default="gzip",
                        choices=["gzip", "zlib", "raw"])
    p_comp.add_argument("--strategy", default="auto",
                        choices=["auto", "fixed", "dynamic", "canned"])
    p_comp.add_argument("--verify", action="store_true",
                        help="verify-after-compress: re-inflate and "
                             "CRC-check before writing; mismatches are "
                             "re-encoded in software")
    p_comp.add_argument("--deadline-ms", type=float, default=None,
                        help="per-job deadline in modelled milliseconds "
                             "(bounds retry/wait time)")
    p_comp.add_argument("--parallel-workers", type=int, default=None,
                        help="compress on N worker processes (pigz "
                             "model; implies the software-parallel "
                             "backend, output is byte-identical for "
                             "every worker count)")
    p_comp.add_argument("--chunk-size", type=int, default=None,
                        help="bytes per parallel chunk (default 128 KiB; "
                             "only with --parallel-workers)")
    _add_machine_arg(p_comp)
    _add_backend_args(p_comp, pool=True)

    p_dec = sub.add_parser("decompress", help="decompress a file")
    p_dec.add_argument("input", type=pathlib.Path)
    p_dec.add_argument("-o", "--output", type=pathlib.Path)
    p_dec.add_argument("--fmt", default="gzip",
                       choices=["gzip", "zlib", "raw"])
    p_dec.add_argument("--deadline-ms", type=float, default=None,
                       help="per-job deadline in modelled milliseconds")
    p_dec.add_argument("--parallel-workers", type=int, default=None,
                       help="decompress on N worker processes "
                            "(speculative chunk decode; implies the "
                            "software-parallel backend, output is "
                            "byte-identical for every worker count)")
    p_dec.add_argument("--chunk-size", type=int, default=None,
                       help="bytes per speculative chunk (default "
                            "128 KiB; only with --parallel-workers)")
    _add_machine_arg(p_dec)
    _add_backend_args(p_dec, pool=True)

    p_cat = sub.add_parser(
        "cat", help="decompress to stdout; --range serves random reads "
                    "through a seek index without decoding the prefix")
    p_cat.add_argument("input", type=pathlib.Path)
    p_cat.add_argument("-o", "--output", type=pathlib.Path,
                       help="write bytes here instead of stdout")
    p_cat.add_argument("--fmt", default="gzip",
                       choices=["gzip", "zlib", "raw"])
    p_cat.add_argument("--range", default=None, metavar="OFF:LEN",
                       help="uncompressed byte range to serve "
                            "(e.g. 1048576:4096)")
    p_cat.add_argument("--index", type=pathlib.Path, default=None,
                       help="seek-index sidecar path "
                            "(default: INPUT.rsix)")
    p_cat.add_argument("--no-index", action="store_true",
                       help="never read or write an index sidecar")
    p_cat.add_argument("--workers", type=int, default=None,
                       help="pool workers for full decodes (default: "
                            "cpu count)")
    p_cat.add_argument("--chunk-size", type=int, default=None,
                       help="bytes per speculative chunk")

    sub.add_parser("machines", help="list machine models")

    p_back = sub.add_parser("backends",
                            help="list registered compression backends")
    _add_machine_arg(p_back)

    p_adv = sub.add_parser("advise", help="offload advice for a size")
    p_adv.add_argument("size", type=int, help="request size in bytes")
    p_adv.add_argument("--level", type=int, default=6)
    _add_machine_arg(p_adv)

    p_ratio = sub.add_parser("ratio", help="codec ratio comparison")
    p_ratio.add_argument("source",
                         help="a file path or generator:<name>[:size]")
    _add_machine_arg(p_ratio)
    _add_backend_args(p_ratio)

    p_self = sub.add_parser("selftest",
                            help="known-answer vectors through both pipes")
    _add_machine_arg(p_self)

    p_stats = sub.add_parser(
        "stats", help="telemetry snapshot: metrics + accelerator health")
    p_stats.add_argument("--machine", default=None,
                         choices=sorted(MACHINES),
                         help="probe one machine's engines "
                              "(default: all)")
    p_stats.add_argument("--format", default="both",
                         choices=["json", "prometheus", "both"],
                         help="snapshot rendering (default: both)")
    p_stats.add_argument("--url", default=None,
                         help="scrape a live server's ops endpoint "
                              "(e.g. http://127.0.0.1:8080) instead of "
                              "probing local engines")

    p_chaos = sub.add_parser(
        "chaos", help="seeded fault-injection survival campaign")
    p_chaos.add_argument("--seed", type=int, default=7,
                         help="campaign seed (default: 7)")
    p_chaos.add_argument("--jobs", type=int, default=200,
                         help="jobs per scenario (default: 200)")
    p_chaos.add_argument("--chips", type=int, default=2,
                         help="pool size (default: 2)")
    p_chaos.add_argument("--max-size", type=int, default=4096,
                         help="largest job payload in bytes")
    p_chaos.add_argument("--scenario", default=None,
                         help="run only this named scenario")
    p_chaos.add_argument("--network", action="store_true",
                         help="wire-fault campaign: seeded socket chaos "
                              "(resets, truncation, slow-loris, "
                              "duplicates) vs reconnecting idempotent "
                              "clients; asserts exactly-once execution")
    p_chaos.add_argument("--under-load", action="store_true",
                         help="inject faults while a live service "
                              "handles concurrent clients (chaos-under-"
                              "load: payload integrity + breaker checks)")
    p_chaos.add_argument("--clients", type=int, default=4,
                         help="concurrent client threads for "
                              "--under-load (default: 4)")
    p_chaos.add_argument("--exec-workers", type=int, default=None,
                         help="with --under-load: run jobs on N pool "
                              "worker processes and kill workers "
                              "mid-run instead of injecting modelled "
                              "faults (crash-recovery integrity check)")
    _add_machine_arg(p_chaos)

    p_dict = sub.add_parser(
        "dict", help="dictionary service: train, list, and push "
                     "tenant canned DHTs + priming dictionaries")
    dict_sub = p_dict.add_subparsers(dest="dict_command", required=True)
    p_dtrain = dict_sub.add_parser(
        "train", help="train per-family dictionaries on a seeded corpus")
    p_dtrain.add_argument("--corpus", default="cloud-like",
                          help="workload corpus to sample "
                               "(default: cloud-like)")
    p_dtrain.add_argument("--scale", type=float, default=0.25,
                          help="corpus scale factor (default: 0.25)")
    p_dtrain.add_argument("--seed", type=int, default=7,
                          help="training seed; the same seed always "
                               "produces byte-identical dictionaries")
    p_dtrain.add_argument("--sample-bytes", type=int, default=4096,
                          help="bytes sampled per observed payload")
    p_dtrain.add_argument("--max-clusters", type=int, default=4,
                          help="cluster cap per tenant (default: 4)")
    p_dtrain.add_argument("-o", "--out", type=pathlib.Path,
                          default=pathlib.Path("dicts.json"),
                          help="bundle output path (default: dicts.json)")
    p_dlist = dict_sub.add_parser(
        "list", help="list a bundle's dictionaries, or the engine's "
                     "canned library")
    p_dlist.add_argument("--bundle", type=pathlib.Path, default=None,
                         help="bundle to inspect (default: the "
                              "in-process canned library)")
    p_dpush = dict_sub.add_parser(
        "push", help="load a bundle and publish its tables to the "
                     "engine's canned library")
    p_dpush.add_argument("bundle", type=pathlib.Path)
    _add_machine_arg(p_dpush)
    _add_backend_args(p_dpush)

    p_serve = sub.add_parser(
        "serve", help="compression job server (QoS queues, batching)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (default: 0 = ephemeral; the "
                              "bound port is printed)")
    p_serve.add_argument("--chips", type=int, default=1,
                         help="accelerator pool size (default: 1)")
    p_serve.add_argument("--policy", default="round_robin",
                         choices=ROUTING_POLICIES,
                         help="pool routing policy")
    p_serve.add_argument("--verify", action="store_true",
                         help="verify-after-compress on served jobs")
    p_serve.add_argument("--duration-s", type=float, default=None,
                         help="serve for N seconds then drain and exit "
                              "(default: until interrupted)")
    p_serve.add_argument("--exec-workers", type=int, default=None,
                         help="run served jobs on N persistent worker "
                              "processes (zero-copy shared-memory "
                              "payloads; the dispatcher stays an I/O "
                              "loop)")
    p_serve.add_argument("--http-port", type=int, default=None,
                         help="also serve the HTTP ops plane on this "
                              "port (0 = ephemeral; adds /metrics, "
                              "/healthz, /traces/recent, /flight, /ops "
                              "and enables tracing+metrics)")
    p_serve.add_argument("--cache-mb", type=float, default=None,
                         help="mount a content-addressed result cache "
                              "of this many MB in front of dispatch "
                              "(identical compress requests dedupe to "
                              "one execution)")
    p_serve.add_argument("--dicts", type=pathlib.Path, default=None,
                         help="dictionary bundle (from 'repro dict "
                              "train') to push into the engine's "
                              "canned library before serving")
    _add_machine_arg(p_serve)
    _add_backend_args(p_serve)

    p_sub = sub.add_parser(
        "submit", help="send one file to a running compression server")
    p_sub.add_argument("input", type=pathlib.Path)
    p_sub.add_argument("-o", "--output", type=pathlib.Path)
    p_sub.add_argument("--op", default="compress",
                       choices=["compress", "decompress"])
    p_sub.add_argument("--host", default="127.0.0.1")
    p_sub.add_argument("--port", type=int, required=True)
    p_sub.add_argument("--qos", default=None,
                       help="QoS class (interactive/batch/bulk)")
    p_sub.add_argument("--tenant", default="")
    p_sub.add_argument("--fmt", default="gzip",
                       choices=["gzip", "zlib", "raw"])
    p_sub.add_argument("--deadline-ms", type=float, default=None)
    p_sub.add_argument("--retries", type=int, default=3,
                       help="retry budget for overload rejections "
                            "(default: 3, honouring retry_after_s)")

    p_top = sub.add_parser(
        "top", help="live fleet view over a server's HTTP ops plane")
    p_top.add_argument("--url", required=True,
                       help="ops base URL, e.g. http://127.0.0.1:8080")
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="seconds between refreshes (default: 2)")
    p_top.add_argument("--once", action="store_true",
                       help="print one snapshot and exit (scripts/CI)")
    return parser


def _load_source(source: str) -> tuple[str, bytes]:
    if source.startswith("generator:"):
        from .workloads.generators import generate

        parts = source.split(":")
        name = parts[1]
        size = int(parts[2]) if len(parts) > 2 else 65536
        return f"{name}({human_bytes(size)})", generate(name, size, seed=1)
    path = pathlib.Path(source)
    return path.name, path.read_bytes()


def _run_session(args: argparse.Namespace, kind: str,
                 data: bytes) -> tuple[bytes, float]:
    """Execute one request through the accelerator pool; returns
    (output bytes, modelled seconds).  A single chip still routes
    through the pool so every CLI job shares one code path (and one
    span taxonomy: pool.route → backend.submit → …)."""
    if getattr(args, "pool_chips", 1) < 1:
        raise ReproError(f"--pool-chips must be >= 1, got {args.pool_chips}")
    deadline_ms = getattr(args, "deadline_ms", None)
    deadline_s = deadline_ms * 1e-3 if deadline_ms is not None else None
    backend = args.backend
    backend_kwargs: dict[str, int] = {}
    workers = getattr(args, "parallel_workers", None)
    chunk_size = getattr(args, "chunk_size", None)
    if workers is not None or chunk_size is not None:
        backend = backend or "software-parallel"
        if backend != "software-parallel":
            raise ReproError(
                "--parallel-workers/--chunk-size configure the "
                f"software-parallel backend, not {backend!r}")
        if workers is not None:
            backend_kwargs["workers"] = workers
        if chunk_size is not None:
            backend_kwargs["chunk_size"] = chunk_size
    with AcceleratorPool(args.machine,
                         chips=getattr(args, "pool_chips", 1),
                         policy=getattr(args, "pool_policy",
                                        "round_robin"),
                         backend=backend or "nx",
                         verify=getattr(args, "verify", False),
                         **backend_kwargs) as pool:
        if kind == "compress":
            result = pool.compress(data, strategy=args.strategy,
                                   fmt=args.fmt, deadline_s=deadline_s)
        else:
            result = pool.decompress(data, fmt=args.fmt,
                                     deadline_s=deadline_s)
    return result.output, result.stats.elapsed_seconds


def cmd_compress(args: argparse.Namespace) -> int:
    data = args.input.read_bytes()
    payload, seconds = _run_session(args, "compress", data)
    suffix = {"gzip": ".gz", "zlib": ".zz", "raw": ".deflate"}[args.fmt]
    output = args.output or args.input.with_name(args.input.name + suffix)
    output.write_bytes(payload)
    ratio = len(data) / len(payload) if payload else 0.0
    print(f"{args.input} -> {output}")
    print(f"  {human_bytes(len(data))} -> {human_bytes(len(payload))} "
          f"(ratio {ratio:.2f})")
    print(f"  modelled time on {args.machine}: "
          f"{seconds * 1e6:.1f} us "
          f"({len(data) / 1e9 / seconds:.2f} GB/s)")
    return 0


def cmd_decompress(args: argparse.Namespace) -> int:
    payload = args.input.read_bytes()
    args.strategy = "auto"  # decompress has no strategy flag
    data, seconds = _run_session(args, "decompress", payload)
    output = args.output or args.input.with_suffix(".out")
    output.write_bytes(data)
    print(f"{args.input} -> {output}")
    print(f"  {human_bytes(len(payload))} -> "
          f"{human_bytes(len(data))}")
    print(f"  modelled time on {args.machine}: "
          f"{seconds * 1e6:.1f} us")
    return 0


def _parse_range(spec: str) -> tuple[int, int]:
    try:
        off_s, len_s = spec.split(":", 1)
        offset, length = int(off_s, 0), int(len_s, 0)
    except ValueError:
        raise ReproError(f"--range wants OFF:LEN, got {spec!r}") from None
    if offset < 0 or length < 0:
        raise ReproError(f"--range values must be >= 0, got {spec!r}")
    return offset, length


def cmd_cat(args: argparse.Namespace) -> int:
    """Decompress to stdout, or serve a random read via the seek index.

    Bytes go to stdout (or ``-o``); everything human-readable goes to
    stderr so ``repro cat f.gz > f`` stays clean.  A corrupt or stale
    index sidecar is *reported and ignored* — the read falls back to a
    full decode, never to wrong bytes.
    """
    from .deflate.parallel_inflate import read_range
    from .deflate.seekindex import SeekIndex
    from .errors import SeekIndexError
    from .exec.pool import shutdown_default_pool

    payload = args.input.read_bytes()
    index_path = args.index or args.input.with_name(
        args.input.name + ".rsix")
    note = lambda msg: print(msg, file=sys.stderr)  # noqa: E731

    index = None
    if not args.no_index and index_path.exists():
        try:
            index = SeekIndex.load(index_path)
            if index.compressed_size != len(payload) or \
                    index.fmt != args.fmt:
                raise SeekIndexError("index does not match this payload")
        except SeekIndexError as exc:
            note(f"ignoring index {index_path}: {exc}")
            index = None

    if args.range is not None:
        offset, length = _parse_range(args.range)
        if index is not None:
            result = read_range(payload, offset, length, index=index)
            data = result.data
            note(f"range {offset}:{length} via index: decoded "
                 f"{human_bytes(result.decoded_bytes)}, skipped "
                 f"{human_bytes(result.skipped_bytes)} of prefix")
        else:
            data, index = _cat_full_decode(args, payload, index_path,
                                           note)
            data = data[offset:offset + length]
            note(f"range {offset}:{length} via full decode "
                 "(no usable index)")
    else:
        data, index = _cat_full_decode(args, payload, index_path, note)

    if args.output is not None:
        args.output.write_bytes(data)
    else:
        sys.stdout.buffer.write(data)
        sys.stdout.buffer.flush()
    shutdown_default_pool()
    return 0


def _cat_full_decode(args: argparse.Namespace, payload: bytes,
                     index_path: pathlib.Path, note) -> tuple[bytes, object]:
    from .deflate.parallel_inflate import parallel_inflate

    build = not args.no_index
    result = parallel_inflate(payload, args.fmt,
                              workers=args.workers,
                              **({"chunk_size": args.chunk_size}
                                 if args.chunk_size else {}),
                              build_index=build)
    note(f"decoded {human_bytes(len(result.data))} from "
         f"{human_bytes(len(payload))} ({result.members} member(s), "
         f"{result.chunks_used} parallel chunk(s), "
         f"{result.serial_segments} serial segment(s))")
    if build and result.index is not None and not index_path.exists():
        try:
            result.index.save(index_path)
            note(f"wrote seek index {index_path} "
                 f"({len(result.index.points)} points)")
        except OSError as exc:
            note(f"could not write index {index_path}: {exc}")
    return result.data, result.index


def cmd_machines(_args: argparse.Namespace) -> int:
    from .perf.cost import SoftwareCostModel, accelerator_effective_gbps

    table = Table(headers=["machine", "cores", "accel GB/s",
                           "sw zlib-6 MB/s", "area %", "interface"])
    for name in sorted(MACHINES):
        machine = get_machine(name)
        cost = SoftwareCostModel(machine)
        table.add(name, machine.cores.cores,
                  accelerator_effective_gbps(machine),
                  cost.compress_rate_mbps(6),
                  100 * machine.area_fraction,
                  "sync DFLTCC" if machine.synchronous else "async VAS")
    print(table.render("modelled machines"))
    return 0


def cmd_backends(args: argparse.Namespace) -> int:
    machine = get_machine(args.machine)
    table = Table(headers=["backend", "formats", "kind", "comp GB/s",
                           "decomp GB/s", "overhead us"])
    for name in backend_names():
        try:
            caps = backend_capabilities(name, machine=machine)
        except ReproError:
            # e.g. dfltcc on an asynchronous machine: show its native
            # machine's capabilities instead of omitting the row.
            caps = backend_capabilities(name)
        kind = ("hw sync" if caps.synchronous else "hw async") \
            if caps.hardware else "software"
        table.add(name, "/".join(caps.formats), kind,
                  caps.compress_gbps, caps.decompress_gbps,
                  caps.per_call_overhead_s * 1e6)
    print(table.render(f"registered backends (machine: {args.machine})"))
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    advisor = OffloadAdvisor(get_machine(args.machine), level=args.level)
    rec = advisor.recommend(args.size)
    print(f"request: {human_bytes(args.size)} on {args.machine} "
          f"(vs zlib -{args.level})")
    print(f"  route: {rec.route.value} via backend {rec.backend!r}  "
          f"(gain {rec.gain:.1f}x)")
    print(f"  hardware latency: {rec.hw_latency_s * 1e6:.1f} us; "
          f"software: {rec.sw_latency_s * 1e6:.1f} us")
    print(f"  break-even size: {human_bytes(rec.break_even_bytes)}")
    return 0


def cmd_ratio(args: argparse.Namespace) -> int:
    from .backend import create_backend

    name, data = _load_source(args.source)
    machine = get_machine(args.machine)
    rows: list[tuple[str, int]] = []
    for level in (1, 6, 9):
        with create_backend("software", machine=machine,
                            level=level) as sw:
            rows.append((f"zlib -{level}",
                         len(sw.compress(data, fmt="raw").output)))
    with create_backend(args.backend or "nx", machine=machine) as hw:
        for label, strategy in (("NX fixed", "fixed"),
                                ("NX canned", "canned"),
                                ("NX dht", "dynamic")):
            rows.append((label, len(hw.compress(data, strategy=strategy,
                                                fmt="raw").output)))
    with create_backend("842") as e842:
        rows.append(("842", len(e842.compress(data).output)))

    table = Table(headers=["codec", "bytes", "ratio"])
    table.add("input", len(data), 1.0)
    for label, size in rows:
        table.add(label, size, len(data) / size if size else 0.0)
    print(table.render(f"codec comparison: {name}"))
    return 0


def cmd_selftest(args: argparse.Namespace) -> int:
    from .nx.selftest import run_selftest

    report = run_selftest(get_machine(args.machine),
                          raise_on_failure=False)
    status = "PASS" if report.passed else "FAIL"
    print(f"{report.machine}: {status} "
          f"({report.vectors_run} vectors x "
          f"{report.strategies_run} strategies)")
    return 0 if report.passed else 1


def cmd_stats(args: argparse.Namespace) -> int:
    from . import obs
    from .nx.selftest import run_selftest

    if args.url is not None:
        return _stats_scrape(args)
    obs.enable(trace=False, metrics=True)
    machines = [args.machine] if args.machine else sorted(MACHINES)
    for name in machines:
        # Populate the per-engine health gauges the snapshot reports.
        run_selftest(get_machine(name), raise_on_failure=False)
    registry = obs.registry()
    if args.format in ("json", "both"):
        print(registry.to_json())
    if args.format in ("prometheus", "both"):
        print(registry.to_prometheus())
    return 0


def _ops_get(base: str, path: str) -> bytes:
    """One GET against a server's ops plane; ReproError on failure."""
    import urllib.error
    import urllib.request

    url = base.rstrip("/") + path
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            return response.read()
    except (urllib.error.URLError, OSError) as exc:
        raise ReproError(f"cannot reach ops endpoint {url}: {exc}") \
            from exc


def _stats_scrape(args: argparse.Namespace) -> int:
    import json as _json

    if args.format in ("json", "both"):
        print(_json.dumps(_json.loads(_ops_get(args.url, "/ops")),
                          indent=2, sort_keys=True))
    if args.format in ("prometheus", "both"):
        print(_ops_get(args.url, "/metrics").decode(errors="replace"),
              end="")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Poll ``/ops`` and render the fleet view; ctrl-C exits."""
    import json as _json
    import time as _time

    while True:
        ops = _json.loads(_ops_get(args.url, "/ops"))
        print(render_top(ops, args.url))
        if args.once:
            return 0
        try:
            _time.sleep(max(0.1, args.interval))
        except KeyboardInterrupt:
            return 0


def render_top(ops: dict, url: str) -> str:
    """The ``repro top`` screen for one ``/ops`` document."""
    lines = [f"repro top — {url}  (uptime "
             f"{ops.get('uptime_s', 0.0):.0f}s)"]
    service = ops.get("service")
    if service:
        lines.append(
            f"  service: {service.get('state', '?')}  "
            f"accepted {service.get('accepted', 0)}  "
            f"completed {service.get('completed', 0)}  "
            f"rejected {service.get('rejected', 0)}  "
            f"expired {service.get('expired', 0)}  "
            f"queued {service.get('queued', 0)}")
        breakers = ops.get("breakers") or {}
        if breakers:
            states = " ".join(f"chip{chip}:{state}"
                              for chip, state in sorted(breakers.items()))
            lines.append(f"  breakers: {states}")
    windows = ops.get("windows") or {}
    if windows:
        table = Table(headers=["window metric", "labels", "count",
                               "rate/s", "mean", "p50", "p99"])
        for name in sorted(windows):
            for labels, stats in sorted(windows[name].items()):
                table.add(name, labels or "-", stats.get("count", 0),
                          f"{stats.get('rate_per_s', 0.0):.2f}",
                          f"{stats.get('mean', 0.0):.4g}",
                          f"{stats.get('p50', 0.0):.4g}",
                          f"{stats.get('p99', 0.0):.4g}")
        lines.append(table.render("rolling windows (last 60s)"))
    else:
        lines.append("  no rolling-window samples yet")
    return "\n".join(lines)


def cmd_chaos(args: argparse.Namespace) -> int:
    from .resilience.chaos import default_plans, run_campaign

    if args.network:
        return _cmd_chaos_network(args)
    if args.under_load:
        return _cmd_chaos_under_load(args)
    plans = default_plans(args.jobs)
    if args.scenario is not None:
        if args.scenario not in plans:
            print(f"error: unknown scenario {args.scenario!r}; "
                  f"have {sorted(plans)}", file=sys.stderr)
            return 2
        plans = {args.scenario: plans[args.scenario]}
    report = run_campaign(seed=args.seed, jobs=args.jobs,
                          chips=args.chips, machine=args.machine,
                          plans=plans, max_size=args.max_size)
    print(report.render())
    return 0 if report.survived else 1


def _cmd_chaos_network(args: argparse.Namespace) -> int:
    from .resilience.chaos import default_network_plans, run_network_campaign

    if args.scenario is not None \
            and args.scenario not in default_network_plans():
        print(f"error: unknown network scenario {args.scenario!r}; "
              f"have {sorted(default_network_plans())}", file=sys.stderr)
        return 2
    jobs = args.jobs if args.jobs != 200 else 40
    report = run_network_campaign(seed=args.seed, jobs=jobs,
                                  clients=args.clients,
                                  max_size=args.max_size,
                                  scenario=args.scenario)
    print(report.render())
    return 0 if report.survived else 1


def _cmd_chaos_under_load(args: argparse.Namespace) -> int:
    from .resilience.chaos import run_service_scenario

    result = run_service_scenario(
        seed=args.seed, jobs=args.jobs, chips=args.chips,
        machine=args.machine, max_size=args.max_size,
        clients=args.clients, scenario=args.scenario,
        backend="software" if args.exec_workers else "nx",
        exec_workers=args.exec_workers)
    print(result.render())
    return 0 if result.survived else 1


def cmd_dict(args: argparse.Namespace) -> int:
    if args.dict_command == "train":
        return _cmd_dict_train(args)
    if args.dict_command == "list":
        return _cmd_dict_list(args)
    return _cmd_dict_push(args)


def _train_registry(corpus: str, scale: float, seed: int,
                    sample_bytes: int, max_clusters: int):
    """Observe every corpus family as a tenant and train each one."""
    from .dictsvc import DictionaryRegistry
    from .workloads.corpus import build_corpus

    registry = DictionaryRegistry(seed=seed, sample_bytes=sample_bytes,
                                  max_clusters=max_clusters)
    families = build_corpus(corpus, scale=scale, seed=1234)
    for family, data in families.items():
        for offset in range(0, len(data), sample_bytes):
            registry.observe(family, data[offset:offset + sample_bytes])
    for family in families:
        registry.train(family)
    return registry


def _dict_table(dicts) -> Table:
    table = Table(headers=["name", "epoch", "samples", "priming",
                           "centroid[0:4]"])
    for d in dicts:
        table.add(d.name, d.epoch, d.samples, human_bytes(len(d.priming)),
                  "/".join(f"{x:.2f}" for x in d.centroid[:4]))
    return table


def _cmd_dict_train(args: argparse.Namespace) -> int:
    registry = _train_registry(args.corpus, args.scale, args.seed,
                               args.sample_bytes, args.max_clusters)
    registry.save_bundle(str(args.out))
    dicts = registry.trained()
    print(_dict_table(dicts).render(
        f"trained dictionaries ({args.corpus}, seed {args.seed})"))
    print(f"bundle: {args.out} ({len(dicts)} dictionaries)")
    return 0


def _cmd_dict_list(args: argparse.Namespace) -> int:
    if args.bundle is not None:
        from .dictsvc import DictionaryRegistry

        registry = DictionaryRegistry()
        dicts = registry.load_bundle(str(args.bundle))
        print(_dict_table(dicts).render(f"bundle {args.bundle}"))
        return 0
    from .nx.dht import canned_names, trained_names

    trained = set(trained_names())
    table = Table(headers=["name", "kind"])
    for name in canned_names(include_trained=True):
        table.add(name, "trained" if name in trained else "built-in")
    print(table.render("canned DHT library (this process)"))
    return 0


def _cmd_dict_push(args: argparse.Namespace) -> int:
    from .dictsvc import DictionaryRegistry

    registry = DictionaryRegistry()
    registry.load_bundle(str(args.bundle))
    pushed = registry.push()
    print(f"pushed {len(pushed)} trained tables: {', '.join(pushed)}")
    caps = backend_capabilities(args.backend or "nx",
                                machine=get_machine(args.machine))
    print(f"backend {caps.name!r} now advertises "
          f"{len(caps.canned_dicts)} canned dicts via "
          "capabilities().canned_dicts")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import signal as _signal
    import time as _time

    from .service import CompressionService, serve

    # SIGTERM must drain like ctrl-C does: the default disposition
    # kills the dispatcher without running cleanup, orphaning pool
    # worker processes (which then hold inherited pipes open forever).
    def _graceful(_signum, _frame):
        raise KeyboardInterrupt

    _signal.signal(_signal.SIGTERM, _graceful)

    ops = None
    if args.http_port is not None:
        # The ops plane is only as good as its telemetry: turn the
        # collectors on before the service starts taking jobs.
        from . import obs
        from .obs.http import OpsServer

        obs.enable(trace=True, metrics=True)
    if args.dicts is not None:
        from .dictsvc import DictionaryRegistry

        registry = DictionaryRegistry()
        registry.load_bundle(str(args.dicts))
        pushed = registry.push()
        print(f"dictionaries: pushed {len(pushed)} trained canned "
              f"tables from {args.dicts}", flush=True)
    service = CompressionService(machine=args.machine, chips=args.chips,
                                 policy=args.policy,
                                 backend=args.backend,
                                 verify=args.verify,
                                 exec_workers=args.exec_workers,
                                 cache_mb=args.cache_mb)
    server = serve(service, host=args.host, port=args.port)
    print(f"serving on {args.host}:{server.port} "
          f"(machine {args.machine}, {args.chips} chip(s), "
          f"policy {args.policy})", flush=True)
    if args.http_port is not None:
        ops = OpsServer(service=service, host=args.host,
                        port=args.http_port)
        ops.start()
        print(f"ops on http://{args.host}:{ops.port} "
              f"(/metrics /healthz /traces/recent /flight /ops)",
              flush=True)
    try:
        if args.duration_s is not None:
            _time.sleep(args.duration_s)
        else:
            while True:
                _time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        if ops is not None:
            ops.stop()
        server.shutdown()
        service.close()
        stats = service.stats()
        print(f"drained: {stats.completed} served, "
              f"{stats.rejected} shed, {stats.failed} failed")
        if stats.cache is not None:
            print(f"cache: {stats.cache['hits']} hits / "
                  f"{stats.cache['requests']} requests "
                  f"({stats.cache['executions']} executions, "
                  f"{stats.cache['evictions']} evictions)")
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from .service import ServiceClient

    data = args.input.read_bytes()
    deadline_s = (args.deadline_ms * 1e-3
                  if args.deadline_ms is not None else None)
    # Reconnect is on: a dropped connection retries the same
    # request_id, so the server dedups rather than re-executes.
    with ServiceClient(args.host, args.port, reconnect=True) as client:
        result = client.request(args.op, data, qos=args.qos,
                                tenant=args.tenant, fmt=args.fmt,
                                deadline_s=deadline_s,
                                retries=args.retries)
    suffix = {"gzip": ".gz", "zlib": ".zz", "raw": ".deflate"}[args.fmt]
    default = (args.input.with_name(args.input.name + suffix)
               if args.op == "compress"
               else args.input.with_suffix(".out"))
    output = args.output or default
    output.write_bytes(result.output)
    print(f"{args.input} -> {output}")
    print(f"  {human_bytes(len(data))} -> "
          f"{human_bytes(len(result.output))} "
          f"(qos {result.qos}, batch {result.batch_size}, "
          f"queue wait {result.queue_wait_s * 1e3:.2f} ms, "
          f"attempts {result.attempts})")
    return 0


_COMMANDS = {
    "compress": cmd_compress,
    "decompress": cmd_decompress,
    "cat": cmd_cat,
    "machines": cmd_machines,
    "backends": cmd_backends,
    "advise": cmd_advise,
    "ratio": cmd_ratio,
    "selftest": cmd_selftest,
    "stats": cmd_stats,
    "chaos": cmd_chaos,
    "dict": cmd_dict,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "top": cmd_top,
}


def _finish_telemetry(args: argparse.Namespace) -> None:
    """Export whatever `--trace`/`--metrics` asked for, even on errors."""
    from . import obs

    if args.trace:
        out = args.trace_out or pathlib.Path("repro-trace.json")
        obs.export_chrome_trace(out)
        jsonl = out.with_suffix(".spans.jsonl")
        obs.export_spans_jsonl(jsonl)
        print(f"trace: {out} (Perfetto / chrome://tracing); "
              f"spans: {jsonl}")
    if args.metrics and args.command != "stats":
        print(obs.registry().to_prometheus())


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.trace or args.metrics:
        from . import obs

        obs.enable(trace=args.trace, metrics=True)
    try:
        code = _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = 1
    if args.trace or args.metrics:
        _finish_telemetry(args)
    return code


if __name__ == "__main__":
    sys.exit(main())
