"""Canonical Huffman coding for DEFLATE.

Three pieces live here:

* :func:`limited_code_lengths` — optimal length-limited code construction
  via the package-merge algorithm (the hardware DHT generator and the
  software baseline both build on it);
* :func:`canonical_codes` — RFC 1951 canonical code assignment from a list
  of code lengths;
* :class:`HuffmanEncoder` / :class:`HuffmanDecoder` — bit-level symbol
  encode/decode against a canonical code, with a small root lookup table
  for fast decoding of short (common) codes.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import HuffmanError
from .bitio import BitReader, BitWriter

_ROOT_BITS = 9  # fast decode table covers codes up to this many bits


def limited_code_lengths(freqs: Sequence[int], max_length: int) -> list[int]:
    """Return optimal code lengths bounded by ``max_length``.

    Implements package-merge.  Symbols with zero frequency get length 0.
    A single-symbol alphabet gets length 1 (DEFLATE cannot express a
    zero-bit code).
    """
    used = [i for i, f in enumerate(freqs) if f > 0]
    lengths = [0] * len(freqs)
    if not used:
        return lengths
    if len(used) == 1:
        lengths[used[0]] = 1
        return lengths
    if len(used) > (1 << max_length):
        raise HuffmanError(
            f"{len(used)} symbols cannot fit in {max_length}-bit codes")

    # Items are (weight, serial, leaf_symbols).  The serial breaks weight
    # ties deterministically so output is stable across runs.
    serial = 0
    leaves = []
    for sym in used:
        leaves.append((freqs[sym], serial, (sym,)))
        serial += 1
    leaves.sort()

    current = list(leaves)
    for _ in range(max_length - 1):
        packages = []
        for k in range(0, len(current) - 1, 2):
            a, b = current[k], current[k + 1]
            packages.append((a[0] + b[0], serial, a[2] + b[2]))
            serial += 1
        current = sorted(leaves + packages)

    for item in current[:2 * len(used) - 2]:
        for sym in item[2]:
            lengths[sym] += 1
    return lengths


def canonical_codes(lengths: Sequence[int]) -> list[int]:
    """Assign canonical code values per RFC 1951 section 3.2.2.

    Returned codes are in natural (MSB-first) order; callers that write
    them LSB-first must bit-reverse (see :class:`HuffmanEncoder`).
    """
    max_length = max(lengths, default=0)
    bl_count = [0] * (max_length + 1)
    for length in lengths:
        if length:
            bl_count[length] += 1

    code = 0
    next_code = [0] * (max_length + 1)
    for bits in range(1, max_length + 1):
        code = (code + bl_count[bits - 1]) << 1
        next_code[bits] = code
        if next_code[bits] + bl_count[bits] > (1 << bits):
            raise HuffmanError(f"over-subscribed code at length {bits}")

    codes = [0] * len(lengths)
    for sym, length in enumerate(lengths):
        if length:
            codes[sym] = next_code[length]
            next_code[length] += 1
    return codes


def _reverse_bits(value: int, nbits: int) -> int:
    result = 0
    for _ in range(nbits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def kraft_sum(lengths: Sequence[int]) -> float:
    """Kraft inequality sum; exactly 1.0 for a complete prefix code."""
    return sum(2.0 ** -length for length in lengths if length)


class HuffmanEncoder:
    """Encodes symbols of one canonical code into a :class:`BitWriter`."""

    def __init__(self, lengths: Sequence[int]) -> None:
        self.lengths = list(lengths)
        natural = canonical_codes(lengths)
        self.codes = [
            _reverse_bits(code, length) if length else 0
            for code, length in zip(natural, lengths)
        ]

    def encode(self, writer: BitWriter, symbol: int) -> None:
        length = self.lengths[symbol]
        if not length:
            raise HuffmanError(f"symbol {symbol} has no code")
        writer.write_bits(self.codes[symbol], length)

    def cost(self, symbol: int) -> int:
        """Bit cost of ``symbol`` (0 means the symbol is not in the code)."""
        return self.lengths[symbol]


class HuffmanDecoder:
    """Decodes one canonical code from a :class:`BitReader`.

    Uses the counting method of Mark Adler's *puff*, fronted by a
    ``2**_ROOT_BITS`` lookup table for codes short enough to fit.
    An *incomplete* code is accepted only in the single-code case, which
    RFC 1951 tolerates for distance codes.
    """

    def __init__(self, lengths: Sequence[int]) -> None:
        self.max_length = max(lengths, default=0)
        if self.max_length == 0:
            raise HuffmanError("decoder built from an empty code")
        self.count = [0] * (self.max_length + 1)
        ncodes = 0
        for length in lengths:
            if length:
                self.count[length] += 1
                ncodes += 1

        left = 1  # spare code space while walking lengths
        for bits in range(1, self.max_length + 1):
            left = (left << 1) - self.count[bits]
            if left < 0:
                raise HuffmanError("over-subscribed Huffman code")
        if left > 0 and ncodes > 1:
            raise HuffmanError("incomplete Huffman code")

        # Symbols sorted by (length, symbol), as canonical order demands.
        offsets = [0] * (self.max_length + 2)
        for bits in range(1, self.max_length + 1):
            offsets[bits + 1] = offsets[bits] + self.count[bits]
        self.symbols = [0] * ncodes
        for sym, length in enumerate(lengths):
            if length:
                self.symbols[offsets[length]] = sym
                offsets[length] += 1

        self._build_fast_table(lengths)

    def _build_fast_table(self, lengths: Sequence[int]) -> None:
        natural = canonical_codes(lengths)
        self._fast: list[tuple[int, int] | None] = [None] * (1 << _ROOT_BITS)
        for sym, length in enumerate(lengths):
            if not length or length > _ROOT_BITS:
                continue
            prefix = _reverse_bits(natural[sym], length)
            step = 1 << length
            for fill in range(prefix, 1 << _ROOT_BITS, step):
                self._fast[fill] = (sym, length)

    def decode(self, reader: BitReader) -> int:
        entry = self._fast[reader.peek_bits(_ROOT_BITS)]
        if entry is not None:
            reader.skip_bits(entry[1])
            return entry[0]
        return self._decode_slow(reader)

    def _decode_slow(self, reader: BitReader) -> int:
        code = 0
        first = 0
        index = 0
        for length in range(1, self.max_length + 1):
            code |= reader.read_bits(1)
            count = self.count[length]
            if code - first < count:
                return self.symbols[index + (code - first)]
            index += count
            first = (first + count) << 1
            code <<= 1
        raise HuffmanError("ran out of codes while decoding")
