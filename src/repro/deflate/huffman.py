"""Canonical Huffman coding for DEFLATE.

Three pieces live here:

* :func:`limited_code_lengths` — optimal length-limited code construction
  via the package-merge algorithm (the hardware DHT generator and the
  software baseline both build on it);
* :func:`canonical_codes` — RFC 1951 canonical code assignment from a list
  of code lengths;
* :class:`HuffmanEncoder` / :class:`HuffmanDecoder` — bit-level symbol
  encode/decode against a canonical code.

The decoder's fast path is a flat ``array('H')`` lookup table covering
codes up to ``_ROOT_BITS`` bits, each entry packing ``sym << 5 | length``
(0 means "not in the table": fall back to the bit-by-bit counting walk of
Mark Adler's *puff*).  Bit reversal is table-driven, and the table is
built in a single canonical walk over the ``(length, symbol)``-sorted
symbols — no second :func:`canonical_codes` pass.  ``decode_run`` is the
inflate hot loop: it keeps the reader's bit buffer in locals across
symbols and appends decoded literals straight into the output buffer.
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence

from ..errors import DeflateError, HuffmanError
from .bitio import BitReader, BitWriter

_ROOT_BITS = 11  # fast decode table covers codes up to this many bits
_ROOT_MASK = (1 << _ROOT_BITS) - 1

# 8-bit reversal table; wider reversals compose two byte lookups.
_REV8 = tuple(
    sum(((value >> bit) & 1) << (7 - bit) for bit in range(8))
    for value in range(256)
)


def _reverse_bits(value: int, nbits: int) -> int:
    """Reverse the low ``nbits`` bits of ``value`` (nbits <= 16)."""
    rev16 = (_REV8[value & 0xFF] << 8) | _REV8[(value >> 8) & 0xFF]
    return rev16 >> (16 - nbits)


def limited_code_lengths(freqs: Sequence[int], max_length: int) -> list[int]:
    """Return optimal code lengths bounded by ``max_length``.

    Implements package-merge.  Symbols with zero frequency get length 0.
    A single-symbol alphabet gets length 1 (DEFLATE cannot express a
    zero-bit code).
    """
    used = [i for i, f in enumerate(freqs) if f > 0]
    lengths = [0] * len(freqs)
    if not used:
        return lengths
    if len(used) == 1:
        lengths[used[0]] = 1
        return lengths
    if len(used) > (1 << max_length):
        raise HuffmanError(
            f"{len(used)} symbols cannot fit in {max_length}-bit codes")

    # Items are (weight, serial, leaf_symbols).  The serial breaks weight
    # ties deterministically so output is stable across runs.
    serial = 0
    leaves = []
    for sym in used:
        leaves.append((freqs[sym], serial, (sym,)))
        serial += 1
    leaves.sort()

    current = list(leaves)
    for _ in range(max_length - 1):
        packages = []
        for k in range(0, len(current) - 1, 2):
            a, b = current[k], current[k + 1]
            packages.append((a[0] + b[0], serial, a[2] + b[2]))
            serial += 1
        current = sorted(leaves + packages)

    for item in current[:2 * len(used) - 2]:
        for sym in item[2]:
            lengths[sym] += 1
    return lengths


def canonical_codes(lengths: Sequence[int]) -> list[int]:
    """Assign canonical code values per RFC 1951 section 3.2.2.

    Returned codes are in natural (MSB-first) order; callers that write
    them LSB-first must bit-reverse (see :class:`HuffmanEncoder`).
    """
    max_length = max(lengths, default=0)
    bl_count = [0] * (max_length + 1)
    for length in lengths:
        if length:
            bl_count[length] += 1

    code = 0
    next_code = [0] * (max_length + 1)
    for bits in range(1, max_length + 1):
        code = (code + bl_count[bits - 1]) << 1
        next_code[bits] = code
        if next_code[bits] + bl_count[bits] > (1 << bits):
            raise HuffmanError(f"over-subscribed code at length {bits}")

    codes = [0] * len(lengths)
    for sym, length in enumerate(lengths):
        if length:
            codes[sym] = next_code[length]
            next_code[length] += 1
    return codes


def kraft_sum(lengths: Sequence[int]) -> float:
    """Kraft inequality sum; exactly 1.0 for a complete prefix code."""
    return sum(2.0 ** -length for length in lengths if length)


class HuffmanEncoder:
    """Encodes symbols of one canonical code into a :class:`BitWriter`."""

    def __init__(self, lengths: Sequence[int]) -> None:
        self.lengths = list(lengths)
        natural = canonical_codes(lengths)
        self.codes = [
            _reverse_bits(code, length) if length else 0
            for code, length in zip(natural, lengths)
        ]

    def encode(self, writer: BitWriter, symbol: int) -> None:
        length = self.lengths[symbol]
        if not length:
            raise HuffmanError(f"symbol {symbol} has no code")
        writer.write_bits(self.codes[symbol], length)

    def cost(self, symbol: int) -> int:
        """Bit cost of ``symbol`` (0 means the symbol is not in the code)."""
        return self.lengths[symbol]


class HuffmanDecoder:
    """Decodes one canonical code from a :class:`BitReader`.

    Uses the counting method of Mark Adler's *puff*, fronted by a flat
    ``2**_ROOT_BITS`` packed-``array`` lookup table for codes short
    enough to fit.  An *incomplete* code is accepted only in the
    single-code case, which RFC 1951 tolerates for distance codes.
    """

    def __init__(self, lengths: Sequence[int]) -> None:
        self.max_length = max(lengths, default=0)
        if self.max_length == 0:
            raise HuffmanError("decoder built from an empty code")
        self.count = [0] * (self.max_length + 1)
        ncodes = 0
        for length in lengths:
            if length:
                self.count[length] += 1
                ncodes += 1

        left = 1  # spare code space while walking lengths
        for bits in range(1, self.max_length + 1):
            left = (left << 1) - self.count[bits]
            if left < 0:
                raise HuffmanError("over-subscribed Huffman code")
        if left > 0 and ncodes > 1:
            raise HuffmanError("incomplete Huffman code")

        # Symbols sorted by (length, symbol), as canonical order demands.
        offsets = [0] * (self.max_length + 2)
        for bits in range(1, self.max_length + 1):
            offsets[bits + 1] = offsets[bits] + self.count[bits]
        self.symbols = [0] * ncodes
        for sym, length in enumerate(lengths):
            if length:
                self.symbols[offsets[length]] = sym
                offsets[length] += 1

        self._build_fast_table()

    def _build_fast_table(self) -> None:
        """Flat packed root table, built in one canonical walk.

        ``self.symbols`` is already in (length, symbol) canonical order,
        so walking it while advancing the canonical code counter yields
        every code without a second :func:`canonical_codes` pass.  Each
        entry packs ``sym << 5 | code_length``; 0 marks codes longer
        than ``_ROOT_BITS`` (or unused patterns of an incomplete code).
        """
        fast = array("H", bytes(2 << _ROOT_BITS))
        rev8 = _REV8
        code = 0
        index = 0
        table_size = 1 << _ROOT_BITS
        for length in range(1, min(self.max_length, _ROOT_BITS) + 1):
            for _ in range(self.count[length]):
                sym = self.symbols[index]
                rev16 = (rev8[code & 0xFF] << 8) | rev8[(code >> 8) & 0xFF]
                prefix = rev16 >> (16 - length)
                packed = (sym << 5) | length
                step = 1 << length
                for fill in range(prefix, table_size, step):
                    fast[fill] = packed
                index += 1
                code += 1
            code <<= 1
        self._fast = fast

    def decode(self, reader: BitReader) -> int:
        entry = self._fast[reader.peek_bits(_ROOT_BITS)]
        if entry:
            reader.skip_bits(entry & 31)
            return entry >> 5
        return self._decode_slow(reader)

    def decode_run(self, reader: BitReader, out: bytearray,
                   limit: int) -> int:
        """Decode consecutive literal symbols (< 256) into ``out``.

        The inflate hot loop: the reader's bit buffer lives in locals
        across symbols, refilled eight bytes per ``int.from_bytes`` call,
        and literals are appended without per-symbol method dispatch.
        Returns the first symbol >= 256 (length or end-of-block code),
        or -1 after ``limit`` literals were appended (output cap hit).
        """
        data = reader._data
        pos = reader._pos
        bitbuf = reader._bitbuf
        bitcount = reader._bitcount
        fast = self._fast
        append = out.append
        appended = 0
        while True:
            if bitcount < 15:
                chunk = data[pos:pos + 8]
                bitbuf |= int.from_bytes(chunk, "little") << bitcount
                pos += len(chunk)
                bitcount += len(chunk) << 3
            entry = fast[bitbuf & _ROOT_MASK]
            if entry:
                length = entry & 31
                if length > bitcount:
                    raise DeflateError("unexpected end of DEFLATE stream")
                sym = entry >> 5
                bitbuf >>= length
                bitcount -= length
            else:
                reader._pos = pos
                reader._bitbuf = bitbuf
                reader._bitcount = bitcount
                sym = self._decode_slow(reader)
                pos = reader._pos
                bitbuf = reader._bitbuf
                bitcount = reader._bitcount
            if sym < 256:
                append(sym)
                appended += 1
                if appended >= limit:
                    sym = -1
                else:
                    continue
            reader._pos = pos
            reader._bitbuf = bitbuf
            reader._bitcount = bitcount
            return sym

    def _decode_slow(self, reader: BitReader) -> int:
        code = 0
        first = 0
        index = 0
        for length in range(1, self.max_length + 1):
            code |= reader.read_bits(1)
            count = self.count[length]
            if code - first < count:
                return self.symbols[index + (code - first)]
            index += count
            first = (first + count) << 1
            code <<= 1
        raise HuffmanError("ran out of codes while decoding")


_FIXED_DECODERS: tuple[HuffmanDecoder, HuffmanDecoder] | None = None
_FIXED_ENCODERS: tuple[HuffmanEncoder, HuffmanEncoder] | None = None


def fixed_decoders() -> tuple[HuffmanDecoder, HuffmanDecoder]:
    """Module-level cache of the RFC 1951 fixed-code decoders.

    Fixed blocks are common in small streams; rebuilding the 288-symbol
    decoder (and its 512-entry root table) per block was pure waste.
    """
    global _FIXED_DECODERS
    if _FIXED_DECODERS is None:
        from .constants import fixed_dist_lengths, fixed_litlen_lengths
        _FIXED_DECODERS = (HuffmanDecoder(fixed_litlen_lengths()),
                           HuffmanDecoder(fixed_dist_lengths()))
    return _FIXED_DECODERS


def fixed_encoders() -> tuple[HuffmanEncoder, HuffmanEncoder]:
    """Module-level cache of the RFC 1951 fixed-code encoders."""
    global _FIXED_ENCODERS
    if _FIXED_ENCODERS is None:
        from .constants import fixed_dist_lengths, fixed_litlen_lengths
        _FIXED_ENCODERS = (HuffmanEncoder(fixed_litlen_lengths()),
                           HuffmanEncoder(fixed_dist_lengths()))
    return _FIXED_ENCODERS
