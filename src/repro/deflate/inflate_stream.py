"""Incremental DEFLATE decoding: feed arbitrary chunks, get output.

The one-shot :func:`repro.deflate.inflate.inflate` needs the whole
stream; the continuation units of the streaming compressor are decodable
unit-by-unit; but a *general* consumer (a proxy, a tape restore) receives
arbitrary byte chunks that can split the stream anywhere — mid-code,
mid-header, mid-stored-block.  :class:`InflateStream` handles that:

* ``feed(chunk)`` buffers input and decodes as far as it safely can,
  returning the newly produced plaintext;
* ``finish()`` decodes the remainder (it is an error if the stream is
  incomplete) and returns the final bytes.

Safety rule: while more input may arrive, an element is only decoded if
at least ``_SAFE_BITS`` bits are buffered — an upper bound on any single
DEFLATE element (longest litlen code + length extra + longest distance
code + distance extra = 15+5+15+13 = 48 bits) — so the canonical decoder
can never run off the end or mis-decode zero-padding.  ``finish()``
drops the guard, at which point one-shot semantics apply.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from ..errors import DeflateError
from .bitio import BitReader
from .constants import (
    BTYPE_DYNAMIC,
    BTYPE_FIXED,
    BTYPE_STORED,
    CODELEN_ORDER,
    DIST_BASE,
    DIST_EXTRA_BITS,
    END_OF_BLOCK,
    LENGTH_BASE,
    LENGTH_EXTRA_BITS,
    NUM_CODELEN_SYMBOLS,
)
from .huffman import HuffmanDecoder, fixed_decoders

_SAFE_BITS = 64  # > any single element (48) and any header slice


class _State(enum.Enum):
    BLOCK_HEADER = "block-header"
    STORED_LEN = "stored-len"
    STORED_DATA = "stored-data"
    DYN_COUNTS = "dyn-counts"
    DYN_CODELEN = "dyn-codelen"
    DYN_LENGTHS = "dyn-lengths"
    SYMBOLS = "symbols"
    DONE = "done"


@dataclass
class InflateStream:
    """Resumable raw-DEFLATE decoder.

    ``on_block_boundary(bit_offset, is_final)`` — when set — fires at
    the end of every block with the **absolute** bit offset of the next
    element (stable across input compaction) and whether the block that
    just ended carried BFINAL.  Inside the callback :meth:`window` and
    :attr:`produced` describe the decode state at exactly that
    boundary, which is everything a seek index needs to resume there.
    """

    history: bytes = b""
    max_output: int = 1 << 31
    on_block_boundary: Callable[[int, bool], None] | None = None
    _out: bytearray = field(init=False, repr=False)
    _base: int = field(init=False)

    def __post_init__(self) -> None:
        window = self.history[-32768:]
        self._out = bytearray(window)
        self._base = len(window)
        self._emitted = self._base
        self._buf = bytearray()
        self._bits_consumed = 0  # within _buf
        self._in_base = 0  # bits dropped from _buf by compaction
        self._state = _State.BLOCK_HEADER
        self._final_block = False
        self._stored_left = 0
        self._lit_dec: HuffmanDecoder | None = None
        self._dist_dec: HuffmanDecoder | None = None
        # dynamic-header progress
        self._hlit = 0
        self._hdist = 0
        self._hclen = 0
        self._cl_lengths: list[int] = []
        self._cl_read = 0
        self._cl_dec: HuffmanDecoder | None = None
        self._lengths: list[int] = []

    # -- public API ---------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._state is _State.DONE

    def feed(self, chunk: bytes) -> bytes:
        """Buffer ``chunk``; decode what is safe; return new plaintext."""
        if self._state is _State.DONE and chunk:
            raise DeflateError("data after final block")
        self._buf.extend(chunk)
        return self._drain(conservative=True)

    def finish(self) -> bytes:
        """No more input: decode to the end of the stream."""
        out = self._drain(conservative=False)
        if self._state is not _State.DONE:
            raise DeflateError("truncated DEFLATE stream")
        return out

    def unused_bytes(self) -> bytes:
        """Bytes past the final block (container trailers)."""
        if self._state is not _State.DONE:
            raise DeflateError("stream not finished")
        start = (self._bits_consumed + 7) // 8
        return bytes(self._buf[start:])

    @property
    def trailing_garbage_bytes(self) -> int:
        """How many fed bytes lie past the final block (0 while decoding).

        ``unused_bytes()`` hands the bytes back but their *count* used to
        be implicit; container layers that only need to account for a
        trailer (or report junk after it) read this without copying.
        """
        if self._state is not _State.DONE:
            return 0
        return len(self._buf) - (self._bits_consumed + 7) // 8

    @property
    def produced(self) -> int:
        """Plaintext bytes emitted so far (excludes the history prefix)."""
        return self._emitted - self._base

    def window(self) -> bytes:
        """The current 32 KiB back-reference window (history included).

        A decode resumed from :class:`InflateStream` seeded with this as
        ``history``, at the bit offset the block-boundary callback
        reported, continues byte-identically — the seek-index contract.
        """
        return bytes(self._out[-32768:])

    # -- the resumable decode loop --------------------------------------------

    def _available_bits(self) -> int:
        return len(self._buf) * 8 - self._bits_consumed

    def _drain(self, conservative: bool) -> bytes:
        start_emit = self._emitted
        while self._state is not _State.DONE:
            if conservative and self._available_bits() < _SAFE_BITS \
                    and self._state is not _State.STORED_DATA:
                break
            if not self._step(conservative):
                break
        # Slice the new output BEFORE compaction can trim it away.
        new = bytes(self._out[start_emit - self._trimmed:
                              self._emitted - self._trimmed])
        self._compact()
        return new

    def _step(self, conservative: bool) -> bool:
        """Decode one element; returns False if it needs more input."""
        reader = BitReader(bytes(self._buf),
                           start=self._bits_consumed // 8)
        pre = self._bits_consumed % 8
        if pre:
            reader._fill(pre)
            reader.skip_bits(pre)

        try:
            advanced = self._dispatch(reader, conservative)
        except DeflateError as exc:
            if conservative and "unexpected end" in str(exc):
                return False
            raise
        if advanced:
            # bits_consumed of this reader is absolute within _buf
            self._bits_consumed = reader.bits_consumed
        return advanced

    def _dispatch(self, reader: BitReader, conservative: bool) -> bool:
        state = self._state
        if state is _State.BLOCK_HEADER:
            return self._do_block_header(reader)
        if state is _State.STORED_LEN:
            return self._do_stored_len(reader)
        if state is _State.STORED_DATA:
            return self._do_stored_data(reader)
        if state is _State.DYN_COUNTS:
            return self._do_dyn_counts(reader)
        if state is _State.DYN_CODELEN:
            return self._do_dyn_codelen(reader)
        if state is _State.DYN_LENGTHS:
            return self._do_dyn_lengths(reader, conservative)
        if state is _State.SYMBOLS:
            return self._do_symbols(reader, conservative)
        raise AssertionError(state)

    # -- element decoders ------------------------------------------------------

    def _do_block_header(self, reader: BitReader) -> bool:
        self._final_block = bool(reader.read_bits(1))
        btype = reader.read_bits(2)
        if btype == BTYPE_STORED:
            self._state = _State.STORED_LEN
        elif btype == BTYPE_FIXED:
            self._lit_dec, self._dist_dec = fixed_decoders()
            self._state = _State.SYMBOLS
        elif btype == BTYPE_DYNAMIC:
            self._state = _State.DYN_COUNTS
        else:
            raise DeflateError("reserved block type 3")
        return True

    def _do_stored_len(self, reader: BitReader) -> bool:
        reader.align_to_byte()
        header = reader.read_bytes(4)
        size = header[0] | (header[1] << 8)
        nsize = header[2] | (header[3] << 8)
        if size != (~nsize & 0xFFFF):
            raise DeflateError("stored block LEN/NLEN mismatch")
        self._stored_left = size
        self._state = _State.STORED_DATA
        return True

    def _do_stored_data(self, reader: BitReader) -> bool:
        if self._stored_left == 0:
            self._end_block(reader)
            return True
        available = (len(self._buf) * 8 - reader.bits_consumed) // 8
        take = min(self._stored_left, available)
        if take == 0:
            raise DeflateError("unexpected end of DEFLATE stream")
        chunk = reader.read_bytes(take)
        self._emit(chunk)
        self._stored_left -= take
        if self._stored_left == 0:
            self._end_block(reader)
        return True

    def _do_dyn_counts(self, reader: BitReader) -> bool:
        self._hlit = reader.read_bits(5) + 257
        self._hdist = reader.read_bits(5) + 1
        self._hclen = reader.read_bits(4) + 4
        self._cl_lengths = [0] * NUM_CODELEN_SYMBOLS
        self._cl_read = 0
        self._lengths = []
        self._state = _State.DYN_CODELEN
        return True

    def _do_dyn_codelen(self, reader: BitReader) -> bool:
        while self._cl_read < self._hclen:
            value = reader.read_bits(3)
            self._cl_lengths[CODELEN_ORDER[self._cl_read]] = value
            self._cl_read += 1
            if reader.bits_consumed > len(self._buf) * 8 - _SAFE_BITS:
                self._bits_consumed = reader.bits_consumed
                return self._cl_read == self._hclen or True
        self._cl_dec = HuffmanDecoder(self._cl_lengths)
        self._state = _State.DYN_LENGTHS
        return True

    def _do_dyn_lengths(self, reader: BitReader,
                        conservative: bool) -> bool:
        target = self._hlit + self._hdist
        progressed = False
        while len(self._lengths) < target:
            if conservative and (len(self._buf) * 8
                                 - reader.bits_consumed) < _SAFE_BITS:
                self._bits_consumed = reader.bits_consumed
                return progressed
            sym = self._cl_dec.decode(reader)
            if sym < 16:
                self._lengths.append(sym)
            elif sym == 16:
                if not self._lengths:
                    raise DeflateError("repeat with no previous length")
                self._lengths.extend(
                    [self._lengths[-1]] * (3 + reader.read_bits(2)))
            elif sym == 17:
                self._lengths.extend([0] * (3 + reader.read_bits(3)))
            else:
                self._lengths.extend([0] * (11 + reader.read_bits(7)))
            self._bits_consumed = reader.bits_consumed
            progressed = True
        if len(self._lengths) != target:
            raise DeflateError("code length repeat overflows header")
        lit = self._lengths[:self._hlit]
        dist = self._lengths[self._hlit:]
        if lit[END_OF_BLOCK] == 0:
            raise DeflateError("dynamic block has no end-of-block code")
        self._lit_dec = HuffmanDecoder(lit)
        self._dist_dec = HuffmanDecoder(dist)
        self._state = _State.SYMBOLS
        return True

    def _do_symbols(self, reader: BitReader, conservative: bool) -> bool:
        progressed = False
        while True:
            if conservative and (len(self._buf) * 8
                                 - reader.bits_consumed) < _SAFE_BITS:
                return progressed
            sym = self._lit_dec.decode(reader)
            if sym < 256:
                self._emit(bytes([sym]))
            elif sym == END_OF_BLOCK:
                self._bits_consumed = reader.bits_consumed
                self._end_block(reader)
                return True
            else:
                if sym > 285:
                    raise DeflateError(f"invalid length symbol {sym}")
                idx = sym - 257
                length = LENGTH_BASE[idx] + reader.read_bits(
                    LENGTH_EXTRA_BITS[idx])
                dsym = self._dist_dec.decode(reader)
                if dsym > 29:
                    raise DeflateError(f"invalid distance symbol {dsym}")
                dist = DIST_BASE[dsym] + reader.read_bits(
                    DIST_EXTRA_BITS[dsym])
                if dist > len(self._out) + self._trimmed:
                    raise DeflateError(
                        "back-reference before start of output")
                start = len(self._out) - dist
                if start < 0:
                    raise DeflateError(
                        "back-reference beyond retained window")
                # Append as we copy: overlapping matches (dist < length)
                # must read bytes this very copy produces.
                out = self._out
                for k in range(length):
                    out.append(out[start + k])
                self._emitted += length
                if self._emitted - self._base > self.max_output:
                    raise DeflateError("output exceeds allowed size")
            self._bits_consumed = reader.bits_consumed
            progressed = True

    # -- output management -------------------------------------------------------

    _trimmed: int = 0

    def _emit(self, data: bytes) -> None:
        self._out.extend(data)
        self._emitted += len(data)
        if self._emitted - self._base > self.max_output:
            raise DeflateError("output exceeds allowed size")

    def _end_block(self, reader: BitReader) -> None:
        self._state = (_State.DONE if self._final_block
                       else _State.BLOCK_HEADER)
        if self.on_block_boundary is not None:
            # reader.bits_consumed is exact within the current _buf even
            # when the refill ran ahead; _in_base restores what
            # compaction dropped, so the offset is absolute.
            self.on_block_boundary(self._in_base + reader.bits_consumed,
                                   self._final_block)

    def _compact(self) -> None:
        """Drop fully consumed input bytes and old output beyond the
        window, keeping memory bounded for unbounded streams."""
        drop = self._bits_consumed // 8
        if drop:
            del self._buf[:drop]
            self._bits_consumed -= drop * 8
            self._in_base += drop * 8
        excess = len(self._out) - 32768
        if excess > 0:
            del self._out[:excess]
            self._trimmed += excess


def inflate_incremental(chunks: list[bytes], history: bytes = b"") -> bytes:
    """Convenience: run chunks through an :class:`InflateStream`."""
    stream = InflateStream(history=history)
    out = bytearray()
    for chunk in chunks:
        out += stream.feed(chunk)
    out += stream.finish()
    return bytes(out)
