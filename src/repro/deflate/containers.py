"""zlib (RFC 1950) and gzip (RFC 1952) container formats.

The NX accelerator supports all three wire formats (raw DEFLATE, zlib,
gzip) selected by the CRB function code; these helpers implement the
container framing and checksum verification for both the software baseline
and the accelerator model.
"""

from __future__ import annotations

import struct

from ..errors import ChecksumError, DeflateError
from .checksums import adler32, crc32
from .compress import CompressResult, deflate
from .inflate import inflate_with_stats

ZLIB_CM_DEFLATE = 8
ZLIB_WINDOW_32K = 7
GZIP_MAGIC = b"\x1f\x8b"
GZIP_METHOD_DEFLATE = 8
GZIP_OS_UNKNOWN = 255

_LEVEL_TO_FLEVEL = {0: 0, 1: 0, 2: 0, 3: 0, 4: 1, 5: 1, 6: 2, 7: 2, 8: 3, 9: 3}


def zlib_compress(data: bytes, level: int = 6,
                  zdict: bytes = b"") -> bytes:
    """Compress into an RFC 1950 (zlib) stream.

    ``zdict`` is a preset dictionary; the header then carries FDICT and
    the dictionary's Adler-32 (DICTID), matching zlib's ``compressobj``.
    """
    result = deflate(data, level=level, history=zdict)
    cmf = (ZLIB_WINDOW_32K << 4) | ZLIB_CM_DEFLATE
    flevel = _LEVEL_TO_FLEVEL.get(level, 2)
    flg = (flevel << 6) | (0x20 if zdict else 0)
    header = (cmf << 8) | flg
    header += 31 - header % 31  # FCHECK makes the 16-bit header % 31 == 0
    out = struct.pack(">H", header)
    if zdict:
        out += struct.pack(">I", adler32(zdict))
    return out + result.data + struct.pack(">I", adler32(data))


def zlib_decompress(data: bytes, zdict: bytes = b"") -> bytes:
    """Decompress an RFC 1950 (zlib) stream, verifying Adler-32."""
    if len(data) < 6:
        raise DeflateError("zlib stream too short")
    cmf, flg = data[0], data[1]
    if (cmf & 0x0F) != ZLIB_CM_DEFLATE:
        raise DeflateError(f"unsupported zlib method {cmf & 0x0F}")
    if ((cmf << 8) | flg) % 31 != 0:
        raise DeflateError("zlib header check failed")
    start = 2
    if flg & 0x20:
        if not zdict:
            raise DeflateError("stream needs a preset dictionary")
        dictid = struct.unpack(">I", data[2:6])[0]
        if dictid != adler32(zdict):
            raise ChecksumError("DICTID does not match the dictionary")
        start = 6
    out, _stats, bits = inflate_with_stats(data, start=start,
                                           history=zdict if flg & 0x20
                                           else b"")
    tail = (bits + 7) // 8  # bits_consumed is absolute in the buffer
    if tail + 4 > len(data):
        raise DeflateError("zlib stream truncated before Adler-32")
    expected = struct.unpack(">I", data[tail:tail + 4])[0]
    if adler32(out) != expected:
        raise ChecksumError("Adler-32 mismatch")
    return out


def gzip_compress(data: bytes, level: int = 6,
                  mtime: int = 0) -> bytes:
    """Compress into an RFC 1952 (gzip) member."""
    result = deflate(data, level=level)
    xfl = 2 if level >= 8 else (4 if level <= 2 else 0)
    header = GZIP_MAGIC + bytes([GZIP_METHOD_DEFLATE, 0]) + struct.pack(
        "<I", mtime) + bytes([xfl, GZIP_OS_UNKNOWN])
    trailer = struct.pack("<II", crc32(data), len(data) & 0xFFFFFFFF)
    return header + result.data + trailer


def gzip_decompress(data: bytes) -> bytes:
    """Decompress one RFC 1952 (gzip) member, verifying CRC-32 and ISIZE."""
    if len(data) < 18:
        raise DeflateError("gzip stream too short")
    if data[:2] != GZIP_MAGIC:
        raise DeflateError("bad gzip magic")
    if data[2] != GZIP_METHOD_DEFLATE:
        raise DeflateError(f"unsupported gzip method {data[2]}")
    flg = data[3]
    pos = 10
    if flg & 0x04:  # FEXTRA
        if pos + 2 > len(data):
            raise DeflateError("gzip FEXTRA truncated")
        xlen = struct.unpack_from("<H", data, pos)[0]
        pos += 2 + xlen
    if flg & 0x08:  # FNAME
        pos = data.index(b"\x00", pos) + 1
    if flg & 0x10:  # FCOMMENT
        pos = data.index(b"\x00", pos) + 1
    if flg & 0x02:  # FHCRC
        pos += 2
    out, _stats, bits = inflate_with_stats(data, start=pos)
    tail = (bits + 7) // 8
    if tail + 8 > len(data):
        raise DeflateError("gzip stream truncated before trailer")
    expected_crc, isize = struct.unpack_from("<II", data, tail)
    if crc32(out) != expected_crc:
        raise ChecksumError("gzip CRC-32 mismatch")
    if (len(out) & 0xFFFFFFFF) != isize:
        raise ChecksumError("gzip ISIZE mismatch")
    return out


def deflate_result(data: bytes, level: int = 6) -> CompressResult:
    """Raw-DEFLATE compression returning full statistics."""
    return deflate(data, level=level)


def gzip_member_length(data: bytes, start: int = 0) -> int:
    """Length in bytes of the gzip member starting at ``start``."""
    if data[start:start + 2] != GZIP_MAGIC:
        raise DeflateError("bad gzip magic")
    flg = data[start + 3]
    pos = start + 10
    if flg & 0x04:
        xlen = struct.unpack_from("<H", data, pos)[0]
        pos += 2 + xlen
    if flg & 0x08:
        pos = data.index(b"\x00", pos) + 1
    if flg & 0x10:
        pos = data.index(b"\x00", pos) + 1
    if flg & 0x02:
        pos += 2
    _out, _stats, bits = inflate_with_stats(data, start=pos)
    return (bits + 7) // 8 + 8 - start


def gzip_decompress_members(data: bytes) -> bytes:
    """Decompress a concatenation of gzip members (RFC 1952 section 2.2).

    ``tar``-less archives and per-request accelerator outputs are often
    shipped this way; stdlib ``gzip.decompress`` accepts the same input.
    """
    out = bytearray()
    pos = 0
    while pos < len(data):
        length = gzip_member_length(data, pos)
        out += gzip_decompress(data[pos:pos + length])
        pos += length
    return bytes(out)


def wrap_zlib(deflate_body: bytes, original: bytes) -> bytes:
    """Frame an existing raw-DEFLATE body as an RFC 1950 stream."""
    cmf = (ZLIB_WINDOW_32K << 4) | ZLIB_CM_DEFLATE
    header = (cmf << 8) | (2 << 6)
    header += 31 - header % 31
    return struct.pack(">H", header) + deflate_body + struct.pack(
        ">I", adler32(original))


def wrap_gzip(deflate_body: bytes, original: bytes, mtime: int = 0) -> bytes:
    """Frame an existing raw-DEFLATE body as an RFC 1952 member."""
    header = GZIP_MAGIC + bytes([GZIP_METHOD_DEFLATE, 0]) + struct.pack(
        "<I", mtime) + bytes([0, GZIP_OS_UNKNOWN])
    trailer = struct.pack("<II", crc32(original),
                          len(original) & 0xFFFFFFFF)
    return header + deflate_body + trailer
