"""Raw DEFLATE decompression (RFC 1951), from scratch.

``inflate`` handles all three block types and validates stream structure
strictly; it is used both as the software baseline decompressor and as the
functional core of the NX decompress engine model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DeflateError, OutputOverflow
from .bitio import BitReader
from .constants import (
    BTYPE_DYNAMIC,
    BTYPE_FIXED,
    BTYPE_STORED,
    CODELEN_ORDER,
    DIST_BASE,
    DIST_EXTRA_BITS,
    END_OF_BLOCK,
    LENGTH_BASE,
    LENGTH_EXTRA_BITS,
    NUM_CODELEN_SYMBOLS,
    fixed_dist_lengths,
    fixed_litlen_lengths,
)
from .huffman import HuffmanDecoder


@dataclass
class InflateStats:
    """Decode-side statistics fed to the NX decompressor timing model."""

    literals: int = 0
    matches: int = 0
    match_bytes: int = 0
    blocks: list[int] = field(default_factory=list)

    @property
    def output_bytes(self) -> int:
        return self.literals + self.match_bytes


_FIXED_LIT_DECODER: HuffmanDecoder | None = None
_FIXED_DIST_DECODER: HuffmanDecoder | None = None


def _fixed_decoders() -> tuple[HuffmanDecoder, HuffmanDecoder]:
    global _FIXED_LIT_DECODER, _FIXED_DIST_DECODER
    if _FIXED_LIT_DECODER is None:
        _FIXED_LIT_DECODER = HuffmanDecoder(fixed_litlen_lengths())
        _FIXED_DIST_DECODER = HuffmanDecoder(fixed_dist_lengths())
    return _FIXED_LIT_DECODER, _FIXED_DIST_DECODER


def _read_dynamic_header(
        reader: BitReader) -> tuple[HuffmanDecoder, HuffmanDecoder]:
    hlit = reader.read_bits(5) + 257
    hdist = reader.read_bits(5) + 1
    hclen = reader.read_bits(4) + 4
    cl_lengths = [0] * NUM_CODELEN_SYMBOLS
    for idx in range(hclen):
        cl_lengths[CODELEN_ORDER[idx]] = reader.read_bits(3)
    cl_decoder = HuffmanDecoder(cl_lengths)

    lengths: list[int] = []
    while len(lengths) < hlit + hdist:
        sym = cl_decoder.decode(reader)
        if sym < 16:
            lengths.append(sym)
        elif sym == 16:
            if not lengths:
                raise DeflateError("repeat code with no previous length")
            lengths.extend([lengths[-1]] * (3 + reader.read_bits(2)))
        elif sym == 17:
            lengths.extend([0] * (3 + reader.read_bits(3)))
        else:
            lengths.extend([0] * (11 + reader.read_bits(7)))
    if len(lengths) != hlit + hdist:
        raise DeflateError("code length repeat overflows header")

    lit_lengths = lengths[:hlit]
    dist_lengths = lengths[hlit:]
    if lit_lengths[END_OF_BLOCK] == 0:
        raise DeflateError("dynamic block has no end-of-block code")
    return HuffmanDecoder(lit_lengths), HuffmanDecoder(dist_lengths)


def _inflate_huffman_block(reader: BitReader, out: bytearray,
                           lit_dec: HuffmanDecoder, dist_dec: HuffmanDecoder,
                           stats: InflateStats, max_output: int) -> None:
    while True:
        sym = lit_dec.decode(reader)
        if sym < 256:
            out.append(sym)
            stats.literals += 1
        elif sym == END_OF_BLOCK:
            return
        else:
            if sym > 285:
                raise DeflateError(f"invalid length symbol {sym}")
            idx = sym - 257
            length = LENGTH_BASE[idx] + reader.read_bits(LENGTH_EXTRA_BITS[idx])
            dsym = dist_dec.decode(reader)
            if dsym > 29:
                raise DeflateError(f"invalid distance symbol {dsym}")
            dist = DIST_BASE[dsym] + reader.read_bits(DIST_EXTRA_BITS[dsym])
            if dist > len(out):
                raise DeflateError("back-reference before start of output")
            start = len(out) - dist
            for k in range(length):
                out.append(out[start + k])
            stats.matches += 1
            stats.match_bytes += length
        if len(out) > max_output:
            raise OutputOverflow("output exceeds allowed size")


def inflate_with_stats(data: bytes, start: int = 0,
                       max_output: int = 1 << 31,
                       history: bytes = b"") -> tuple[
                           bytes, InflateStats, int]:
    """Decode a raw DEFLATE stream.

    ``history`` is the preset dictionary the stream was compressed
    against; it seeds the back-reference window but is not returned.
    Returns ``(output, stats, bits_consumed)`` so container layers can
    find the trailing checksum.
    """
    reader = BitReader(data, start=start)
    from .constants import WINDOW_SIZE as _W

    history = history[-_W:]
    out = bytearray(history)
    base = len(history)
    stats = InflateStats()
    while True:
        final = reader.read_bits(1)
        btype = reader.read_bits(2)
        stats.blocks.append(btype)
        if btype == BTYPE_STORED:
            reader.align_to_byte()
            header = reader.read_bytes(4)
            size = header[0] | (header[1] << 8)
            nsize = header[2] | (header[3] << 8)
            if size != (~nsize & 0xFFFF):
                raise DeflateError("stored block LEN/NLEN mismatch")
            chunk = reader.read_bytes(size)
            out.extend(chunk)
            stats.literals += size
            if len(out) > max_output + base:
                raise OutputOverflow("output exceeds allowed size")
        elif btype == BTYPE_FIXED:
            lit_dec, dist_dec = _fixed_decoders()
            _inflate_huffman_block(reader, out, lit_dec, dist_dec,
                                   stats, max_output + base)
        elif btype == BTYPE_DYNAMIC:
            lit_dec, dist_dec = _read_dynamic_header(reader)
            _inflate_huffman_block(reader, out, lit_dec, dist_dec,
                                   stats, max_output + base)
        else:
            raise DeflateError("reserved block type 3")
        if final:
            break
    return bytes(out[base:]), stats, reader.bits_consumed


def inflate(data: bytes) -> bytes:
    """Decode a raw DEFLATE stream and return the output bytes."""
    out, _stats, _bits = inflate_with_stats(data)
    return out
