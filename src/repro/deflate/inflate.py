"""Raw DEFLATE decompression (RFC 1951), from scratch.

``inflate`` handles all three block types and validates stream structure
strictly; it is used both as the software baseline decompressor and as the
functional core of the NX decompress engine model.

The Huffman-block loop is batch-oriented: literal runs are decoded by
:meth:`HuffmanDecoder.decode_run` (bit buffer in locals, one append per
literal), non-overlapping back-references are copied with one slice
``extend``, and overlapping runs are materialised by periodic repetition
of the ``dist``-byte seed instead of a per-byte append loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DeflateError, OutputOverflow
from ..obs.trace import TRACE as _TRACE
from .bitio import BitReader
from .constants import (
    BTYPE_DYNAMIC,
    BTYPE_FIXED,
    BTYPE_STORED,
    CODELEN_ORDER,
    DIST_BASE,
    DIST_EXTRA_BITS,
    END_OF_BLOCK,
    LENGTH_BASE,
    LENGTH_EXTRA_BITS,
    NUM_CODELEN_SYMBOLS,
)
from .huffman import _ROOT_MASK, HuffmanDecoder, fixed_decoders

_BIT_MASKS = tuple((1 << n) - 1 for n in range(32))


@dataclass
class InflateStats:
    """Decode-side statistics fed to the NX decompressor timing model."""

    literals: int = 0
    matches: int = 0
    match_bytes: int = 0
    blocks: list[int] = field(default_factory=list)

    @property
    def output_bytes(self) -> int:
        return self.literals + self.match_bytes


def _read_dynamic_header(
        reader: BitReader) -> tuple[HuffmanDecoder, HuffmanDecoder]:
    hlit = reader.read_bits(5) + 257
    hdist = reader.read_bits(5) + 1
    hclen = reader.read_bits(4) + 4
    cl_lengths = [0] * NUM_CODELEN_SYMBOLS
    for idx in range(hclen):
        cl_lengths[CODELEN_ORDER[idx]] = reader.read_bits(3)
    cl_decoder = HuffmanDecoder(cl_lengths)

    lengths: list[int] = []
    while len(lengths) < hlit + hdist:
        sym = cl_decoder.decode(reader)
        if sym < 16:
            lengths.append(sym)
        elif sym == 16:
            if not lengths:
                raise DeflateError("repeat code with no previous length")
            lengths.extend([lengths[-1]] * (3 + reader.read_bits(2)))
        elif sym == 17:
            lengths.extend([0] * (3 + reader.read_bits(3)))
        else:
            lengths.extend([0] * (11 + reader.read_bits(7)))
    if len(lengths) != hlit + hdist:
        raise DeflateError("code length repeat overflows header")

    lit_lengths = lengths[:hlit]
    dist_lengths = lengths[hlit:]
    if lit_lengths[END_OF_BLOCK] == 0:
        raise DeflateError("dynamic block has no end-of-block code")
    return HuffmanDecoder(lit_lengths), HuffmanDecoder(dist_lengths)


def _inflate_huffman_block(reader: BitReader, out: bytearray,
                           lit_dec: HuffmanDecoder, dist_dec: HuffmanDecoder,
                           stats: InflateStats, max_output: int) -> None:
    """Decode one Huffman block — the decompressor's hot loop.

    Everything lives in locals: the reader's bit buffer (refilled eight
    bytes per ``int.from_bytes``, at most once per token since a full
    token needs <= 48 bits), both flat fast tables, and the stats
    counters (folded into ``stats`` at end-of-block).  Literal runs spin
    in an inner loop — a single range test on the packed table entry
    (``0 < entry < 8192``) classifies "in-table literal".  Only codes
    longer than the root table fall back to the decoders' counting walk.
    """
    data = reader._data
    pos = reader._pos
    bitbuf = reader._bitbuf
    bitcount = reader._bitcount
    lit_fast = lit_dec._fast
    dist_fast = dist_dec._fast
    root_mask = _ROOT_MASK
    masks = _BIT_MASKS
    length_base = LENGTH_BASE
    length_extra = LENGTH_EXTRA_BITS
    dist_base = DIST_BASE
    dist_extra = DIST_EXTRA_BITS
    append = out.append
    budget = max_output - len(out)
    literals = 0
    matches = 0
    match_bytes = 0
    while True:
        if bitcount < 48:
            chunk = data[pos:pos + 8]
            bitbuf |= int.from_bytes(chunk, "little") << bitcount
            pos += len(chunk)
            bitcount += len(chunk) << 3
        entry = lit_fast[bitbuf & root_mask]
        while 0 < entry < 8192:  # sym < 256: in-table literal
            nb = entry & 31
            if nb > bitcount:
                raise DeflateError("unexpected end of DEFLATE stream")
            bitbuf >>= nb
            bitcount -= nb
            append(entry >> 5)
            literals += 1
            budget -= 1
            if budget < 0:
                stats.literals += literals
                raise OutputOverflow("output exceeds allowed size")
            if bitcount < 15:
                chunk = data[pos:pos + 8]
                bitbuf |= int.from_bytes(chunk, "little") << bitcount
                pos += len(chunk)
                bitcount += len(chunk) << 3
            entry = lit_fast[bitbuf & root_mask]
        # The inner loop only guarantees 15 buffered bits, a full match
        # needs up to 40: top up (low bits are untouched, so ``entry``
        # computed before the refill stays valid).
        if bitcount < 48:
            chunk = data[pos:pos + 8]
            bitbuf |= int.from_bytes(chunk, "little") << bitcount
            pos += len(chunk)
            bitcount += len(chunk) << 3
        if entry:
            nb = entry & 31
            if nb > bitcount:
                raise DeflateError("unexpected end of DEFLATE stream")
            sym = entry >> 5
            bitbuf >>= nb
            bitcount -= nb
        else:
            reader._pos = pos
            reader._bitbuf = bitbuf
            reader._bitcount = bitcount
            sym = lit_dec._decode_slow(reader)
            pos = reader._pos
            bitbuf = reader._bitbuf
            bitcount = reader._bitcount
            if sym < 256:
                append(sym)
                literals += 1
                budget -= 1
                if budget < 0:
                    stats.literals += literals
                    raise OutputOverflow("output exceeds allowed size")
                continue
        if sym == END_OF_BLOCK:
            reader._pos = pos
            reader._bitbuf = bitbuf
            reader._bitcount = bitcount
            stats.literals += literals
            stats.matches += matches
            stats.match_bytes += match_bytes
            return
        if sym > 285:
            raise DeflateError(f"invalid length symbol {sym}")
        idx = sym - 257
        eb = length_extra[idx]
        if eb > bitcount:
            raise DeflateError("unexpected end of DEFLATE stream")
        length = length_base[idx] + (bitbuf & masks[eb])
        bitbuf >>= eb
        bitcount -= eb
        entry = dist_fast[bitbuf & root_mask]
        if entry:
            nb = entry & 31
            if nb > bitcount:
                raise DeflateError("unexpected end of DEFLATE stream")
            dsym = entry >> 5
            bitbuf >>= nb
            bitcount -= nb
        else:
            reader._pos = pos
            reader._bitbuf = bitbuf
            reader._bitcount = bitcount
            dsym = dist_dec._decode_slow(reader)
            pos = reader._pos
            bitbuf = reader._bitbuf
            bitcount = reader._bitcount
        if dsym > 29:
            raise DeflateError(f"invalid distance symbol {dsym}")
        eb = dist_extra[dsym]
        if eb > bitcount:
            raise DeflateError("unexpected end of DEFLATE stream")
        dist = dist_base[dsym] + (bitbuf & masks[eb])
        bitbuf >>= eb
        bitcount -= eb
        start = len(out) - dist
        if start < 0:
            raise DeflateError("back-reference before start of output")
        if dist >= length:
            out += out[start:start + length]
        else:
            # Overlapping run: the copy is periodic with period ``dist``,
            # so repeat the seed instead of appending byte by byte.
            seed = bytes(out[start:])
            out += seed * (length // dist) + seed[:length % dist]
        matches += 1
        match_bytes += length
        budget -= length
        if budget < 0:
            stats.literals += literals
            raise OutputOverflow("output exceeds allowed size")


def inflate_with_stats(data: bytes, start: int = 0,
                       max_output: int = 1 << 31,
                       history: bytes = b"") -> tuple[
                           bytes, InflateStats, int]:
    """Decode a raw DEFLATE stream.

    ``history`` is the preset dictionary the stream was compressed
    against; it seeds the back-reference window but is not returned.
    Returns ``(output, stats, bits_consumed)`` so container layers can
    find the trailing checksum.
    """
    if _TRACE.enabled:
        with _TRACE.span("inflate.kernel", nbytes=len(data)) as span:
            result = inflate_core(data, start, max_output, history)
            span.set(out_bytes=len(result[0]))
            return result
    return inflate_core(data, start, max_output, history)


def inflate_core(data: bytes, start: int = 0,
                 max_output: int = 1 << 31,
                 history: bytes = b"") -> tuple[bytes, InflateStats, int]:
    """:func:`inflate_with_stats` without the telemetry guard."""
    reader = BitReader(data, start=start)
    from .constants import WINDOW_SIZE as _W

    history = history[-_W:]
    out = bytearray(history)
    base = len(history)
    stats = InflateStats()
    while True:
        final = reader.read_bits(1)
        btype = reader.read_bits(2)
        stats.blocks.append(btype)
        if btype == BTYPE_STORED:
            reader.align_to_byte()
            header = reader.read_bytes(4)
            size = header[0] | (header[1] << 8)
            nsize = header[2] | (header[3] << 8)
            if size != (~nsize & 0xFFFF):
                raise DeflateError("stored block LEN/NLEN mismatch")
            chunk = reader.read_bytes(size)
            out.extend(chunk)
            stats.literals += size
            if len(out) > max_output + base:
                raise OutputOverflow("output exceeds allowed size")
        elif btype == BTYPE_FIXED:
            lit_dec, dist_dec = fixed_decoders()
            _inflate_huffman_block(reader, out, lit_dec, dist_dec,
                                   stats, max_output + base)
        elif btype == BTYPE_DYNAMIC:
            lit_dec, dist_dec = _read_dynamic_header(reader)
            _inflate_huffman_block(reader, out, lit_dec, dist_dec,
                                   stats, max_output + base)
        else:
            raise DeflateError("reserved block type 3")
        if final:
            break
    return bytes(out[base:]), stats, reader.bits_consumed


def inflate(data: bytes) -> bytes:
    """Decode a raw DEFLATE stream and return the output bytes."""
    out, _stats, _bits = inflate_with_stats(data)
    return out


def _fixed_decoders() -> tuple[HuffmanDecoder, HuffmanDecoder]:
    """Back-compat alias; the cache now lives in :mod:`.huffman`."""
    return fixed_decoders()
