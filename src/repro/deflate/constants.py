"""Fixed tables from RFC 1951 shared by the compressor and decompressor."""

from __future__ import annotations

# Block types (the 2-bit BTYPE field).
BTYPE_STORED = 0
BTYPE_FIXED = 1
BTYPE_DYNAMIC = 2

# Symbol alphabet sizes.
NUM_LITLEN_SYMBOLS = 288  # 0..255 literals, 256 EOB, 257..285 lengths (+2 reserved)
NUM_DIST_SYMBOLS = 30
NUM_CODELEN_SYMBOLS = 19
END_OF_BLOCK = 256

MAX_MATCH = 258
MIN_MATCH = 3
WINDOW_SIZE = 32768
MAX_CODE_LENGTH = 15
MAX_CODELEN_CODE_LENGTH = 7

# Length codes 257..285: (extra bits, base length).  RFC 1951 section 3.2.5.
LENGTH_EXTRA_BITS = (
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
    3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
)
LENGTH_BASE = (
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
    35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258,
)

# Distance codes 0..29: (extra bits, base distance).
DIST_EXTRA_BITS = (
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
    7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13,
)
DIST_BASE = (
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
    257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145,
    8193, 12289, 16385, 24577,
)

# Order in which code-length code lengths appear in the dynamic header.
CODELEN_ORDER = (16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15)


def _build_length_code_lut() -> tuple[int, ...]:
    """Map match length (3..258) -> length symbol (257..285)."""
    lut = [0] * (MAX_MATCH + 1)
    for code, (base, extra) in enumerate(zip(LENGTH_BASE, LENGTH_EXTRA_BITS)):
        top = base + (1 << extra) - 1
        if code == len(LENGTH_BASE) - 1:
            top = base  # code 285 covers length 258 only
        for length in range(base, min(top, MAX_MATCH) + 1):
            lut[length] = 257 + code
    lut[MAX_MATCH] = 285
    return tuple(lut)


def _build_dist_code_lut() -> tuple[int, ...]:
    """Map distance (1..32768) -> distance symbol (0..29)."""
    lut = [0] * (WINDOW_SIZE + 1)
    for code, (base, extra) in enumerate(zip(DIST_BASE, DIST_EXTRA_BITS)):
        top = min(base + (1 << extra) - 1, WINDOW_SIZE)
        for dist in range(base, top + 1):
            lut[dist] = code
    return tuple(lut)


LENGTH_TO_CODE = _build_length_code_lut()
DIST_TO_CODE = _build_dist_code_lut()


def fixed_litlen_lengths() -> list[int]:
    """Code lengths of the fixed literal/length Huffman code."""
    lengths = [8] * 144 + [9] * 112 + [7] * 24 + [8] * 8
    assert len(lengths) == NUM_LITLEN_SYMBOLS
    return lengths


def fixed_dist_lengths() -> list[int]:
    """Code lengths of the fixed distance code (all 5 bits).

    The code is complete over 32 symbols; 30 and 31 are reserved and
    never legal in a stream, but they must be present for the decoder to
    see a complete code (RFC 1951 section 3.2.6).
    """
    return [5] * 32
