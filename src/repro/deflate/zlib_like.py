"""A zlib-shaped facade over the from-scratch codec.

Mirrors the parts of CPython's ``zlib`` module API that the rest of the
repository (and downstream users porting code) need: one-shot
``compress``/``decompress`` with the container formats selected by
``wbits``, plus streaming ``compressobj``/``decompressobj`` with window
carry across chunks.

``wbits`` semantics follow zlib: positive = zlib container, negative =
raw DEFLATE, ``16 + n`` = gzip.  (Window sizes other than 15 are
accepted but the codec always uses the full 32 KB window.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DeflateError
from .checksums import adler32, crc32
from .compress import deflate
from .constants import WINDOW_SIZE
from .containers import (
    gzip_compress,
    gzip_decompress,
    wrap_gzip,
    wrap_zlib,
    zlib_compress,
    zlib_decompress,
)
from .inflate import inflate, inflate_with_stats


def _container(wbits: int) -> str:
    if wbits >= 16 + 8:
        return "gzip"
    if wbits > 0:
        return "zlib"
    if wbits < 0:
        return "raw"
    raise DeflateError("wbits must not be 0")


def compress(data: bytes, level: int = 6, wbits: int = 15,
             zdict: bytes = b"") -> bytes:
    """One-shot compression in the container selected by ``wbits``."""
    fmt = _container(wbits)
    if fmt == "zlib":
        return zlib_compress(data, level=level, zdict=zdict)
    if fmt == "gzip":
        if zdict:
            raise DeflateError("gzip container does not carry a DICTID")
        return gzip_compress(data, level=level)
    return deflate(data, level=level, history=zdict).data


def decompress(payload: bytes, wbits: int = 15,
               zdict: bytes = b"") -> bytes:
    """One-shot decompression per ``wbits``."""
    fmt = _container(wbits)
    if fmt == "zlib":
        return zlib_decompress(payload, zdict=zdict)
    if fmt == "gzip":
        return gzip_decompress(payload)
    out, _stats, _bits = inflate_with_stats(payload, history=zdict)
    return out


@dataclass
class CompressObj:
    """Streaming compressor: ``compress(chunk)*`` then ``flush()``.

    Each ``compress`` call emits one continuable unit (full-flush
    semantics, so output is available immediately); ``flush`` closes the
    stream and appends the container trailer.
    """

    level: int = 6
    wbits: int = -15
    zdict: bytes = b""
    strategy: str = "default"
    _history: bytes = field(default=b"", repr=False)
    _crc: int = 0
    _adler: int = 1
    _size: int = 0
    _started: bool = False
    _finished: bool = False
    _raw_parts: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self._fmt = _container(self.wbits)
        self._history = self.zdict[-WINDOW_SIZE:]

    def compress(self, chunk: bytes) -> bytes:
        if self._finished:
            raise DeflateError("compressobj already flushed")
        self._started = True
        unit = deflate(chunk, level=self.level, history=self._history,
                       strategy=self.strategy, final=False).data
        self._account(chunk)
        self._raw_parts.append(unit)
        return b""  # output delivered at flush, like zlib's default mode

    def flush(self, last_chunk: bytes = b"") -> bytes:
        if self._finished:
            raise DeflateError("compressobj already flushed")
        self._finished = True
        unit = deflate(last_chunk, level=self.level,
                       history=self._history, strategy=self.strategy,
                       final=True).data
        self._account(last_chunk)
        self._raw_parts.append(unit)
        body = b"".join(self._raw_parts)
        if self._fmt == "raw":
            return body
        if self._fmt == "zlib":
            framed = wrap_zlib(body, b"")
            # Rebuild the trailer from the running Adler-32.
            return framed[:-4] + self._adler.to_bytes(4, "big")
        framed = wrap_gzip(body, b"")
        return (framed[:-8] + self._crc.to_bytes(4, "little")
                + (self._size & 0xFFFFFFFF).to_bytes(4, "little"))

    def _account(self, chunk: bytes) -> None:
        self._crc = crc32(chunk, self._crc)
        self._adler = adler32(chunk, self._adler)
        self._size += len(chunk)
        self._history = (self._history + chunk)[-WINDOW_SIZE:]


@dataclass
class DecompressObj:
    """Streaming decompressor over full-flush unit boundaries.

    ``decompress(unit)`` decodes one unit produced by
    :class:`CompressObj` (or any encoder that full-flushes at the same
    boundaries), carrying the window across calls.
    """

    zdict: bytes = b""
    _history: bytes = field(default=b"", repr=False)

    def __post_init__(self) -> None:
        self._history = self.zdict[-WINDOW_SIZE:]

    def decompress(self, unit: bytes, final: bool = False) -> bytes:
        payload = unit if final else unit + b"\x01\x00\x00\xff\xff"
        out, _stats, _bits = inflate_with_stats(payload,
                                                history=self._history)
        self._history = (self._history + out)[-WINDOW_SIZE:]
        return out


def compressobj(level: int = 6, wbits: int = -15,
                zdict: bytes = b"") -> CompressObj:
    """zlib-style constructor."""
    return CompressObj(level=level, wbits=wbits, zdict=zdict)


def decompressobj(zdict: bytes = b"") -> DecompressObj:
    """zlib-style constructor (raw units only)."""
    return DecompressObj(zdict=zdict)


__all__ = [
    "compress",
    "decompress",
    "compressobj",
    "decompressobj",
    "CompressObj",
    "DecompressObj",
    "inflate",
]
