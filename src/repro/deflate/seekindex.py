"""Versioned seek index for DEFLATE/gzip streams (random reads).

DEFLATE's back-reference window makes a compressed stream a chain: byte
N can only be decoded after the 32 KiB before it.  A seek index breaks
the chain the way *rapidgzip* and BGZF-style tools do — it records, at
selected block boundaries, everything a decoder needs to resume there
cold: the boundary's absolute **bit** offset, the 32 KiB window at that
point, and the running CRC-32 of the current gzip member so trailer
verification still works for reads that cross a member end.

Format v1 (all integers little-endian)::

    magic   4s   b"RSIX"
    version u16  format version (this module writes 1)
    fmt     u8   0=raw 1=gzip 2=zlib
    flags   u8   reserved, 0
    npoints u32
    csize   u64  compressed payload size the index was built for
    osize   u64  total uncompressed size
    members u32  gzip member count (1 for raw/zlib)
    npoints x point:
        bit_offset        u64  absolute bit offset of a block boundary
        out_offset        u64  global uncompressed offset there
        member            u32  gzip member index (0-based)
        member_out_offset u64  uncompressed offset within that member
        crc               u32  running CRC-32 of the member so far
        wkind             u8   0 = raw window bytes, 1 = deflated
        wlen              u16  uncompressed window length (<= 32768)
        stored            u32  stored window byte count
        window            `stored` bytes
    crc32   u32  CRC-32 of everything above

Unknown versions, truncation, and checksum mismatches all raise the
typed :class:`~repro.errors.SeekIndexError`: an unreadable index must
never steer a decode toward wrong bytes — callers fall back to a full
serial decode instead.

:func:`build_index` walks a stream **serially** through
:class:`~repro.deflate.inflate_stream.InflateStream`'s block-boundary
callback; the parallel engine in :mod:`.parallel_inflate` records the
same points as a side effect of any full decode.
"""

from __future__ import annotations

import os
import struct
import tempfile
from bisect import bisect_right
from dataclasses import dataclass, field

from ..errors import ChecksumError, DeflateError, SeekIndexError
from .checksums import crc32
from .inflate_stream import InflateStream

MAGIC = b"RSIX"
VERSION = 1

#: Default gap between recorded points (uncompressed bytes): one point
#: per MiB keeps the index ~3 % of output size with raw windows, far
#: less once the windows are deflated.
DEFAULT_SPACING = 1 << 20

_WINDOW = 32768
_FMT_CODES = {"raw": 0, "gzip": 1, "zlib": 2}
_FMT_NAMES = {code: name for name, code in _FMT_CODES.items()}

_HEADER = struct.Struct("<4sHBBIQQI")
_POINT = struct.Struct("<QQIQIBHI")


@dataclass(frozen=True)
class SeekPoint:
    """One resumable block boundary."""

    bit_offset: int          # absolute bit offset into the payload
    out_offset: int          # global uncompressed offset at the boundary
    member: int              # gzip member index (0 for raw/zlib)
    member_out_offset: int   # uncompressed offset within that member
    crc: int                 # running CRC-32 of the member's output so far
    window: bytes            # back-reference window (b"" at member start)


@dataclass
class SeekIndex:
    """Seek points for one compressed payload, serialisable to v1."""

    fmt: str
    compressed_size: int
    output_size: int
    members: int
    points: list[SeekPoint] = field(default_factory=list)
    version: int = VERSION

    def locate(self, offset: int) -> SeekPoint:
        """The latest point at or before uncompressed ``offset``."""
        if not self.points:
            raise SeekIndexError("seek index has no points")
        offsets = [p.out_offset for p in self.points]
        idx = bisect_right(offsets, offset) - 1
        return self.points[max(idx, 0)]

    # -- serialisation ----------------------------------------------------

    def to_bytes(self) -> bytes:
        out = bytearray(_HEADER.pack(
            MAGIC, self.version, _FMT_CODES[self.fmt], 0,
            len(self.points), self.compressed_size, self.output_size,
            self.members))
        for point in self.points:
            wkind, stored = _pack_window(point.window)
            out += _POINT.pack(point.bit_offset, point.out_offset,
                               point.member, point.member_out_offset,
                               point.crc, wkind, len(point.window),
                               len(stored))
            out += stored
        out += struct.pack("<I", crc32(bytes(out)))
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SeekIndex":
        if len(blob) < _HEADER.size + 4:
            raise SeekIndexError(
                f"seek index truncated: {len(blob)} bytes")
        magic, version, fmt_code, _flags, npoints, csize, osize, \
            members = _HEADER.unpack_from(blob, 0)
        if magic != MAGIC:
            raise SeekIndexError(f"bad seek-index magic {magic!r}")
        if version != VERSION:
            raise SeekIndexError(
                f"unsupported seek-index version {version} "
                f"(this build reads {VERSION})")
        if fmt_code not in _FMT_NAMES:
            raise SeekIndexError(f"unknown seek-index fmt code {fmt_code}")
        (expected,) = struct.unpack_from("<I", blob, len(blob) - 4)
        if crc32(blob[:-4]) != expected:
            raise SeekIndexError("seek index CRC-32 mismatch")
        pos = _HEADER.size
        points: list[SeekPoint] = []
        for _ in range(npoints):
            if pos + _POINT.size > len(blob) - 4:
                raise SeekIndexError("seek index truncated inside a point")
            bit_offset, out_offset, member, member_out, crc, wkind, \
                wlen, stored = _POINT.unpack_from(blob, pos)
            pos += _POINT.size
            if wlen > _WINDOW:
                raise SeekIndexError(
                    f"seek-index window {wlen} exceeds 32 KiB")
            if pos + stored > len(blob) - 4:
                raise SeekIndexError("seek index truncated inside a window")
            window = _unpack_window(blob[pos:pos + stored], wkind, wlen)
            pos += stored
            points.append(SeekPoint(bit_offset=bit_offset,
                                    out_offset=out_offset, member=member,
                                    member_out_offset=member_out, crc=crc,
                                    window=window))
        if pos != len(blob) - 4:
            raise SeekIndexError(
                f"seek index has {len(blob) - 4 - pos} stray bytes")
        return cls(fmt=_FMT_NAMES[fmt_code], compressed_size=csize,
                   output_size=osize, members=members, points=points,
                   version=version)

    def save(self, path: os.PathLike | str) -> None:
        """Write the sidecar atomically: full index or no index.

        The blob lands in a temp file in the *same directory* (same
        filesystem, so the final ``os.replace`` is an atomic rename) and
        only replaces ``path`` once fully flushed.  A reader — or a
        crash — can therefore never observe a half-written ``.rsix``;
        they see the old index or the new one, and the loader's CRC
        check stays a guard against corruption, not against us.
        """
        path = os.fspath(path)
        directory = os.path.dirname(path) or "."
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(path) + ".",
            suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(self.to_bytes())
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: os.PathLike | str) -> "SeekIndex":
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError as exc:
            raise SeekIndexError(f"cannot read seek index: {exc}") from exc
        return cls.from_bytes(blob)


def _pack_window(window: bytes) -> tuple[int, bytes]:
    """Deflate a window snapshot when that actually shrinks it."""
    if not window:
        return 0, b""
    from .compress import deflate
    packed = deflate(window, level=1).data
    if len(packed) < len(window):
        return 1, packed
    return 0, window


def _unpack_window(stored: bytes, wkind: int, wlen: int) -> bytes:
    if wkind == 0:
        window = stored
    elif wkind == 1:
        from .inflate import inflate
        try:
            window = inflate(stored)
        except DeflateError as exc:
            raise SeekIndexError(
                f"seek-index window does not inflate: {exc}") from exc
    else:
        raise SeekIndexError(f"unknown seek-index window kind {wkind}")
    if len(window) != wlen:
        raise SeekIndexError(
            f"seek-index window length {len(window)} != recorded {wlen}")
    return window


# -- serial builder (streaming decoder + block-boundary callback) ---------

def build_index(payload: bytes, fmt: str = "gzip",
                spacing: int = DEFAULT_SPACING) -> SeekIndex:
    """Serially decode ``payload`` and record seek points every
    ``spacing`` uncompressed bytes (plus one at every member's body
    start).  Containers are verified exactly like the one-shot
    decoders, so a successfully built index implies a valid stream.
    """
    if fmt not in _FMT_CODES:
        raise DeflateError(f"seek index does not support fmt {fmt!r}")
    if spacing < 1:
        raise DeflateError(f"spacing must be positive, got {spacing}")
    points: list[SeekPoint] = []
    total_out = 0
    members = 0
    pos = 0

    if fmt == "gzip":
        from .gzip_stream import _header_length
        if len(payload) < 18:
            raise DeflateError("gzip stream too short")
        while pos < len(payload):
            header_len = _header_length(payload[pos:])
            if header_len is None:
                raise DeflateError("truncated gzip header")
            body = pos + header_len
            out, consumed = _index_member(payload, body, b"", spacing,
                                          members, total_out, points)
            tail = body + consumed
            if tail + 8 > len(payload):
                raise DeflateError("gzip stream truncated before trailer")
            expected_crc, isize = struct.unpack_from("<II", payload, tail)
            if crc32(out) != expected_crc:
                raise ChecksumError("gzip CRC-32 mismatch")
            if (len(out) & 0xFFFFFFFF) != isize:
                raise ChecksumError("gzip ISIZE mismatch")
            total_out += len(out)
            members += 1
            pos = tail + 8
    elif fmt == "zlib":
        if len(payload) < 6:
            raise DeflateError("zlib stream too short")
        cmf, flg = payload[0], payload[1]
        if (cmf & 0x0F) != 8:
            raise DeflateError(f"unsupported zlib method {cmf & 0x0F}")
        if ((cmf << 8) | flg) % 31 != 0:
            raise DeflateError("zlib header check failed")
        if flg & 0x20:
            raise DeflateError("stream needs a preset dictionary")
        out, consumed = _index_member(payload, 2, b"", spacing, 0, 0,
                                      points)
        from .checksums import adler32
        tail = 2 + consumed
        if tail + 4 > len(payload):
            raise DeflateError("zlib stream truncated before Adler-32")
        (expected,) = struct.unpack_from(">I", payload, tail)
        if adler32(out) != expected:
            raise ChecksumError("Adler-32 mismatch")
        total_out = len(out)
        members = 1
    else:  # raw
        out, _consumed = _index_member(payload, 0, b"", spacing, 0, 0,
                                       points)
        total_out = len(out)
        members = 1

    return SeekIndex(fmt=fmt, compressed_size=len(payload),
                     output_size=total_out, members=members,
                     points=points)


def _index_member(payload: bytes, body_start: int, history: bytes,
                  spacing: int, member: int, global_base: int,
                  points: list[SeekPoint]) -> tuple[bytes, int]:
    """Decode one DEFLATE body via :class:`InflateStream`, appending its
    seek points; returns ``(plaintext, body bytes consumed)``."""
    boundaries: list[tuple[int, int, bytes]] = []
    taken = [-spacing]  # produced offset of the last snapshot

    stream = InflateStream(history=history)

    def on_boundary(bit_offset: int, is_final: bool) -> None:
        if is_final:
            return
        if stream.produced - taken[0] >= spacing:
            taken[0] = stream.produced
            boundaries.append((bit_offset, stream.produced,
                               stream.window()))

    stream.on_block_boundary = on_boundary
    # Record the body start itself: resuming a member needs no window.
    points.append(SeekPoint(bit_offset=body_start * 8,
                            out_offset=global_base, member=member,
                            member_out_offset=0, crc=0, window=history))
    rest = payload[body_start:]
    out = stream.feed(rest)
    out += stream.finish()
    consumed = len(rest) - len(stream.unused_bytes())
    # One incremental CRC walk turns the recorded boundaries into full
    # seek points (the callback could not know the running CRC yet).
    crc_state = 0
    crc_pos = 0
    for bit_offset, produced, window in boundaries:
        crc_state = crc32(out[crc_pos:produced], crc_state)
        crc_pos = produced
        points.append(SeekPoint(
            bit_offset=body_start * 8 + bit_offset,
            out_offset=global_base + produced, member=member,
            member_out_offset=produced, crc=crc_state, window=window))
    return out, consumed
