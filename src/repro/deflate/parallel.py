"""pigz-style chunked-parallel DEFLATE compression.

The paper's software baseline for multi-core machines is pigz: split the
input into fixed-size chunks, compress every chunk independently on its
own core, and concatenate the results into one valid DEFLATE stream.
Two details make the output a *single* stream rather than a framed
container:

* every non-final chunk is emitted as a **continuation unit**
  (``deflate(..., final=False)``): non-final blocks closed by an empty
  stored block, zlib's Z_FULL_FLUSH, so units land byte-aligned and
  concatenate seamlessly;
* each chunk's matcher window is **primed with the last 32 KB of the
  previous chunk** (the preset-dictionary path), so back-references
  reach across the seam exactly as a serial compressor's would.

Chunk boundaries depend only on ``chunk_size``, so the output is
byte-identical for every worker count — parallelism changes wall-clock,
never bytes.  Workers run in a ``concurrent.futures`` executor
(processes by default: the kernels are CPU-bound pure Python, so
threads would serialise on the GIL) and results are reassembled in
submission order.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor

from ..errors import DeflateError
from ..obs.trace import TRACE as _TRACE
from .compress import CompressResult, deflate
from .constants import WINDOW_SIZE
from .matcher import MatchStats

#: pigz's default chunk size (128 KiB): big enough that the one-window
#: history overlap is amortised, small enough to keep every core busy.
DEFAULT_CHUNK_SIZE = 1 << 17


def _compress_chunk(chunk: bytes, history: bytes, level: int,
                    strategy: str, final: bool) -> CompressResult:
    """Worker entry point; module-level so process pools can pickle it."""
    return deflate(chunk, level=level, history=history,
                   strategy=strategy, final=final)


def parallel_deflate(data: bytes, level: int = 6, *,
                     chunk_size: int = DEFAULT_CHUNK_SIZE,
                     workers: int | None = None,
                     executor: Executor | None = None,
                     strategy: str = "default",
                     history: bytes = b"",
                     final: bool = True) -> CompressResult:
    """Compress ``data`` as one raw DEFLATE stream using chunk parallelism.

    ``workers`` caps the process pool (default: ``os.cpu_count()``,
    never more than the number of chunks; 1 compresses inline with no
    pool at all).  Pass ``executor`` to reuse a pool across calls — the
    caller keeps ownership and ``workers`` is ignored.  ``history`` and
    ``final`` mean what they mean for :func:`deflate`: a preset
    dictionary priming the first chunk, and whether the stream is
    terminated or left continuable.  Returns the same
    :class:`CompressResult` as :func:`deflate`, with stats summed and
    per-block types concatenated across chunks.
    """
    if chunk_size < 1:
        raise DeflateError(f"chunk_size must be positive, got {chunk_size}")
    spans = [(start, min(start + chunk_size, len(data)))
             for start in range(0, len(data), chunk_size)] or [(0, 0)]
    last = len(spans) - 1
    jobs = [(data[start:end],
             history[-WINDOW_SIZE:] if start == 0
             else data[max(0, start - WINDOW_SIZE):start],
             level, strategy, final and idx == last)
            for idx, (start, end) in enumerate(spans)]

    obs_span = (_TRACE.span("deflate.parallel", nbytes=len(data),
                            level=level, chunks=len(spans))
                if _TRACE.enabled else None)
    try:
        if executor is not None:
            results = list(executor.map(_compress_chunk, *zip(*jobs)))
            if obs_span is not None:
                obs_span.set(workers="caller-executor")
        else:
            nworkers = min(workers or os.cpu_count() or 1, len(spans))
            if obs_span is not None:
                obs_span.set(workers=nworkers)
            if nworkers <= 1:
                # Inline path: each chunk's deflate.kernel span nests here.
                results = [_compress_chunk(*job) for job in jobs]
            else:
                with ProcessPoolExecutor(max_workers=nworkers) as pool:
                    results = list(pool.map(_compress_chunk, *zip(*jobs)))
    finally:
        if obs_span is not None:
            obs_span.__exit__(None, None, None)

    out = bytearray()
    stats = MatchStats()
    blocks: list[int] = []
    for result in results:
        out += result.data
        stats.literals += result.stats.literals
        stats.matches += result.stats.matches
        stats.match_bytes += result.stats.match_bytes
        stats.chain_probes += result.stats.chain_probes
        blocks.extend(result.blocks)
    return CompressResult(data=bytes(out), stats=stats, blocks=blocks)
