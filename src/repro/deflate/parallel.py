"""pigz-style chunked-parallel DEFLATE compression.

The paper's software baseline for multi-core machines is pigz: split the
input into fixed-size chunks, compress every chunk independently on its
own core, and concatenate the results into one valid DEFLATE stream.
Two details make the output a *single* stream rather than a framed
container:

* every non-final chunk is emitted as a **continuation unit**
  (``deflate(..., final=False)``): non-final blocks closed by an empty
  stored block, zlib's Z_FULL_FLUSH, so units land byte-aligned and
  concatenate seamlessly;
* each chunk's matcher window is **primed with the last 32 KB of the
  previous chunk** (the preset-dictionary path), so back-references
  reach across the seam exactly as a serial compressor's would.

Chunk boundaries depend only on ``chunk_size``, so the output is
byte-identical for every worker count — parallelism changes wall-clock,
never bytes.  Chunks run on the execution layer's persistent
:class:`~repro.exec.pool.ProcessWorkerPool` (the kernels are CPU-bound
pure Python, so threads would serialise on the GIL): the source buffer
is written once into a shared-memory slab, workers slice their chunk
and its one-window history out of it in place, and compressed units
come back through a second slab — per-call cost is a handful of
constant-size descriptors, not a pool spin-up plus payload pickling.
A caller-owned ``concurrent.futures`` executor is still honoured, a
crashed worker's chunk is resubmitted (chunk compression is a pure
function of its descriptor), and a broken pool degrades to the inline
path — bytes out are identical in every case.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor

from ..errors import DeflateError, ExecError
from ..obs.trace import TRACE as _TRACE
from .compress import CompressResult, deflate
from .constants import WINDOW_SIZE
from .matcher import MatchStats

#: pigz's default chunk size (128 KiB): big enough that the one-window
#: history overlap is amortised, small enough to keep every core busy.
DEFAULT_CHUNK_SIZE = 1 << 17


def _compress_chunk(chunk: bytes, history: bytes, level: int,
                    strategy: str, final: bool) -> CompressResult:
    """Chunk kernel; module-level so caller executors can pickle it."""
    return deflate(chunk, level=level, history=history,
                   strategy=strategy, final=final)


def _out_capacity(nbytes: int) -> int:
    """Slab budget for one chunk's compressed unit.

    DEFLATE's stored-block worst case is 5 bytes per 64 KB plus the
    payload; a quarter over input plus a fixed floor covers that with
    room for the unit's sync-flush tail.  A unit that still overflows
    (can't happen for these kernels) rides back inline instead.
    """
    return nbytes + nbytes // 4 + 256


def deflate_chunk_job(*, level: int, strategy: str, final: bool,
                      src: tuple[str, int, int] | None = None,
                      data: bytes | None = None,
                      history_src: tuple[str, int, int] | None = None,
                      history: bytes = b"",
                      out: tuple[str, int, int] | None = None) -> dict:
    """Pool-worker entry: compress one chunk from/to shared memory.

    ``src`` and ``history_src`` are ``(slab, offset, length)`` views of
    the parent's source slab (the history of every chunk but the first
    is just the preceding window of the same buffer); ``out`` is the
    parent-owned destination region.  Returns ``{"n", "stats",
    "blocks", "inline"?}``.
    """
    from ..exec import shm
    if data is None:
        name, offset, length = src
        data = bytes(shm.attach(name).buf[offset:offset + length])
    if history_src is not None:
        name, offset, length = history_src
        history = bytes(shm.attach(name).buf[offset:offset + length])
    result = deflate(data, level=level, history=history,
                     strategy=strategy, final=final)
    record: dict = {"n": len(result.data), "stats": result.stats,
                    "blocks": result.blocks}
    if out is not None and len(result.data) <= out[2]:
        name, offset, _cap = out
        shm.attach(name).buf[offset:offset + len(result.data)] = \
            result.data
    else:
        record["inline"] = result.data
    return record


def parallel_deflate(data: bytes, level: int = 6, *,
                     chunk_size: int = DEFAULT_CHUNK_SIZE,
                     workers: int | None = None,
                     executor: Executor | None = None,
                     strategy: str = "default",
                     history: bytes = b"",
                     final: bool = True) -> CompressResult:
    """Compress ``data`` as one raw DEFLATE stream using chunk parallelism.

    ``workers`` caps how many pool workers the call uses (default:
    ``os.cpu_count()``, never more than the number of chunks; 1
    compresses inline with no pool at all).  Pass ``executor`` to run
    chunks on a caller-owned ``concurrent.futures`` executor instead —
    the caller keeps ownership and ``workers`` is ignored.  ``history``
    and ``final`` mean what they mean for :func:`deflate`: a preset
    dictionary priming the first chunk, and whether the stream is
    terminated or left continuable.  Returns the same
    :class:`CompressResult` as :func:`deflate`, with stats summed and
    per-block types concatenated across chunks.
    """
    if chunk_size < 1:
        raise DeflateError(f"chunk_size must be positive, got {chunk_size}")
    spans = [(start, min(start + chunk_size, len(data)))
             for start in range(0, len(data), chunk_size)] or [(0, 0)]
    last = len(spans) - 1

    def inline_jobs() -> list[tuple]:
        return [(data[start:end],
                 history[-WINDOW_SIZE:] if start == 0
                 else data[max(0, start - WINDOW_SIZE):start],
                 level, strategy, final and idx == last)
                for idx, (start, end) in enumerate(spans)]

    obs_span = (_TRACE.span("deflate.parallel", nbytes=len(data),
                            level=level, chunks=len(spans))
                if _TRACE.enabled else None)
    try:
        if executor is not None:
            results = list(executor.map(_compress_chunk,
                                        *zip(*inline_jobs())))
            if obs_span is not None:
                obs_span.set(workers="caller-executor")
        else:
            from ..exec.worker import in_worker
            nworkers = min(workers or os.cpu_count() or 1, len(spans))
            if nworkers <= 1 or in_worker():
                # Inline path: each chunk's deflate.kernel span nests
                # here.  Workers also land here — a chunk job must not
                # recurse into the pool that is running it.
                if obs_span is not None:
                    obs_span.set(workers=1)
                results = [_compress_chunk(*job) for job in inline_jobs()]
            else:
                if obs_span is not None:
                    obs_span.set(workers=nworkers)
                results = _pool_compress(data, spans, last, history,
                                         level, strategy, final,
                                         nworkers, obs_span)
                if results is None:  # pool broken: degrade, same bytes
                    if obs_span is not None:
                        obs_span.event("exec.pool_fallback")
                    results = [_compress_chunk(*job)
                               for job in inline_jobs()]
    finally:
        if obs_span is not None:
            obs_span.__exit__(None, None, None)

    out = bytearray()
    stats = MatchStats()
    blocks: list[int] = []
    for result in results:
        out += result.data
        stats.literals += result.stats.literals
        stats.matches += result.stats.matches
        stats.match_bytes += result.stats.match_bytes
        stats.chain_probes += result.stats.chain_probes
        blocks.extend(result.blocks)
    return CompressResult(data=bytes(out), stats=stats, blocks=blocks)


def _pool_compress(data: bytes, spans: list[tuple[int, int]], last: int,
                   history: bytes, level: int, strategy: str,
                   final: bool, nworkers: int,
                   obs_span) -> list[CompressResult] | None:
    """Run the chunk jobs on the warm execution pool; zero-copy buffers.

    The whole source is written into one slab once; every chunk *and*
    its cross-seam history are ``(slab, offset, length)`` views of it.
    Returns ``None`` when the pool cannot take work (the caller then
    compresses inline — output bytes do not depend on the path).
    """
    from ..exec.pool import get_default_pool

    try:
        pool = get_default_pool(min_workers=nworkers)
    except ExecError:
        return None
    allocator = pool.allocator
    src_slab = allocator.acquire(max(1, len(data)))
    out_caps = [_out_capacity(end - start) for start, end in spans]
    out_offsets = [0] * len(spans)
    total = 0
    for idx, cap in enumerate(out_caps):
        out_offsets[idx] = total
        total += cap
    out_slab = allocator.acquire(total)
    try:
        src_slab.write(0, data)
        calls: list[tuple[str, dict]] = []
        for idx, (start, end) in enumerate(spans):
            kwargs: dict = {
                "level": level, "strategy": strategy,
                "final": final and idx == last,
                "src": (src_slab.name, start, end - start),
                "out": (out_slab.name, out_offsets[idx], out_caps[idx]),
            }
            if start == 0:
                kwargs["history"] = history[-WINDOW_SIZE:]
            else:
                hstart = max(0, start - WINDOW_SIZE)
                kwargs["history_src"] = (src_slab.name, hstart,
                                         start - hstart)
            calls.append(("deflate_chunk", kwargs))
        try:
            records = pool.run_batch(calls, span_parent=obs_span)
        except ExecError:
            return None
        results = []
        for idx, record in enumerate(records):
            unit = record.get("inline")
            if unit is None:
                unit = out_slab.read(out_offsets[idx], record["n"])
            results.append(CompressResult(data=unit,
                                          stats=record["stats"],
                                          blocks=record["blocks"]))
        return results
    finally:
        allocator.release(src_slab)
        allocator.release(out_slab)
