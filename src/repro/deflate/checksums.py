"""CRC-32 and Adler-32 implemented from scratch.

These mirror the checksums the gzip (RFC 1952) and zlib (RFC 1950)
containers carry, and the ones the NX accelerator computes inline with the
data pipe.  Both are incremental: ``crc32(b, crc32(a))`` equals
``crc32(a + b)``, matching the stdlib ``zlib`` calling convention.
"""

from __future__ import annotations

_CRC_POLY = 0xEDB88320  # reflected IEEE 802.3 polynomial
_ADLER_MOD = 65521  # largest prime below 2**16
_ADLER_NMAX = 5552  # max bytes before the sums can overflow 32 bits


def _build_crc_table() -> tuple[int, ...]:
    table = []
    for n in range(256):
        c = n
        for _ in range(8):
            c = (c >> 1) ^ _CRC_POLY if c & 1 else c >> 1
        table.append(c)
    return tuple(table)


_CRC_TABLE = _build_crc_table()


def crc32(data: bytes, value: int = 0) -> int:
    """Update a CRC-32 with ``data`` and return the new checksum."""
    crc = (value & 0xFFFFFFFF) ^ 0xFFFFFFFF
    table = _CRC_TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def adler32(data: bytes, value: int = 1) -> int:
    """Update an Adler-32 with ``data`` and return the new checksum."""
    s1 = value & 0xFFFF
    s2 = (value >> 16) & 0xFFFF
    pos = 0
    remaining = len(data)
    while remaining:
        chunk = min(remaining, _ADLER_NMAX)
        for byte in data[pos:pos + chunk]:
            s1 += byte
            s2 += s1
        s1 %= _ADLER_MOD
        s2 %= _ADLER_MOD
        pos += chunk
        remaining -= chunk
    return (s2 << 16) | s1
