"""CRC-32 and Adler-32 implemented from scratch.

These mirror the checksums the gzip (RFC 1952) and zlib (RFC 1950)
containers carry, and the ones the NX accelerator computes inline with the
data pipe.  Both are incremental: ``crc32(b, crc32(a))`` equals
``crc32(a + b)``, matching the stdlib ``zlib`` calling convention.

The CRC uses the slicing-by-4 formulation (four derived tables, one
32-bit word folded per step, words loaded through a little-endian
``memoryview`` cast); Adler-32 batches each chunk through
``itertools.accumulate`` — Python's arbitrary-precision ints make the
deferred modulo exact at any chunk size, unlike C's NMAX-bounded sums.
"""

from __future__ import annotations

import sys
from itertools import accumulate

_CRC_POLY = 0xEDB88320  # reflected IEEE 802.3 polynomial
_ADLER_MOD = 65521  # largest prime below 2**16
_ADLER_NMAX = 5552  # zlib's 8-bit overflow bound (kept for reference)
_ADLER_CHUNK = 1 << 16  # bounds the prefix-sum list, not the arithmetic


def _build_crc_table() -> tuple[int, ...]:
    table = []
    for n in range(256):
        c = n
        for _ in range(8):
            c = (c >> 1) ^ _CRC_POLY if c & 1 else c >> 1
        table.append(c)
    return tuple(table)


_CRC_TABLE = _build_crc_table()


def _derive_slice_tables() -> tuple[tuple[int, ...], ...]:
    """Tables T1..T3 with ``Tk[b] = crc of byte b followed by k zeros``."""
    t0 = _CRC_TABLE
    tables = [t0]
    for _ in range(3):
        prev = tables[-1]
        tables.append(tuple(t0[c & 0xFF] ^ (c >> 8) for c in prev))
    return tuple(tables)


_T0, _T1, _T2, _T3 = _derive_slice_tables()


def crc32(data: bytes, value: int = 0) -> int:
    """Update a CRC-32 with ``data`` and return the new checksum."""
    crc = (value & 0xFFFFFFFF) ^ 0xFFFFFFFF
    n = len(data)
    i = 0
    if n >= 16 and sys.byteorder == "little":
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        nwords = n >> 2
        i = nwords << 2
        for word in memoryview(data)[:i].cast("I"):
            x = crc ^ word
            crc = (t3[x & 0xFF] ^ t2[(x >> 8) & 0xFF]
                   ^ t1[(x >> 16) & 0xFF] ^ t0[x >> 24])
    table = _CRC_TABLE
    for byte in data[i:]:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def adler32(data: bytes, value: int = 1) -> int:
    """Update an Adler-32 with ``data`` and return the new checksum."""
    s1 = value & 0xFFFF
    s2 = (value >> 16) & 0xFFFF
    n = len(data)
    pos = 0
    while pos < n:
        chunk = data[pos:pos + _ADLER_CHUNK]
        # acc[k] = s1 + sum of the first k bytes, so the new s2 is
        # s2 + sum(acc[1:]) and the new s1 is acc[-1].
        acc = list(accumulate(chunk, initial=s1))
        s2 = (s2 + sum(acc) - s1) % _ADLER_MOD
        s1 = acc[-1] % _ADLER_MOD
        pos += len(chunk)
    return (s2 << 16) | s1
