"""Incremental gzip reading: arbitrary chunks in, verified plaintext out.

Builds on :class:`~repro.deflate.inflate_stream.InflateStream`: parses
the member header as bytes arrive, streams the DEFLATE body, verifies
CRC-32 and ISIZE at the trailer, and rolls straight into the next
member for multi-member archives — the decompression path a restore
pipeline actually needs.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from ..errors import ChecksumError, DeflateError
from .checksums import crc32
from .containers import GZIP_MAGIC, GZIP_METHOD_DEFLATE
from .inflate_stream import InflateStream


class _Phase(enum.Enum):
    HEADER = "header"
    BODY = "body"
    TRAILER = "trailer"
    DONE = "done"


def _header_length(buf: bytes) -> int | None:
    """Bytes of the member header, or None if more input is needed."""
    if len(buf) < 10:
        return None
    if buf[:2] != GZIP_MAGIC:
        raise DeflateError("bad gzip magic")
    if buf[2] != GZIP_METHOD_DEFLATE:
        raise DeflateError(f"unsupported gzip method {buf[2]}")
    flg = buf[3]
    pos = 10
    if flg & 0x04:  # FEXTRA
        if len(buf) < pos + 2:
            return None
        xlen = struct.unpack_from("<H", buf, pos)[0]
        pos += 2 + xlen
        if len(buf) < pos:
            return None
    for bit in (0x08, 0x10):  # FNAME, FCOMMENT
        if flg & bit:
            end = buf.find(b"\x00", pos)
            if end < 0:
                return None
            pos = end + 1
    if flg & 0x02:  # FHCRC
        pos += 2
        if len(buf) < pos:
            return None
    return pos


@dataclass
class GzipReader:
    """Feed gzip bytes in any chunking; emits verified plaintext."""

    allow_multiple_members: bool = True
    members_read: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._phase = _Phase.HEADER
        self._buf = bytearray()
        self._inflater: InflateStream | None = None
        self._crc = 0
        self._size = 0

    @property
    def finished(self) -> bool:
        return self._phase is _Phase.DONE

    def feed(self, chunk: bytes) -> bytes:
        """Consume ``chunk``; return any newly decoded plaintext."""
        self._buf.extend(chunk)
        return self._advance(final=False)

    def finish(self) -> bytes:
        """Declare end of input; the stream must be complete."""
        out = self._advance(final=True)
        if self._phase is _Phase.HEADER and self.members_read > 0 \
                and not self._buf:
            self._phase = _Phase.DONE
        if self._phase is not _Phase.DONE:
            raise DeflateError("truncated gzip stream")
        return out

    def _advance(self, final: bool) -> bytes:
        out = bytearray()
        progress = True
        while progress:
            progress = False
            if self._phase is _Phase.HEADER:
                progress = self._try_header()
            elif self._phase is _Phase.BODY:
                produced, progress = self._pump_body(final)
                out += produced
            elif self._phase is _Phase.TRAILER:
                progress = self._try_trailer()
            else:
                if self._buf:
                    raise DeflateError("data after final gzip member")
                break
        return bytes(out)

    # -- phases -----------------------------------------------------------

    def _try_header(self) -> bool:
        if not self._buf and self.members_read > 0:
            return False
        length = _header_length(bytes(self._buf))
        if length is None:
            return False
        del self._buf[:length]
        self._inflater = InflateStream()
        self._crc = 0
        self._size = 0
        self._phase = _Phase.BODY
        return True

    def _pump_body(self, final: bool) -> tuple[bytes, bool]:
        chunk = bytes(self._buf)
        self._buf.clear()
        produced = self._inflater.feed(chunk)
        if not self._inflater.finished:
            if not final:
                # The 8-byte trailer always follows the body, so the
                # conservative decoder completes once those bytes pad
                # the buffer; until then, wait for more input.
                self._account(produced)
                return produced, False
            produced += self._inflater.finish()
        self._account(produced)
        self._buf[:0] = self._inflater.unused_bytes()
        self._phase = _Phase.TRAILER
        return produced, True

    def _account(self, produced: bytes) -> None:
        self._crc = crc32(produced, self._crc)
        self._size += len(produced)

    def _try_trailer(self) -> bool:
        if len(self._buf) < 8:
            return False
        expected_crc, isize = struct.unpack_from("<II", self._buf, 0)
        del self._buf[:8]
        if expected_crc != self._crc:
            raise ChecksumError("gzip CRC-32 mismatch")
        if isize != (self._size & 0xFFFFFFFF):
            raise ChecksumError("gzip ISIZE mismatch")
        self.members_read += 1
        if self.allow_multiple_members:
            self._phase = _Phase.HEADER
            if not self._buf:
                self._phase = _Phase.HEADER
        else:
            self._phase = _Phase.DONE
        return True
