"""Hash-chain LZ77 matching for the software (zlib-style) baseline.

This mirrors zlib's ``deflate_fast`` (levels 1-3) and ``deflate_slow``
(levels 4-9, with one-symbol lazy evaluation) strategies, including the
per-level ``good``/``lazy``/``nice``/``chain`` tuning knobs, so that the
software baseline's ratio-vs-effort curve has the same shape as zlib's.

The chain layout is zlib's ``head``/``prev`` pair: ``prev`` is a
preallocated ``array('i')`` ring indexed by ``pos & (WINDOW_SIZE - 1)``,
while ``head`` maps the *exact* 3-byte trigram (one rolling
``(k << 8 | byte) & 0xFFFFFF`` update per inserted position) to its most
recent occurrence.  zlib's lossy 15-bit shift-hash was measured too: its
bucket collisions force a 3-byte prefix verification on every chain
candidate — ``MatchStats.chain_probes`` (which the NX timing model
consumes) is defined against exact chains, so colliding candidates must
be skipped without counting — and that per-candidate check cost more
than the dict lookup it saved.  Exact trigram keys keep every chain
collision-free, so the walk counts every candidate it touches and the
stats come out identical by construction.  ``_match_length`` settles
long matches with one slice equality at memcmp speed and short ones
with a bounded byte scan.

Tokens are produced as plain ints for literals (0..255) and
``(length, distance)`` tuples for back-references.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from .constants import MAX_MATCH, MIN_MATCH, WINDOW_SIZE

Token = int | tuple[int, int]

_TOO_FAR = 4096  # zlib: a length-3 match farther than this is not worth it
_WMASK = WINDOW_SIZE - 1
_KMASK = 0xFFFFFF  # rolling trigram key: the 3 newest bytes, exactly

_EMPTY_PREV = array("i", [-1]) * WINDOW_SIZE


@dataclass(frozen=True)
class MatcherConfig:
    """Tuning of one compression level (zlib's configuration_table)."""

    good_length: int  # reduce chain effort above this current match length
    max_lazy: int     # do not lazy-defer matches at least this long
    nice_length: int  # stop searching once a match this long is found
    max_chain: int    # hash-chain positions examined per search
    lazy: bool        # deflate_slow (True) vs deflate_fast (False)


LEVEL_CONFIGS: dict[int, MatcherConfig] = {
    1: MatcherConfig(4, 4, 8, 4, lazy=False),
    2: MatcherConfig(4, 5, 16, 8, lazy=False),
    3: MatcherConfig(4, 6, 32, 32, lazy=False),
    4: MatcherConfig(4, 4, 16, 16, lazy=True),
    5: MatcherConfig(8, 16, 32, 32, lazy=True),
    6: MatcherConfig(8, 16, 128, 128, lazy=True),
    7: MatcherConfig(8, 32, 128, 256, lazy=True),
    8: MatcherConfig(32, 128, 258, 1024, lazy=True),
    9: MatcherConfig(32, 258, 258, 4096, lazy=True),
}


@dataclass
class MatchStats:
    """Aggregate statistics of one tokenization pass.

    The NX timing model consumes the same structure, so software and
    hardware runs are directly comparable.
    """

    literals: int = 0
    matches: int = 0
    match_bytes: int = 0
    chain_probes: int = 0

    @property
    def tokens(self) -> int:
        return self.literals + self.matches

    @property
    def input_bytes(self) -> int:
        return self.literals + self.match_bytes


class HashChainMatcher:
    """Greedy/lazy LZ77 tokenizer over a 32 KB sliding window."""

    def __init__(self, config: MatcherConfig) -> None:
        self.config = config
        self.stats = MatchStats()
        self._head: dict[int, int] = {}  # trigram -> most recent position
        self._prev = array("i", _EMPTY_PREV)  # pos & _WMASK -> older position

    def tokenize(self, data: bytes, history: bytes = b"") -> list[Token]:
        """Produce the token stream for ``data`` in one pass.

        ``history`` is a preset dictionary (at most one window): matches
        may reach back into it, exactly like zlib's ``zdict`` and the NX
        history DDE.  Tokens are emitted for ``data`` only.
        """
        if history:
            history = history[-WINDOW_SIZE:]
            combined = history + data
            self._prime(combined, len(history))
            if self.config.lazy:
                tokens = self._tokenize_lazy(combined, start=len(history))
            else:
                tokens = self._tokenize_fast(combined, start=len(history))
            return tokens
        if self.config.lazy:
            return self._tokenize_lazy(data)
        return self._tokenize_fast(data)

    def _prime(self, combined: bytes, start: int) -> None:
        """Insert every history position into the hash chains."""
        self._insert_span(combined, 0, start, len(combined))

    # -- hash chain ----------------------------------------------------

    @staticmethod
    def _key(data: bytes, i: int) -> int:
        """The exact trigram chain key of the 3 bytes at ``i``."""
        return (data[i] << 16) | (data[i + 1] << 8) | data[i + 2]

    def _longest_match(self, data: bytes, i: int, n: int,
                       current_best: int) -> tuple[int, int]:
        """Search the chain at ``i``; returns (length, distance)."""
        max_len = n - i
        if max_len >= MAX_MATCH:
            max_len = MAX_MATCH
        elif max_len < MIN_MATCH:
            return 0, 0
        config = self.config
        nice = config.nice_length
        if nice > max_len:
            nice = max_len
        chain = config.max_chain
        if current_best >= config.good_length:
            chain >>= 2

        head = self._head
        prev = self._prev
        key = (data[i] << 16) | (data[i + 1] << 8) | data[i + 2]
        candidate = head.get(key, -1)
        head[key] = i
        prev[i & _WMASK] = candidate

        limit = i - WINDOW_SIZE
        if limit < -1:
            limit = -1  # candidate > limit then also rejects "no chain"
        match_length = self._match_length
        best_len = current_best
        best_dist = 0
        probes = 0
        check_at = best_len if best_len < max_len else 0
        check_byte = data[i + check_at]
        while candidate > limit and chain > 0:
            probes += 1
            chain -= 1
            # A candidate can only beat best_len if it also matches at
            # the byte just past the current best match (zlib's scan-end
            # filter) — skip the full compare otherwise.
            if best_len < max_len and data[candidate + check_at] == check_byte:
                length = match_length(data, candidate, i, max_len)
                if length > best_len:
                    best_len = length
                    best_dist = i - candidate
                    if length >= nice:
                        break
                    if best_len < max_len:
                        check_at = best_len
                        check_byte = data[i + check_at]
            candidate = prev[candidate & _WMASK]
            if candidate >= i:
                break  # wrapped chain entry from an older epoch
        self.stats.chain_probes += probes
        if best_dist == 0:
            return 0, 0
        if best_len == MIN_MATCH and best_dist > _TOO_FAR:
            return 0, 0
        return best_len, best_dist

    @staticmethod
    def _match_length(data: bytes, cand: int, pos: int, max_len: int) -> int:
        """Longest common prefix of the two regions.

        One full-width slice compare settles the long-match case at
        memcmp speed (runs, DNA); on mismatch a bounded byte scan finds
        the split, which is cheapest for the short matches of text.
        """
        if data[cand:cand + max_len] == data[pos:pos + max_len]:
            return max_len
        length = 0
        while length < max_len and data[cand + length] == data[pos + length]:
            length += 1
        return length

    def _insert_span(self, data: bytes, start: int, end: int, n: int) -> None:
        last = min(end, n - MIN_MATCH + 1)
        if start >= last:
            return
        head = self._head
        head_get = head.get
        prev = self._prev
        # Rolling key: one shift-or-mask per position keeps the exact
        # trigram, so no per-position 3-byte reassembly is needed.
        k = (data[start] << 8) | data[start + 1]
        for j in range(start, last):
            k = ((k << 8) | data[j + 2]) & _KMASK
            prev[j & _WMASK] = head_get(k, -1)
            head[k] = j

    # -- strategies ----------------------------------------------------

    def _tokenize_fast(self, data: bytes, start: int = 0) -> list[Token]:
        tokens: list[Token] = []
        stats = self.stats
        n = len(data)
        i = start
        while i < n:
            if n - i >= MIN_MATCH:
                length, dist = self._longest_match(data, i, n, MIN_MATCH - 1)
            else:
                length, dist = 0, 0
            if length >= MIN_MATCH:
                tokens.append((length, dist))
                stats.matches += 1
                stats.match_bytes += length
                self._insert_span(data, i + 1, i + length, n)
                i += length
            else:
                tokens.append(data[i])
                stats.literals += 1
                i += 1
        return tokens

    def _tokenize_lazy(self, data: bytes, start: int = 0) -> list[Token]:
        tokens: list[Token] = []
        stats = self.stats
        n = len(data)
        i = start
        have_prev = False
        prev_len = 0
        prev_dist = 0
        while i < n:
            if n - i >= MIN_MATCH:
                floor = prev_len if have_prev else MIN_MATCH - 1
                cur_len, cur_dist = self._longest_match(data, i, n, floor)
            else:
                cur_len, cur_dist = 0, 0

            if have_prev:
                if cur_len > prev_len:
                    # Defer again: previous position degrades to a literal.
                    tokens.append(data[i - 1])
                    stats.literals += 1
                    prev_len, prev_dist = cur_len, cur_dist
                    i += 1
                else:
                    tokens.append((prev_len, prev_dist))
                    stats.matches += 1
                    stats.match_bytes += prev_len
                    end = i - 1 + prev_len
                    self._insert_span(data, i + 1, end, n)
                    i = end
                    have_prev = False
            elif cur_len >= MIN_MATCH and cur_len < self.config.max_lazy:
                have_prev = True
                prev_len, prev_dist = cur_len, cur_dist
                i += 1
            elif cur_len >= MIN_MATCH:
                tokens.append((cur_len, cur_dist))
                stats.matches += 1
                stats.match_bytes += cur_len
                self._insert_span(data, i + 1, i + cur_len, n)
                i += cur_len
            else:
                tokens.append(data[i])
                stats.literals += 1
                i += 1
        if have_prev:
            tokens.append((prev_len, prev_dist))
            stats.matches += 1
            stats.match_bytes += prev_len
        return tokens


def tokenize(data: bytes, level: int,
             history: bytes = b"") -> tuple[list[Token], MatchStats]:
    """Tokenize ``data`` at a zlib-style compression ``level`` (1..9)."""
    if level not in LEVEL_CONFIGS:
        raise ValueError(f"level must be 1..9, got {level}")
    matcher = HashChainMatcher(LEVEL_CONFIGS[level])
    tokens = matcher.tokenize(data, history=history)
    return tokens, matcher.stats


def tokenize_huffman_only(data: bytes) -> tuple[list[Token], MatchStats]:
    """zlib Z_HUFFMAN_ONLY: no matching at all, entropy coding only."""
    stats = MatchStats(literals=len(data))
    return list(data), stats


def tokenize_rle(data: bytes) -> tuple[list[Token], MatchStats]:
    """zlib Z_RLE: distance-1 matches only (run-length encoding).

    Matches PNG-style filtering use cases: one-byte lookback keeps the
    decoder's window tiny while still collapsing runs.
    """
    tokens: list[Token] = []
    stats = MatchStats()
    n = len(data)
    i = 0
    while i < n:
        run = 1
        if i > 0:
            while (run < MAX_MATCH + 1 and i + run - 1 < n
                   and data[i + run - 1] == data[i - 1]):
                run += 1
            run -= 1
        if run >= MIN_MATCH:
            tokens.append((run, 1))
            stats.matches += 1
            stats.match_bytes += run
            i += run
        else:
            tokens.append(data[i])
            stats.literals += 1
            i += 1
    return tokens, stats
