"""From-scratch DEFLATE/zlib/gzip codec — the software baseline substrate.

This package is the pure-software analogue of the zlib library the paper
measures against: an LZ77 hash-chain matcher with zlib's per-level tuning,
canonical Huffman coding with optimal length-limited code construction,
all three RFC 1951 block types, and the RFC 1950/1952 containers.
"""

from .checksums import adler32, crc32
from .compress import CompressResult, deflate
from .containers import (
    gzip_compress,
    gzip_decompress,
    zlib_compress,
    zlib_decompress,
)
from .inflate import InflateStats, inflate, inflate_with_stats
from .gzip_stream import GzipReader
from .inflate_stream import InflateStream, inflate_incremental
from .matcher import LEVEL_CONFIGS, MatcherConfig, MatchStats, tokenize
from .parallel import DEFAULT_CHUNK_SIZE, parallel_deflate
from .parallel_inflate import (
    DEFAULT_INFLATE_CHUNK_SIZE,
    ParallelInflateResult,
    RangeReadResult,
    parallel_inflate,
    read_range,
)
from .seekindex import DEFAULT_SPACING, SeekIndex, SeekPoint, build_index

__all__ = [
    "adler32",
    "crc32",
    "deflate",
    "inflate",
    "inflate_with_stats",
    "InflateStream",
    "inflate_incremental",
    "GzipReader",
    "CompressResult",
    "InflateStats",
    "MatchStats",
    "MatcherConfig",
    "LEVEL_CONFIGS",
    "tokenize",
    "parallel_deflate",
    "DEFAULT_CHUNK_SIZE",
    "parallel_inflate",
    "ParallelInflateResult",
    "RangeReadResult",
    "read_range",
    "DEFAULT_INFLATE_CHUNK_SIZE",
    "SeekIndex",
    "SeekPoint",
    "build_index",
    "DEFAULT_SPACING",
    "zlib_compress",
    "zlib_decompress",
    "gzip_compress",
    "gzip_decompress",
]
