"""LSB-first bit stream reader/writer used by the DEFLATE codec.

DEFLATE (RFC 1951 section 3.1.1) packs data elements starting at the least
significant bit of each byte.  Huffman codes are packed most-significant-
bit-first *of the code*, which the Huffman layer handles by pre-reversing
code bit patterns; this module only ever deals in LSB-first integers.
"""

from __future__ import annotations

from ..errors import DeflateError


class BitWriter:
    """Accumulates an LSB-first bit stream into a growing byte buffer."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._bitbuf = 0
        self._bitcount = 0

    def write_bits(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` bits of ``value``, LSB first."""
        if nbits < 0 or nbits > 64:
            raise DeflateError(f"write_bits supports 0..64 bits, got {nbits}")
        self._bitbuf |= (value & ((1 << nbits) - 1)) << self._bitcount
        self._bitcount += nbits
        while self._bitcount >= 8:
            self._out.append(self._bitbuf & 0xFF)
            self._bitbuf >>= 8
            self._bitcount -= 8

    def align_to_byte(self) -> None:
        """Pad with zero bits up to the next byte boundary."""
        if self._bitcount:
            self._out.append(self._bitbuf & 0xFF)
            self._bitbuf = 0
            self._bitcount = 0

    def write_bytes(self, data: bytes) -> None:
        """Append raw bytes; the stream must be byte-aligned."""
        if self._bitcount:
            raise DeflateError("write_bytes requires byte alignment")
        self._out.extend(data)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return len(self._out) * 8 + self._bitcount

    def getvalue(self) -> bytes:
        """Return the byte-aligned stream (flushes a partial final byte)."""
        self.align_to_byte()
        return bytes(self._out)


class BitReader:
    """Reads an LSB-first bit stream from a bytes-like object."""

    def __init__(self, data: bytes, start: int = 0) -> None:
        self._data = data
        self._pos = start  # next byte index
        self._bitbuf = 0
        self._bitcount = 0

    def _fill(self, need: int) -> None:
        while self._bitcount < need:
            if self._pos >= len(self._data):
                raise DeflateError("unexpected end of DEFLATE stream")
            self._bitbuf |= self._data[self._pos] << self._bitcount
            self._pos += 1
            self._bitcount += 8

    def read_bits(self, nbits: int) -> int:
        """Consume and return ``nbits`` bits as an LSB-first integer."""
        if nbits == 0:
            return 0
        self._fill(nbits)
        value = self._bitbuf & ((1 << nbits) - 1)
        self._bitbuf >>= nbits
        self._bitcount -= nbits
        return value

    def peek_bits(self, nbits: int) -> int:
        """Return up to ``nbits`` upcoming bits without consuming them.

        Near the end of the stream fewer bits may be available; missing
        high bits read as zero, which suits canonical Huffman peeking.
        """
        while self._bitcount < nbits and self._pos < len(self._data):
            self._bitbuf |= self._data[self._pos] << self._bitcount
            self._pos += 1
            self._bitcount += 8
        return self._bitbuf & ((1 << nbits) - 1)

    def skip_bits(self, nbits: int) -> None:
        """Consume ``nbits`` previously peeked bits."""
        if nbits > self._bitcount:
            raise DeflateError("skip past end of DEFLATE stream")
        self._bitbuf >>= nbits
        self._bitcount -= nbits

    def align_to_byte(self) -> None:
        """Drop bits up to the next byte boundary."""
        drop = self._bitcount & 7
        self._bitbuf >>= drop
        self._bitcount -= drop

    def read_bytes(self, n: int) -> bytes:
        """Read ``n`` raw bytes; the stream must be byte-aligned."""
        if self._bitcount & 7:
            raise DeflateError("read_bytes requires byte alignment")
        out = bytearray()
        while self._bitcount >= 8 and n > 0:
            out.append(self._bitbuf & 0xFF)
            self._bitbuf >>= 8
            self._bitcount -= 8
            n -= 1
        if n > 0:
            if self._pos + n > len(self._data):
                raise DeflateError("unexpected end of stream in stored data")
            out.extend(self._data[self._pos:self._pos + n])
            self._pos += n
        return bytes(out)

    @property
    def bits_consumed(self) -> int:
        """Number of bits consumed from the underlying buffer so far."""
        return self._pos * 8 - self._bitcount

    @property
    def byte_position(self) -> int:
        """Byte offset of the next unread byte (after alignment)."""
        if self._bitcount & 7:
            raise DeflateError("byte_position requires byte alignment")
        return self._pos - self._bitcount // 8
