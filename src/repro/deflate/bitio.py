"""LSB-first bit stream reader/writer used by the DEFLATE codec.

DEFLATE (RFC 1951 section 3.1.1) packs data elements starting at the least
significant bit of each byte.  Huffman codes are packed most-significant-
bit-first *of the code*, which the Huffman layer handles by pre-reversing
code bit patterns; this module only ever deals in LSB-first integers.

Both ends are batch-oriented kernels: the reader refills its bit buffer
eight bytes at a time through one ``int.from_bytes`` call (instead of one
byte per loop iteration), and the writer accumulates bits into one wide
int that is flushed in eight-byte chunks.  Python's arbitrary-precision
ints make the wide accumulator exact; the hot-path consumers
(``HuffmanDecoder.decode_run``, ``compress._emit_tokens``) keep the same
``_bitbuf``/``_bitcount``/``_pos`` fields in locals across symbols and
write them back once per run.
"""

from __future__ import annotations

from ..errors import DeflateError

_LOW64 = (1 << 64) - 1


class BitWriter:
    """Accumulates an LSB-first bit stream into a growing byte buffer.

    Invariant: ``_bitbuf`` holds the pending ``_bitcount`` (< 64) bits;
    everything older has been flushed to ``_out`` in 8-byte chunks.
    """

    def __init__(self) -> None:
        self._out = bytearray()
        self._bitbuf = 0
        self._bitcount = 0

    def write_bits(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` bits of ``value``, LSB first."""
        if nbits < 0 or nbits > 64:
            raise DeflateError(f"write_bits supports 0..64 bits, got {nbits}")
        self._bitbuf |= (value & ((1 << nbits) - 1)) << self._bitcount
        bitcount = self._bitcount + nbits
        if bitcount >= 64:
            self._out += (self._bitbuf & _LOW64).to_bytes(8, "little")
            self._bitbuf >>= 64
            bitcount -= 64
        self._bitcount = bitcount

    def align_to_byte(self) -> None:
        """Pad with zero bits up to the next byte boundary."""
        nbytes = (self._bitcount + 7) >> 3
        if nbytes:
            self._out += self._bitbuf.to_bytes(nbytes, "little")
            self._bitbuf = 0
            self._bitcount = 0

    def write_bytes(self, data: bytes) -> None:
        """Append raw bytes; the stream must be byte-aligned."""
        if self._bitcount & 7:
            raise DeflateError("write_bytes requires byte alignment")
        if self._bitcount:
            self._out += self._bitbuf.to_bytes(self._bitcount >> 3, "little")
            self._bitbuf = 0
            self._bitcount = 0
        self._out.extend(data)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return len(self._out) * 8 + self._bitcount

    def getvalue(self) -> bytes:
        """Return the byte-aligned stream (flushes a partial final byte)."""
        self.align_to_byte()
        return bytes(self._out)


class BitReader:
    """Reads an LSB-first bit stream from a bytes-like object.

    ``_bitbuf`` buffers bits loaded from ``_data``; refills pull up to
    eight bytes per ``int.from_bytes`` call.  ``bits_consumed`` stays
    exact regardless of how far ahead the refill ran.
    """

    def __init__(self, data: bytes, start: int = 0) -> None:
        self._data = data
        self._pos = start  # next byte index
        self._bitbuf = 0
        self._bitcount = 0

    def _fill(self, need: int) -> None:
        """Buffer at least ``need`` bits or raise on stream end."""
        bitcount = self._bitcount
        while bitcount < need:
            chunk = self._data[self._pos:self._pos + 8]
            if not chunk:
                raise DeflateError("unexpected end of DEFLATE stream")
            self._bitbuf |= int.from_bytes(chunk, "little") << bitcount
            self._pos += len(chunk)
            bitcount += len(chunk) << 3
        self._bitcount = bitcount

    def read_bits(self, nbits: int) -> int:
        """Consume and return ``nbits`` bits as an LSB-first integer."""
        bitcount = self._bitcount
        if bitcount < nbits:
            chunk = self._data[self._pos:self._pos + 8]
            self._bitbuf |= int.from_bytes(chunk, "little") << bitcount
            self._pos += len(chunk)
            bitcount += len(chunk) << 3
            if bitcount < nbits:
                raise DeflateError("unexpected end of DEFLATE stream")
        value = self._bitbuf & ((1 << nbits) - 1)
        self._bitbuf >>= nbits
        self._bitcount = bitcount - nbits
        return value

    def peek_bits(self, nbits: int) -> int:
        """Return up to ``nbits`` upcoming bits without consuming them.

        Near the end of the stream fewer bits may be available; missing
        high bits read as zero, which suits canonical Huffman peeking.
        """
        data = self._data
        while self._bitcount < nbits and self._pos < len(data):
            chunk = data[self._pos:self._pos + 8]
            self._bitbuf |= int.from_bytes(chunk, "little") << self._bitcount
            self._pos += len(chunk)
            self._bitcount += len(chunk) << 3
        return self._bitbuf & ((1 << nbits) - 1)

    def skip_bits(self, nbits: int) -> None:
        """Consume ``nbits`` previously peeked bits.

        Asking for more bits than the stream holds means a truncated
        stream (zero-padded peeks can look decodable), so the error is
        the uniform end-of-stream one.
        """
        if nbits > self._bitcount:
            raise DeflateError("unexpected end of DEFLATE stream")
        self._bitbuf >>= nbits
        self._bitcount -= nbits

    def align_to_byte(self) -> None:
        """Drop bits up to the next byte boundary."""
        drop = self._bitcount & 7
        self._bitbuf >>= drop
        self._bitcount -= drop

    def read_bytes(self, n: int) -> bytes:
        """Read ``n`` raw bytes; the stream must be byte-aligned."""
        if self._bitcount & 7:
            raise DeflateError("read_bytes requires byte alignment")
        out = bytearray()
        buffered = min(self._bitcount >> 3, n)
        if buffered:
            out += (self._bitbuf
                    & ((1 << (buffered << 3)) - 1)).to_bytes(buffered,
                                                             "little")
            self._bitbuf >>= buffered << 3
            self._bitcount -= buffered << 3
            n -= buffered
        if n > 0:
            if self._pos + n > len(self._data):
                raise DeflateError("unexpected end of DEFLATE stream "
                                   "in stored data")
            out += self._data[self._pos:self._pos + n]
            self._pos += n
        return bytes(out)

    @property
    def bits_consumed(self) -> int:
        """Number of bits consumed from the underlying buffer so far."""
        return self._pos * 8 - self._bitcount

    @property
    def byte_position(self) -> int:
        """Byte offset of the next unread byte (after alignment)."""
        if self._bitcount & 7:
            raise DeflateError("byte_position requires byte alignment")
        return self._pos - self._bitcount // 8
