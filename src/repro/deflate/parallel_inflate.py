"""Speculative chunk-parallel DEFLATE/gzip decompression (rapidgzip-style).

Serial inflate is a chain: every block needs the 32 KiB window its
predecessors left behind, which is why :mod:`.parallel` could only
parallelise the *compress* side.  This module breaks the chain with the
two-stage scheme of *rapidgzip* and *Massively-Parallel Lossless Data
Decompression*:

1. **Speculate.**  The payload is split at fixed compressed-byte
   targets.  For each target a pool worker bit-scans forward for a
   plausible block header (only dynamic-Huffman headers are dense
   enough to validate — the code-length pre-table rejects almost every
   false position) or, for multi-member gzip archives, takes a member
   magic as a known-clean restart point.  The worker then decodes
   ahead **without knowing the window**: back-references that reach
   before its chunk are emitted as window-relative *markers* (cell
   values ``256 + index`` into a virtual 32 KiB window) that propagate
   through intra-chunk copies; once a chunk's trailing 32 KiB is
   marker-free it flips to the ordinary fast byte kernel.

2. **Resolve.**  The parent walks the stream in order.  When the next
   speculative chunk starts at *exactly* the current bit position, its
   markers are patched from the now-known window and its output is
   spliced in; otherwise (false candidate, fixed/stored boundary, scan
   miss) the gap is decoded serially with the one-shot kernels.  Wrong
   speculation can therefore cost time, never bytes: output is
   byte-identical to serial inflate on every input, for every worker
   count, including every container checksum verification.

Any full decode can also record a :class:`~repro.deflate.seekindex.SeekIndex`
(block bit-offset → window snapshot + running CRC), and
:func:`read_range` serves random reads from an indexed archive without
decompressing the prefix — the seekable half of the story, used by
``repro cat --range``.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass

from ..errors import ChecksumError, DeflateError, ExecError, \
    OutputOverflow, SeekIndexError
from ..obs.metrics import REGISTRY as _REGISTRY
from ..obs.trace import TRACE as _TRACE
from .bitio import BitReader
from .checksums import adler32, crc32
from .constants import (
    BTYPE_DYNAMIC,
    BTYPE_FIXED,
    BTYPE_STORED,
    DIST_BASE,
    DIST_EXTRA_BITS,
    END_OF_BLOCK,
    LENGTH_BASE,
    LENGTH_EXTRA_BITS,
    WINDOW_SIZE,
)
from .gzip_stream import _header_length
from .huffman import _ROOT_MASK, fixed_decoders
from .inflate import _BIT_MASKS, InflateStats, _inflate_huffman_block, \
    _read_dynamic_header
from .seekindex import DEFAULT_SPACING, SeekIndex, SeekPoint

_W = WINDOW_SIZE  # 32768

#: Compressed bytes per speculative chunk.  Matches the deflate side's
#: pigz default: big enough to amortise scan + patch, small enough that
#: a handful of chunks keeps every worker busy.
DEFAULT_INFLATE_CHUNK_SIZE = 1 << 17

#: Cap on one speculative chunk's marker-phase cells.  A garbage
#: candidate that happens to decode must not eat the worker's memory;
#: a *legitimate* chunk that overflows this (pathologically
#: compressible data) simply falls back to the serial path — slower,
#: never wrong.
DEFAULT_MAX_CELLS = 1 << 24

#: How many failed scan candidates one worker retries before giving
#: its whole span back to the serial resolver.
_SCAN_RETRIES = 8

_GZIP_MEMBER_MAGIC = b"\x1f\x8b\x08"


@dataclass(frozen=True)
class ParallelInflateResult:
    """Output plus the engine's accounting for one decode."""

    data: bytes
    fmt: str
    members: int
    workers: int
    chunks_speculated: int   # jobs dispatched to the pool
    chunks_used: int         # speculative results spliced into the output
    chunks_failed: int       # speculation wasted (scan miss / mismatch)
    serial_segments: int     # gaps the resolver decoded inline
    index: SeekIndex | None = None


@dataclass(frozen=True)
class RangeReadResult:
    """One random read served through a seek index."""

    data: bytes
    offset: int
    length: int
    decoded_bytes: int       # uncompressed bytes actually decoded
    skipped_bytes: int       # prefix bytes the index let us skip
    point_bit_offset: int    # where in the payload the decode resumed


# -- low-level decoders -------------------------------------------------------

def _reader_at(data: bytes, bit: int) -> BitReader:
    """A :class:`BitReader` positioned at an arbitrary *bit* offset."""
    reader = BitReader(data, start=bit >> 3)
    pre = bit & 7
    if pre:
        reader._fill(pre)
        reader.skip_bits(pre)
    return reader


def _decode_blocks(data: bytes, start_bit: int, window: bytes,
                   stop_bit: int | None = None,
                   want_bytes: int | None = None) -> tuple[bytes, int,
                                                           bool, int]:
    """Decode whole blocks from ``start_bit`` against a known window.

    Stops after the first block that ends at/after ``stop_bit``, after
    ``want_bytes`` of output, or at the final block — whichever comes
    first.  Returns ``(output, end_bit, saw_final, nblocks)``.
    """
    reader = _reader_at(data, start_bit)
    out = bytearray(window)
    base = len(out)
    stats = InflateStats()
    nblocks = 0
    final = False
    while True:
        final_bit = reader.read_bits(1)
        btype = reader.read_bits(2)
        nblocks += 1
        if btype == BTYPE_STORED:
            reader.align_to_byte()
            header = reader.read_bytes(4)
            size = header[0] | (header[1] << 8)
            nsize = header[2] | (header[3] << 8)
            if size != (~nsize & 0xFFFF):
                raise DeflateError("stored block LEN/NLEN mismatch")
            out.extend(reader.read_bytes(size))
        elif btype == BTYPE_FIXED:
            lit_dec, dist_dec = fixed_decoders()
            _inflate_huffman_block(reader, out, lit_dec, dist_dec,
                                   stats, 1 << 62)
        elif btype == BTYPE_DYNAMIC:
            lit_dec, dist_dec = _read_dynamic_header(reader)
            _inflate_huffman_block(reader, out, lit_dec, dist_dec,
                                   stats, 1 << 62)
        else:
            raise DeflateError("reserved block type 3")
        if final_bit:
            final = True
            break
        if stop_bit is not None and reader.bits_consumed >= stop_bit:
            break
        if want_bytes is not None and len(out) - base >= want_bytes:
            break
    return bytes(out[base:]), reader.bits_consumed, final, nblocks


def _marked_huffman_block(reader: BitReader, cells: list[int],
                          lit_dec, dist_dec, state: list[int]) -> None:
    """Decode one Huffman block into marker cells (window unknown).

    ``cells`` holds ints: ``< 256`` is a literal byte, ``256 + i`` is a
    marker naming index ``i`` of the virtual 32 KiB window that ends
    where this chunk starts.  Markers propagate through copies, so the
    patch phase is a single table lookup per cell.  ``state`` is
    ``[last_marker_pos, min_window_index]`` carried across blocks.
    Same local-variable bit-loop shape as the byte kernel.
    """
    data = reader._data
    pos = reader._pos
    bitbuf = reader._bitbuf
    bitcount = reader._bitcount
    lit_fast = lit_dec._fast
    dist_fast = dist_dec._fast
    root_mask = _ROOT_MASK
    masks = _BIT_MASKS
    length_base = LENGTH_BASE
    length_extra = LENGTH_EXTRA_BITS
    dist_base = DIST_BASE
    dist_extra = DIST_EXTRA_BITS
    append = cells.append
    last_marker, min_idx = state
    while True:
        if bitcount < 48:
            chunk = data[pos:pos + 8]
            bitbuf |= int.from_bytes(chunk, "little") << bitcount
            pos += len(chunk)
            bitcount += len(chunk) << 3
        entry = lit_fast[bitbuf & root_mask]
        if entry:
            nb = entry & 31
            if nb > bitcount:
                raise DeflateError("unexpected end of DEFLATE stream")
            sym = entry >> 5
            bitbuf >>= nb
            bitcount -= nb
        else:
            reader._pos = pos
            reader._bitbuf = bitbuf
            reader._bitcount = bitcount
            sym = lit_dec._decode_slow(reader)
            pos = reader._pos
            bitbuf = reader._bitbuf
            bitcount = reader._bitcount
        if sym < 256:
            append(sym)
            continue
        if sym == END_OF_BLOCK:
            reader._pos = pos
            reader._bitbuf = bitbuf
            reader._bitcount = bitcount
            state[0] = last_marker
            state[1] = min_idx
            return
        if sym > 285:
            raise DeflateError(f"invalid length symbol {sym}")
        if bitcount < 48:
            chunk = data[pos:pos + 8]
            bitbuf |= int.from_bytes(chunk, "little") << bitcount
            pos += len(chunk)
            bitcount += len(chunk) << 3
        idx = sym - 257
        eb = length_extra[idx]
        if eb > bitcount:
            raise DeflateError("unexpected end of DEFLATE stream")
        length = length_base[idx] + (bitbuf & masks[eb])
        bitbuf >>= eb
        bitcount -= eb
        entry = dist_fast[bitbuf & root_mask]
        if entry:
            nb = entry & 31
            if nb > bitcount:
                raise DeflateError("unexpected end of DEFLATE stream")
            dsym = entry >> 5
            bitbuf >>= nb
            bitcount -= nb
        else:
            reader._pos = pos
            reader._bitbuf = bitbuf
            reader._bitcount = bitcount
            dsym = dist_dec._decode_slow(reader)
            pos = reader._pos
            bitbuf = reader._bitbuf
            bitcount = reader._bitcount
        if dsym > 29:
            raise DeflateError(f"invalid distance symbol {dsym}")
        eb = dist_extra[dsym]
        if eb > bitcount:
            raise DeflateError("unexpected end of DEFLATE stream")
        dist = dist_base[dsym] + (bitbuf & masks[eb])
        bitbuf >>= eb
        bitcount -= eb
        p = len(cells)
        src = p - dist
        if src >= 0 and last_marker < src and dist >= length:
            # marker-free, non-overlapping source: one slice copy
            cells.extend(cells[src:src + length])
        else:
            for k in range(length):
                s = src + k
                if s >= 0:
                    v = cells[s]
                    append(v)
                    if v > 255:
                        last_marker = p + k
                else:
                    widx = _W + s  # s in [-32768, -1]
                    append(widx + 256)
                    last_marker = p + k
                    if widx < min_idx:
                        min_idx = widx


def _decode_marked(data: bytes, start_bit: int, stop_bit: int,
                   max_cells: int = DEFAULT_MAX_CELLS) -> dict:
    """Speculatively decode whole blocks from ``start_bit`` against an
    unknown window.  Runs the marker kernel until the trailing 32 KiB
    of output is marker-free, then flips to the fast byte kernel (the
    common case: all later back-references land inside the chunk).
    """
    reader = _reader_at(data, start_bit)
    cells: list[int] = []
    state = [-1, _W]  # last marker position, minimum window index
    out: bytearray | None = None
    base = 0
    stats = InflateStats()
    nblocks = 0
    final = False
    while True:
        if out is None and len(cells) - 1 - state[0] >= _W:
            # Seed the byte kernel with the (marker-free) last window;
            # the seed cells stay in ``cells`` so patching still covers
            # them — only *new* output lands in ``out``.
            out = bytearray(cells[-_W:])
            base = _W
        final_bit = reader.read_bits(1)
        btype = reader.read_bits(2)
        nblocks += 1
        if btype == BTYPE_STORED:
            reader.align_to_byte()
            header = reader.read_bytes(4)
            size = header[0] | (header[1] << 8)
            nsize = header[2] | (header[3] << 8)
            if size != (~nsize & 0xFFFF):
                raise DeflateError("stored block LEN/NLEN mismatch")
            chunk = reader.read_bytes(size)
            if out is None:
                cells.extend(chunk)
            else:
                out.extend(chunk)
        elif btype in (BTYPE_FIXED, BTYPE_DYNAMIC):
            if btype == BTYPE_FIXED:
                lit_dec, dist_dec = fixed_decoders()
            else:
                lit_dec, dist_dec = _read_dynamic_header(reader)
            if out is None:
                _marked_huffman_block(reader, cells, lit_dec, dist_dec,
                                      state)
                if len(cells) > max_cells:
                    raise DeflateError(
                        "speculative chunk exceeds marker cell budget")
            else:
                _inflate_huffman_block(reader, out, lit_dec, dist_dec,
                                       stats, 1 << 62)
        else:
            raise DeflateError("reserved block type 3")
        if final_bit:
            final = True
            break
        if reader.bits_consumed >= stop_bit:
            break
    tail = bytes(out[base:]) if out is not None else b""
    return {"kind": "scan", "ok": True, "start_bit": start_bit,
            "end_bit": reader.bits_consumed, "final": final,
            "cells": cells, "min_idx": state[1], "tail": tail,
            "nbytes": len(cells) + len(tail), "blocks": nblocks}


def _patch_cells(cells: list[int], min_idx: int, window: bytes) -> bytes:
    """Replace window markers with real bytes now the window is known."""
    shift = _W - len(window)
    if min_idx < shift:
        # The chunk reaches further back than the member has produced —
        # exactly what the serial kernel calls out, so keep its words.
        raise DeflateError("back-reference before start of output")
    if shift:
        return bytes(window[c - 256 - shift] if c > 255 else c
                     for c in cells)
    return bytes(window[c - 256] if c > 255 else c for c in cells)


# -- speculative split points -------------------------------------------------

def _scan_block_start(data: bytes, from_bit: int,
                      limit_bit: int) -> int | None:
    """First plausible dynamic-block header at/after ``from_bit``.

    A 3-bit peek filters 7/8 of positions before the expensive trial
    parse; the dynamic header's code-length table is self-checking
    (over-/under-subscribed codes raise), which kills nearly every
    false positive without touching payload bits.
    """
    nbytes = len(data)
    end = min(limit_bit, nbytes * 8 - 16)
    bit = from_bit
    while bit < end:
        byte_idx = bit >> 3
        word = data[byte_idx]
        if byte_idx + 1 < nbytes:
            word |= data[byte_idx + 1] << 8
        if ((word >> (bit & 7)) >> 1) & 3 == BTYPE_DYNAMIC:
            reader = _reader_at(data, bit)
            try:
                reader.read_bits(3)
                _read_dynamic_header(reader)
            except DeflateError:
                pass
            else:
                return bit
        bit += 1
    return None


def _find_member_starts(payload: bytes) -> list[int]:
    """Byte offsets of plausible gzip member headers (magic + sane FLG)."""
    starts: list[int] = []
    off = payload.find(_GZIP_MEMBER_MAGIC, 1)
    while off != -1:
        if off + 3 < len(payload) and payload[off + 3] & 0xE0 == 0:
            starts.append(off)
        off = payload.find(_GZIP_MEMBER_MAGIC, off + 1)
    return starts


def _decode_member_run(view: bytes, header_byte: int,
                       stop_bit: int) -> dict:
    """Decode gzip members from a *known* header at ``header_byte``.

    Member starts need no marker machinery — the window is empty by
    definition — so this runs the fast kernel, verifies each completed
    member's trailer itself (it holds the whole member), and stops at
    the first member boundary past ``stop_bit`` or mid-member at a
    block boundary, reporting the open member's running CRC.
    """
    out = bytearray()
    completed: list[dict] = []
    open_rec: dict | None = None
    pos = header_byte
    end_bit = header_byte * 8
    final = False
    first = True
    while True:
        try:
            header_len = _header_length(view[pos:])
        except DeflateError:
            if first:
                raise
            break  # junk after a member boundary: the resolver's problem
        if header_len is None:
            if first:
                raise DeflateError("truncated gzip header")
            break
        seg, seg_end, is_final, _nblocks = _decode_blocks(
            view, (pos + header_len) * 8, b"", stop_bit=stop_bit)
        if not is_final:
            # Stopped mid-member at a block boundary: hand back the
            # running CRC so the resolver can still verify the trailer.
            out += seg
            open_rec = {"out_len": len(seg), "crc": crc32(seg)}
            end_bit = seg_end
            break
        tail = (seg_end + 7) // 8
        if tail + 8 > len(view):
            if first:
                raise DeflateError("gzip stream truncated before trailer")
            break
        expected_crc, isize = struct.unpack_from("<II", view, tail)
        if crc32(seg) != expected_crc or \
                (len(seg) & 0xFFFFFFFF) != isize:
            if first:
                raise ChecksumError("gzip member checksum mismatch")
            break
        out += seg
        completed.append({"out_len": len(seg),
                          "body_bit": (pos + header_len) * 8})
        first = False
        pos = tail + 8
        end_bit = pos * 8
        if pos >= len(view):
            final = True
            break
        if end_bit >= stop_bit:
            break
    if not completed and open_rec is None:
        raise DeflateError("member chunk produced nothing")
    return {"kind": "member", "ok": True, "start_bit": header_byte * 8,
            "end_bit": end_bit, "final": final, "tail": bytes(out),
            "completed": completed, "open": open_rec,
            "nbytes": len(out)}


# -- worker entry -------------------------------------------------------------

def inflate_chunk_job(*, kind: str, scan_from_bit: int, stop_bit: int,
                      base_byte: int = 0, slice_hi: int | None = None,
                      src: tuple[str, int, int] | None = None,
                      data: bytes | None = None,
                      max_cells: int = DEFAULT_MAX_CELLS) -> dict:
    """Pool-worker entry: speculatively decode one chunk.

    The payload rides in a shared-memory slab (``src = (slab, offset,
    length)``); the worker slices only ``[base_byte:slice_hi)`` out of
    it.  All bit offsets in the returned record are absolute within the
    payload.  Speculation failures return ``{"ok": False}`` — they are
    a scheduling outcome, not an error (the resolver decodes the span
    serially and surfaces any *genuine* stream error itself).
    """
    if data is None:
        from ..exec import shm
        name, offset, length = src
        hi = length if slice_hi is None else min(slice_hi, length)
        view = bytes(shm.attach(name).buf[offset + base_byte:offset + hi])
    else:
        hi = len(data) if slice_hi is None else min(slice_hi, len(data))
        view = data[base_byte:hi]
    rel_from = scan_from_bit - base_byte * 8
    rel_stop = stop_bit - base_byte * 8
    span = (_TRACE.span("inflate.chunk", kind=kind, nbytes=len(view))
            if _TRACE.enabled else None)
    try:
        record = _chunk_decode(view, kind, rel_from, rel_stop, max_cells)
    finally:
        if span is not None:
            span.__exit__(None, None, None)
    if record.get("ok"):
        rebase = base_byte * 8
        record["start_bit"] += rebase
        record["end_bit"] += rebase
        for member in record.get("completed", ()):
            member["body_bit"] += rebase
    return record


def _chunk_decode(view: bytes, kind: str, rel_from: int, rel_stop: int,
                  max_cells: int) -> dict:
    if kind == "member":
        try:
            return _decode_member_run(view, rel_from // 8, rel_stop)
        except DeflateError:
            return {"kind": kind, "ok": False, "reason": "member-decode"}
    from_bit = rel_from
    for _ in range(_SCAN_RETRIES):
        start = _scan_block_start(view, from_bit, rel_stop)
        if start is None:
            return {"kind": kind, "ok": False, "reason": "no-candidate"}
        try:
            return _decode_marked(view, start, rel_stop,
                                  max_cells=max_cells)
        except DeflateError:
            from_bit = start + 1
    return {"kind": kind, "ok": False, "reason": "retries-exhausted"}


# -- parent-side planning and dispatch ---------------------------------------

def _plan_jobs(payload: bytes, fmt: str, chunk_size: int) -> list[dict]:
    """One speculative job per chunk target past the first chunk.

    A gzip member magic inside a chunk's span beats a bit scan: it is a
    known-clean restart point (empty window, worker-verifiable CRC), so
    multi-member archives parallelise even when the scan would miss.
    """
    member_starts = _find_member_starts(payload) if fmt == "gzip" else []
    jobs: list[dict] = []
    mi = 0
    for target in range(chunk_size, len(payload), chunk_size):
        stop_byte = min(target + chunk_size, len(payload))
        while mi < len(member_starts) and member_starts[mi] < target:
            mi += 1
        if mi < len(member_starts) and member_starts[mi] < stop_byte:
            start_byte = member_starts[mi]
            mi += 1
            kind = "member"
        else:
            start_byte = target
            kind = "scan"
        jobs.append({
            "kind": kind,
            "scan_from_bit": start_byte * 8,
            "stop_bit": stop_byte * 8,
            "base_byte": start_byte,
            # A single block may overrun the stop target; give the
            # slice one extra chunk of slack (overruns beyond it fail
            # speculation and fall back to serial).
            "slice_hi": min(len(payload), stop_byte + chunk_size + 65536),
        })
    return jobs


def _pool_speculate(payload: bytes, jobs: list[dict], nworkers: int,
                    max_cells: int, obs_span) -> list[dict] | None:
    """Run the chunk jobs on the warm pool; ``None`` degrades to serial."""
    from ..exec.pool import get_default_pool

    try:
        pool = get_default_pool(min_workers=nworkers)
    except ExecError:
        return None
    allocator = pool.allocator
    slab = allocator.acquire(max(1, len(payload)))
    try:
        slab.write(0, payload)
        calls = [("inflate_chunk",
                  {**job, "max_cells": max_cells,
                   "src": (slab.name, 0, len(payload))})
                 for job in jobs]
        try:
            return pool.run_batch(calls, span_parent=obs_span)
        except ExecError:
            return None
    finally:
        allocator.release(slab)


# -- the sequential resolve/patch loop ---------------------------------------

class _Resolver:
    """Walks the stream in order, splicing speculative chunks when their
    start bit matches reality and serially decoding every gap."""

    def __init__(self, payload: bytes, fmt: str, specs: dict[int, dict],
                 history: bytes, build_index: bool, spacing: int,
                 max_output: int, counters: dict) -> None:
        self.payload = payload
        self.fmt = fmt
        self.specs = specs
        self.build_index = build_index
        self.spacing = spacing
        self.max_output = max_output
        self.counters = counters
        self.out = bytearray()
        self.points: list[SeekPoint] = []
        self.members = 0
        self.member_start = 0
        self.member_crc = 0
        self.window = history[-_W:] if fmt == "raw" else b""

    def run(self) -> None:
        payload = self.payload
        if self.fmt == "gzip":
            if len(payload) < 18:
                raise DeflateError("gzip stream too short")
            header_len = _header_length(payload)
            if header_len is None:
                raise DeflateError("truncated gzip header")
            self.pos_bit = header_len * 8
        elif self.fmt == "zlib":
            if len(payload) < 6:
                raise DeflateError("zlib stream too short")
            cmf, flg = payload[0], payload[1]
            if (cmf & 0x0F) != 8:
                raise DeflateError(f"unsupported zlib method {cmf & 0x0F}")
            if ((cmf << 8) | flg) % 31 != 0:
                raise DeflateError("zlib header check failed")
            if flg & 0x20:
                raise DeflateError("stream needs a preset dictionary")
            self.pos_bit = 16
        else:
            self.pos_bit = 0
        while self._body_step():
            pass

    # -- body state --------------------------------------------------------

    def _body_step(self) -> bool:
        """One resolver step; returns False when the stream is done."""
        self._record_point()
        specs = self.specs
        for key in [k for k in specs if k < self.pos_bit]:
            del specs[key]
        rec = specs.pop(self.pos_bit, None)
        if rec is not None and rec.get("ok") and rec["kind"] == "scan":
            final = self._splice_chunk(rec)
        else:
            if rec is not None:
                self.counters["failed"] += 1
            final = self._serial_segment()
        if not final:
            return True
        return self._finish_member()

    def _splice_chunk(self, rec: dict) -> bool:
        span = (_TRACE.span("inflate.patch", nbytes=rec["nbytes"],
                            markers=len(rec["cells"]))
                if _TRACE.enabled else None)
        try:
            seg = _patch_cells(rec["cells"], rec["min_idx"],
                               self.window) + rec["tail"]
        finally:
            if span is not None:
                span.__exit__(None, None, None)
        self.counters["used"] += 1
        self._advance(seg, rec["end_bit"])
        return rec["final"]

    def _serial_segment(self) -> bool:
        nxt = min((k for k in self.specs if k > self.pos_bit),
                  default=None)
        # While indexing, cap the segment near the point spacing so
        # boundaries (and their windows) actually get recorded.
        want = self.spacing if self.build_index else None
        seg, end_bit, final, _nblocks = _decode_blocks(
            self.payload, self.pos_bit, self.window, stop_bit=nxt,
            want_bytes=want)
        self.counters["serial"] += 1
        self._advance(seg, end_bit)
        return final

    def _advance(self, seg: bytes, end_bit: int) -> None:
        self.out += seg
        if len(self.out) > self.max_output:
            raise OutputOverflow("output exceeds allowed size")
        self.member_crc = crc32(seg, self.member_crc)
        if len(seg) >= _W:
            self.window = seg[-_W:]
        else:
            self.window = (self.window + seg)[-_W:]
        self.pos_bit = end_bit

    # -- member boundaries -------------------------------------------------

    def _finish_member(self) -> bool:
        payload = self.payload
        if self.fmt == "raw":
            return False  # trailing bytes are the container's business
        if self.fmt == "zlib":
            tail = (self.pos_bit + 7) // 8
            if tail + 4 > len(payload):
                raise DeflateError("zlib stream truncated before Adler-32")
            (expected,) = struct.unpack_from(">I", payload, tail)
            if adler32(bytes(self.out)) != expected:
                raise ChecksumError("Adler-32 mismatch")
            self.members = 1
            return False
        tail = (self.pos_bit + 7) // 8
        if tail + 8 > len(payload):
            raise DeflateError("gzip stream truncated before trailer")
        expected_crc, isize = struct.unpack_from("<II", payload, tail)
        if self.member_crc != expected_crc:
            raise ChecksumError("gzip CRC-32 mismatch")
        member_size = len(self.out) - self.member_start
        if (member_size & 0xFFFFFFFF) != isize:
            raise ChecksumError("gzip ISIZE mismatch")
        self.members += 1
        return self._next_member(tail + 8)

    def _next_member(self, header_byte: int) -> bool:
        """Advance over gzip member boundaries, chaining pre-verified
        member-run chunks; returns True to continue decoding."""
        payload = self.payload
        while True:
            if header_byte >= len(payload):
                return False
            rec = self.specs.pop(header_byte * 8, None)
            if rec is not None and rec.get("ok") \
                    and rec["kind"] == "member":
                self.counters["used"] += 1
                if self.build_index:
                    # Spliced member runs bypass _body_step, so emit
                    # the always-indexed member-body-start points here
                    # (empty window, zero running CRC by definition).
                    base = len(self.out)
                    for i, member in enumerate(rec["completed"]):
                        if not self.points or \
                                self.points[-1].out_offset < base:
                            self.points.append(SeekPoint(
                                bit_offset=member["body_bit"],
                                out_offset=base,
                                member=self.members + i,
                                member_out_offset=0, crc=0,
                                window=b""))
                        base += member["out_len"]
                self.out += rec["tail"]
                if len(self.out) > self.max_output:
                    raise OutputOverflow("output exceeds allowed size")
                self.members += len(rec["completed"])
                open_rec = rec["open"]
                if open_rec is not None:
                    self.member_start = len(self.out) - open_rec["out_len"]
                    self.member_crc = open_rec["crc"]
                    lo = max(self.member_start, len(self.out) - _W)
                    self.window = bytes(self.out[lo:])
                    self.pos_bit = rec["end_bit"]
                    return True  # resume mid-member
                # The chunk's "final" flag only says its *slice* ran
                # out; whether the payload did is decided here.
                header_byte = rec["end_bit"] // 8
                continue
            if rec is not None:
                self.counters["failed"] += 1
            header_len = _header_length(payload[header_byte:])
            if header_len is None:
                raise DeflateError("truncated gzip header")
            self.pos_bit = (header_byte + header_len) * 8
            self.window = b""
            self.member_crc = 0
            self.member_start = len(self.out)
            return True

    # -- seek-index capture ------------------------------------------------

    def _record_point(self) -> None:
        if not self.build_index:
            return
        if self.points:
            gap = len(self.out) - self.points[-1].out_offset
            # Member body starts are always worth a point (the window
            # is empty there); otherwise honour the spacing.
            at_member_start = len(self.out) == self.member_start
            if gap == 0 or (gap < self.spacing and not at_member_start):
                return
        self.points.append(SeekPoint(
            bit_offset=self.pos_bit, out_offset=len(self.out),
            member=self.members,
            member_out_offset=len(self.out) - self.member_start,
            crc=self.member_crc, window=self.window))


# -- public API ---------------------------------------------------------------

def parallel_inflate(payload: bytes, fmt: str = "gzip", *,
                     workers: int | None = None,
                     chunk_size: int = DEFAULT_INFLATE_CHUNK_SIZE,
                     history: bytes = b"",
                     build_index: bool = False,
                     index_spacing: int = DEFAULT_SPACING,
                     max_output: int = 1 << 62,
                     max_cells: int = DEFAULT_MAX_CELLS
                     ) -> ParallelInflateResult:
    """Decompress ``payload`` with speculative chunk parallelism.

    ``workers`` caps pool usage (default ``os.cpu_count()``; 1 decodes
    inline with no pool).  Output is byte-identical to the serial
    decoders for every worker count; container checksums are verified
    exactly as :func:`~repro.deflate.containers.gzip_decompress` /
    ``zlib_decompress`` do, including multi-member gzip archives.
    ``history`` is only meaningful for ``fmt="raw"`` continuation
    streams.  With ``build_index=True`` the resolve pass also records a
    :class:`SeekIndex` (one point per ``index_spacing`` output bytes)
    for later :func:`read_range` calls.
    """
    if fmt not in ("gzip", "zlib", "raw"):
        raise DeflateError(f"parallel inflate does not support {fmt!r}")
    if history and fmt != "raw":
        raise DeflateError("history only applies to raw streams")
    if chunk_size < 4096:
        raise DeflateError(f"chunk_size must be >= 4096, got {chunk_size}")
    from ..exec.worker import in_worker

    njobs_possible = max(0, (len(payload) - 1) // chunk_size)
    nworkers = min(workers or os.cpu_count() or 1,
                   max(1, njobs_possible))
    counters = {"used": 0, "failed": 0, "serial": 0, "speculated": 0}
    obs_span = (_TRACE.span("inflate.parallel", nbytes=len(payload),
                            fmt=fmt, workers=nworkers)
                if _TRACE.enabled else None)
    specs: dict[int, dict] = {}
    try:
        if nworkers > 1 and njobs_possible >= 1 and not in_worker():
            jobs = _plan_jobs(payload, fmt, chunk_size)
            counters["speculated"] = len(jobs)
            records = _pool_speculate(payload, jobs, nworkers,
                                      max_cells, obs_span)
            if records is None:
                counters["speculated"] = 0
                if obs_span is not None:
                    obs_span.event("exec.pool_fallback")
            else:
                for record in records:
                    if record and record.get("ok"):
                        specs[record["start_bit"]] = record
                    else:
                        counters["failed"] += 1
        resolver = _Resolver(payload, fmt, specs, history, build_index,
                             index_spacing, max_output, counters)
        resolver.run()
        if obs_span is not None:
            obs_span.set(out_bytes=len(resolver.out),
                         members=max(resolver.members, 1),
                         chunks_used=counters["used"],
                         chunks_failed=counters["failed"],
                         serial_segments=counters["serial"])
    finally:
        if obs_span is not None:
            obs_span.__exit__(None, None, None)

    index = None
    if build_index:
        index = SeekIndex(fmt=fmt, compressed_size=len(payload),
                          output_size=len(resolver.out),
                          members=max(resolver.members, 1),
                          points=resolver.points)
    if _REGISTRY.enabled:
        chunks = _REGISTRY.counter(
            "repro_inflate_chunks_total",
            "parallel-inflate chunk outcomes by disposition")
        for outcome in ("used", "failed", "serial"):
            if counters[outcome]:
                chunks.inc(counters[outcome], outcome=outcome)
        _REGISTRY.counter(
            "repro_inflate_parallel_bytes_total",
            "bytes decoded through parallel_inflate").inc(
                len(resolver.out))
    return ParallelInflateResult(
        data=bytes(resolver.out), fmt=fmt,
        members=max(resolver.members, 1), workers=nworkers,
        chunks_speculated=counters["speculated"],
        chunks_used=counters["used"],
        chunks_failed=counters["failed"],
        serial_segments=counters["serial"], index=index)


def read_range(payload: bytes, offset: int, length: int, *,
               index: SeekIndex, fmt: str | None = None
               ) -> RangeReadResult:
    """Serve ``payload[uncompressed offset:offset+length]`` via ``index``.

    Decoding resumes at the latest indexed block boundary at/before
    ``offset`` — the prefix is *never* decompressed.  Clipping follows
    Python slice semantics (reads past the end return what exists).
    gzip member trailers crossed by the read are still verified using
    the index's running CRC state; the zlib Adler-32 spans the whole
    stream and therefore cannot be checked from a midpoint.
    """
    if offset < 0 or length < 0:
        raise DeflateError("offset and length must be non-negative")
    fmt = fmt or index.fmt
    if fmt != index.fmt:
        raise SeekIndexError(
            f"index is for {index.fmt!r} payloads, not {fmt!r}")
    if index.compressed_size != len(payload):
        raise SeekIndexError(
            f"index was built for a {index.compressed_size}-byte "
            f"payload, got {len(payload)} bytes")
    point = index.locate(offset)
    span = (_TRACE.span("inflate.range", offset=offset, length=length,
                        resume_bit=point.bit_offset)
            if _TRACE.enabled else None)
    try:
        out, decoded = _decode_from_point(payload, fmt, point,
                                          offset + length)
    finally:
        if span is not None:
            span.__exit__(None, None, None)
    start = offset - point.out_offset
    data = bytes(out[start:start + length]) if start < len(out) else b""
    if _REGISTRY.enabled:
        _REGISTRY.counter("repro_inflate_random_reads_total",
                          "range reads served through a seek index").inc()
        _REGISTRY.counter("repro_inflate_range_decoded_bytes_total",
                          "bytes decoded while serving range reads").inc(
                              decoded)
        _REGISTRY.counter("repro_inflate_range_skipped_bytes_total",
                          "prefix bytes skipped thanks to the index").inc(
                              point.out_offset)
    return RangeReadResult(data=data, offset=offset, length=length,
                           decoded_bytes=decoded,
                           skipped_bytes=point.out_offset,
                           point_bit_offset=point.bit_offset)


def _decode_from_point(payload: bytes, fmt: str, point: SeekPoint,
                       want_end: int) -> tuple[bytearray, int]:
    """Decode forward from a seek point until ``want_end`` global bytes."""
    out = bytearray()
    base = point.out_offset
    pos_bit = point.bit_offset
    window = point.window
    member_crc = point.crc
    member_out = point.member_out_offset
    while base + len(out) < want_end:
        want = want_end - base - len(out)
        seg, end_bit, final, _nblocks = _decode_blocks(
            payload, pos_bit, window, want_bytes=want)
        out += seg
        member_crc = crc32(seg, member_crc)
        member_out += len(seg)
        window = seg[-_W:] if len(seg) >= _W else (window + seg)[-_W:]
        pos_bit = end_bit
        if not final:
            continue
        if fmt != "gzip":
            break
        tail = (pos_bit + 7) // 8
        if tail + 8 > len(payload):
            raise DeflateError("gzip stream truncated before trailer")
        expected_crc, isize = struct.unpack_from("<II", payload, tail)
        if member_crc != expected_crc:
            raise ChecksumError("gzip CRC-32 mismatch")
        if (member_out & 0xFFFFFFFF) != isize:
            raise ChecksumError("gzip ISIZE mismatch")
        next_header = tail + 8
        if next_header >= len(payload):
            break
        header_len = _header_length(payload[next_header:])
        if header_len is None:
            raise DeflateError("truncated gzip header")
        pos_bit = (next_header + header_len) * 8
        window = b""
        member_crc = 0
        member_out = 0
    return out, len(out)
