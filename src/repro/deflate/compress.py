"""Raw DEFLATE compression: token buffering, block choice, bit emission.

The compressor tokenizes with :mod:`repro.deflate.matcher`, splits the
token stream into blocks, and per block picks the cheapest of the three
RFC 1951 encodings (stored / fixed Huffman / dynamic Huffman) exactly the
way zlib does, by comparing the computed bit costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DeflateError, HuffmanError
from ..obs.trace import TRACE as _TRACE
from .bitio import _LOW64, BitWriter
from .constants import (
    BTYPE_DYNAMIC,
    BTYPE_FIXED,
    BTYPE_STORED,
    CODELEN_ORDER,
    DIST_BASE,
    DIST_EXTRA_BITS,
    DIST_TO_CODE,
    END_OF_BLOCK,
    LENGTH_BASE,
    LENGTH_EXTRA_BITS,
    LENGTH_TO_CODE,
    MAX_CODE_LENGTH,
    MAX_CODELEN_CODE_LENGTH,
    NUM_CODELEN_SYMBOLS,
    NUM_DIST_SYMBOLS,
    NUM_LITLEN_SYMBOLS,
    fixed_dist_lengths,
    fixed_litlen_lengths,
)
from .huffman import HuffmanEncoder, fixed_encoders, limited_code_lengths
from .matcher import (MatchStats, Token, tokenize,
                      tokenize_huffman_only, tokenize_rle)

DEFAULT_BLOCK_TOKENS = 16384
_MAX_STORED_BLOCK = 65535


@dataclass
class BlockPlan:
    """One DEFLATE block before emission."""

    tokens: list[Token]
    raw: bytes  # the original input bytes this block covers
    btype: int = BTYPE_DYNAMIC
    litlen_lengths: list[int] = field(default_factory=list)
    dist_lengths: list[int] = field(default_factory=list)
    cost_bits: int = 0


@dataclass
class CompressResult:
    """Compressed stream plus the statistics models consume."""

    data: bytes
    stats: MatchStats
    blocks: list[int]  # chosen btype per emitted block

    @property
    def ratio(self) -> float:
        n = self.stats.input_bytes
        return n / len(self.data) if self.data else 0.0


def token_frequencies(
        tokens: list[Token]) -> tuple[list[int], list[int]]:
    """Histogram tokens into literal/length and distance frequencies."""
    lit_freq = [0] * NUM_LITLEN_SYMBOLS
    dist_freq = [0] * NUM_DIST_SYMBOLS
    for tok in tokens:
        if isinstance(tok, int):
            lit_freq[tok] += 1
        else:
            length, dist = tok
            lit_freq[LENGTH_TO_CODE[length]] += 1
            dist_freq[DIST_TO_CODE[dist]] += 1
    lit_freq[END_OF_BLOCK] += 1
    return lit_freq, dist_freq


def payload_cost_bits(lit_freq: list[int], dist_freq: list[int],
                      lit_lengths: list[int], dist_lengths: list[int]) -> int:
    """Bit cost of the token payload under the given codes."""
    bits = 0
    for sym, freq in enumerate(lit_freq):
        if freq:
            bits += freq * lit_lengths[sym]
            if sym > END_OF_BLOCK:
                bits += freq * LENGTH_EXTRA_BITS[sym - 257]
    for sym, freq in enumerate(dist_freq):
        if freq:
            bits += freq * (dist_lengths[sym] + DIST_EXTRA_BITS[sym])
    return bits


def _ensure_decodable(freq: list[int], lengths: list[int],
                      fill_syms: tuple[int, int]) -> list[int]:
    """Guarantee at least two coded symbols so the table is complete.

    zlib does the same for sparse distance alphabets; decoders otherwise
    see a degenerate one-code table.
    """
    coded = sum(1 for length in lengths if length)
    if coded >= 2:
        return lengths
    bumped = list(freq)
    for sym in fill_syms:
        if bumped[sym] == 0:
            bumped[sym] = 1
    return limited_code_lengths(bumped, MAX_CODE_LENGTH)


def build_dynamic_code(
        lit_freq: list[int],
        dist_freq: list[int]) -> tuple[list[int], list[int]]:
    """Build bounded code lengths for both alphabets of one block."""
    lit_lengths = limited_code_lengths(lit_freq, MAX_CODE_LENGTH)
    lit_lengths = _ensure_decodable(lit_freq, lit_lengths, (0, END_OF_BLOCK))
    dist_lengths = limited_code_lengths(dist_freq, MAX_CODE_LENGTH)
    dist_lengths = _ensure_decodable(dist_freq, dist_lengths, (0, 1))
    return lit_lengths, dist_lengths


def encode_code_lengths(lit_lengths: list[int],
                        dist_lengths: list[int]) -> tuple[list, int, int]:
    """RLE-encode the two length arrays per RFC 1951 section 3.2.7.

    Returns ``(ops, hlit, hdist)`` where each op is either a plain length
    symbol 0..15 or a tuple ``(16|17|18, extra_value)``.
    """
    hlit = NUM_LITLEN_SYMBOLS
    while hlit > 257 and lit_lengths[hlit - 1] == 0:
        hlit -= 1
    hdist = NUM_DIST_SYMBOLS
    while hdist > 1 and dist_lengths[hdist - 1] == 0:
        hdist -= 1

    seq = list(lit_lengths[:hlit]) + list(dist_lengths[:hdist])
    ops: list = []
    i = 0
    n = len(seq)
    while i < n:
        value = seq[i]
        run = 1
        while i + run < n and seq[i + run] == value:
            run += 1
        i += run
        if value == 0:
            while run >= 3:
                if run >= 11:
                    chunk = min(run, 138)
                    ops.append((18, chunk - 11))
                else:
                    chunk = min(run, 10)
                    ops.append((17, chunk - 3))
                run -= chunk
            ops.extend([0] * run)
        else:
            ops.append(value)
            run -= 1
            while run >= 3:
                chunk = min(run, 6)
                ops.append((16, chunk - 3))
                run -= chunk
            ops.extend([value] * run)
    return ops, hlit, hdist


def _codelen_frequencies(ops: list) -> list[int]:
    freq = [0] * NUM_CODELEN_SYMBOLS
    for op in ops:
        sym = op[0] if isinstance(op, tuple) else op
        freq[sym] += 1
    return freq


def dynamic_header_cost_bits(ops: list, cl_lengths: list[int]) -> int:
    """Bit cost of the dynamic block header (HLIT/HDIST/HCLEN + lengths)."""
    hclen = NUM_CODELEN_SYMBOLS
    while hclen > 4 and cl_lengths[CODELEN_ORDER[hclen - 1]] == 0:
        hclen -= 1
    bits = 5 + 5 + 4 + 3 * hclen
    for op in ops:
        if isinstance(op, tuple):
            sym = op[0]
            bits += cl_lengths[sym] + {16: 2, 17: 3, 18: 7}[sym]
        else:
            bits += cl_lengths[op]
    return bits


def _emit_dynamic_header(writer: BitWriter, ops: list, hlit: int, hdist: int,
                         cl_lengths: list[int]) -> None:
    hclen = NUM_CODELEN_SYMBOLS
    while hclen > 4 and cl_lengths[CODELEN_ORDER[hclen - 1]] == 0:
        hclen -= 1
    writer.write_bits(hlit - 257, 5)
    writer.write_bits(hdist - 1, 5)
    writer.write_bits(hclen - 4, 4)
    for idx in range(hclen):
        writer.write_bits(cl_lengths[CODELEN_ORDER[idx]], 3)
    encoder = HuffmanEncoder(cl_lengths)
    for op in ops:
        if isinstance(op, tuple):
            sym, extra = op
            encoder.encode(writer, sym)
            writer.write_bits(extra, {16: 2, 17: 3, 18: 7}[sym])
        else:
            encoder.encode(writer, op)


def _emit_tokens(writer: BitWriter, tokens: list[Token],
                 lit_enc: HuffmanEncoder, dist_enc: HuffmanEncoder) -> None:
    """Emit the token payload of one block — the compressor's hot loop.

    Length code + extra bits are pre-merged into one ``(bits, nbits)``
    pair per match length (3..258), and the distance code + extra bits
    merge at emit time, so a match costs two bit-buffer accumulations
    and a literal costs one.  The writer's accumulator lives in locals
    and is flushed in 8-byte chunks, exactly like ``write_bits`` would.
    """
    lit_codes = lit_enc.codes
    lit_lengths = lit_enc.lengths
    len_bits = [0] * 259
    len_nbits = [0] * 259
    for length in range(3, 259):
        lcode = LENGTH_TO_CODE[length]
        nb = lit_lengths[lcode]
        if nb:
            len_bits[length] = (lit_codes[lcode]
                                | ((length - LENGTH_BASE[lcode - 257]) << nb))
            len_nbits[length] = nb + LENGTH_EXTRA_BITS[lcode - 257]
    dist_codes = dist_enc.codes
    dist_lengths = dist_enc.lengths
    dist_base = DIST_BASE
    dist_extra = DIST_EXTRA_BITS
    dist_to_code = DIST_TO_CODE

    out = writer._out
    bitbuf = writer._bitbuf
    bitcount = writer._bitcount
    for tok in tokens:
        if type(tok) is int:
            nb = lit_lengths[tok]
            if not nb:
                raise HuffmanError(f"symbol {tok} has no code")
            bitbuf |= lit_codes[tok] << bitcount
            bitcount += nb
        else:
            length, dist = tok
            nb = len_nbits[length]
            if not nb:
                raise HuffmanError(
                    f"symbol {LENGTH_TO_CODE[length]} has no code")
            bitbuf |= len_bits[length] << bitcount
            bitcount += nb
            dcode = dist_to_code[dist]
            dnb = dist_lengths[dcode]
            if not dnb:
                raise HuffmanError(f"symbol {dcode} has no code")
            bitbuf |= (dist_codes[dcode]
                       | ((dist - dist_base[dcode]) << dnb)) << bitcount
            bitcount += dnb + dist_extra[dcode]
        if bitcount >= 64:
            out += (bitbuf & _LOW64).to_bytes(8, "little")
            bitbuf >>= 64
            bitcount -= 64
    nb = lit_lengths[END_OF_BLOCK]
    if not nb:
        raise HuffmanError(f"symbol {END_OF_BLOCK} has no code")
    bitbuf |= lit_codes[END_OF_BLOCK] << bitcount
    bitcount += nb
    if bitcount >= 64:
        out += (bitbuf & _LOW64).to_bytes(8, "little")
        bitbuf >>= 64
        bitcount -= 64
    writer._bitbuf = bitbuf
    writer._bitcount = bitcount


def _emit_stored(writer: BitWriter, raw: bytes, final: bool) -> None:
    offset = 0
    remaining = len(raw)
    first = True
    while remaining > 0 or first:
        first = False
        chunk = min(remaining, _MAX_STORED_BLOCK)
        last = final and chunk == remaining
        writer.write_bits(1 if last else 0, 1)
        writer.write_bits(BTYPE_STORED, 2)
        writer.align_to_byte()
        writer.write_bytes(bytes([chunk & 0xFF, chunk >> 8,
                                  (~chunk) & 0xFF, ((~chunk) >> 8) & 0xFF]))
        writer.write_bytes(raw[offset:offset + chunk])
        offset += chunk
        remaining -= chunk


def plan_block(tokens: list[Token], raw: bytes) -> BlockPlan:
    """Choose the cheapest encoding for one block of tokens."""
    lit_freq, dist_freq = token_frequencies(tokens)
    lit_lengths, dist_lengths = build_dynamic_code(lit_freq, dist_freq)
    ops, hlit, hdist = encode_code_lengths(lit_lengths, dist_lengths)
    cl_freq = _codelen_frequencies(ops)
    cl_lengths = limited_code_lengths(cl_freq, MAX_CODELEN_CODE_LENGTH)
    cl_lengths = _ensure_decodable(cl_freq, cl_lengths, (0, 18))

    dyn_bits = (dynamic_header_cost_bits(ops, cl_lengths)
                + payload_cost_bits(lit_freq, dist_freq,
                                    lit_lengths, dist_lengths))
    fixed_bits = payload_cost_bits(lit_freq, dist_freq,
                                   fixed_litlen_lengths(),
                                   fixed_dist_lengths())
    nstored = (len(raw) + _MAX_STORED_BLOCK - 1) // _MAX_STORED_BLOCK
    stored_bits = len(raw) * 8 + max(nstored, 1) * (3 + 7 + 32)

    plan = BlockPlan(tokens=tokens, raw=raw)
    if stored_bits <= dyn_bits and stored_bits <= fixed_bits:
        plan.btype = BTYPE_STORED
        plan.cost_bits = stored_bits
    elif fixed_bits <= dyn_bits:
        plan.btype = BTYPE_FIXED
        plan.cost_bits = fixed_bits + 3
    else:
        plan.btype = BTYPE_DYNAMIC
        plan.cost_bits = dyn_bits + 3
        plan.litlen_lengths = lit_lengths
        plan.dist_lengths = dist_lengths
    return plan


def emit_block(writer: BitWriter, plan: BlockPlan, final: bool) -> None:
    """Write one planned block to the bit stream."""
    if plan.btype == BTYPE_STORED:
        _emit_stored(writer, plan.raw, final)
        return
    writer.write_bits(1 if final else 0, 1)
    writer.write_bits(plan.btype, 2)
    if plan.btype == BTYPE_FIXED:
        lit_enc, dist_enc = fixed_encoders()
    else:
        ops, hlit, hdist = encode_code_lengths(plan.litlen_lengths,
                                               plan.dist_lengths)
        cl_freq = _codelen_frequencies(ops)
        cl_lengths = limited_code_lengths(cl_freq, MAX_CODELEN_CODE_LENGTH)
        cl_lengths = _ensure_decodable(cl_freq, cl_lengths, (0, 18))
        _emit_dynamic_header(writer, ops, hlit, hdist, cl_lengths)
        lit_enc = HuffmanEncoder(plan.litlen_lengths)
        dist_enc = HuffmanEncoder(plan.dist_lengths)
    _emit_tokens(writer, plan.tokens, lit_enc, dist_enc)


def _split_tokens(tokens: list[Token], raw: bytes,
                  block_tokens: int) -> list[tuple[list[Token], bytes]]:
    """Split the token stream into blocks, tracking raw byte spans."""
    blocks = []
    start = 0
    pos = 0
    current: list[Token] = []
    for tok in tokens:
        current.append(tok)
        pos += 1 if isinstance(tok, int) else tok[0]
        if len(current) >= block_tokens:
            blocks.append((current, raw[start:pos]))
            current = []
            start = pos
    if current or not blocks:
        blocks.append((current, raw[start:pos]))
    return blocks


def deflate(data: bytes, level: int = 6,
            block_tokens: int = DEFAULT_BLOCK_TOKENS,
            history: bytes = b"", strategy: str = "default",
            final: bool = True) -> CompressResult:
    """Compress ``data`` into a raw DEFLATE stream at the given level.

    ``history`` is a preset dictionary: back-references may reach into
    it, and the decoder must be given the same bytes (zlib's ``zdict``).
    ``strategy`` mirrors zlib: "default", "huffman_only" (Z_HUFFMAN_ONLY,
    no matching) or "rle" (Z_RLE, distance-1 matches only).
    ``final=False`` emits a continuable unit: non-final blocks followed
    by an empty stored block (zlib's Z_FULL_FLUSH byte alignment).
    """
    if _TRACE.enabled:
        with _TRACE.span("deflate.kernel", nbytes=len(data),
                         level=level) as span:
            result = deflate_core(data, level, block_tokens, history,
                                  strategy, final)
            span.set(out_bytes=len(result.data),
                     literals=result.stats.literals,
                     matches=result.stats.matches)
            return result
    return deflate_core(data, level, block_tokens, history, strategy, final)


def deflate_core(data: bytes, level: int = 6,
                 block_tokens: int = DEFAULT_BLOCK_TOKENS,
                 history: bytes = b"", strategy: str = "default",
                 final: bool = True) -> CompressResult:
    """:func:`deflate` without the telemetry guard (overhead baseline)."""
    if strategy not in ("default", "huffman_only", "rle"):
        raise DeflateError(f"unknown strategy {strategy!r}")
    if level == 0 and final:
        writer = BitWriter()
        _emit_stored(writer, data, final=True)
        return CompressResult(data=writer.getvalue(),
                              stats=MatchStats(literals=len(data)),
                              blocks=[BTYPE_STORED])
    if level == 0 or strategy == "huffman_only":
        # A continuable level-0 unit cannot be a stored block (the
        # trailing Z_FULL_FLUSH marker already is one); entropy-only
        # coding is the cheapest continuable encoding.
        tokens, stats = tokenize_huffman_only(data)
    elif strategy == "rle":
        tokens, stats = tokenize_rle(data)
    else:
        tokens, stats = tokenize(data, level, history=history)
    writer = BitWriter()
    chunks = _split_tokens(tokens, data, block_tokens)
    btypes = []
    for idx, (chunk, raw) in enumerate(chunks):
        plan = plan_block(chunk, raw)
        if plan.btype == BTYPE_STORED and not raw and len(chunks) > 1:
            raise DeflateError("empty stored block in multi-block stream")
        emit_block(writer, plan, final=final and idx == len(chunks) - 1)
        btypes.append(plan.btype)
    if not final:
        # Z_FULL_FLUSH: byte-align with an empty stored block so units
        # concatenate into one valid stream.
        writer.write_bits(0, 1)
        writer.write_bits(0, 2)
        writer.align_to_byte()
        writer.write_bytes(b"\x00\x00\xff\xff")
    return CompressResult(data=writer.getvalue(), stats=stats, blocks=btypes)
