"""Module entry point: ``python -m repro``."""

import sys

from .cli import main

# The guard matters: the process execution layer's spawn-started
# workers re-import this module as ``__mp_main__``, which must not
# re-run the CLI inside every worker.
if __name__ == "__main__":
    sys.exit(main())
