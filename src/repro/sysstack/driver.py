"""User-mode library + kernel driver behaviour for the accelerator.

This is the software half of the documented submission protocol:

1. allocate source/target buffers and a CSB in the process address space;
2. build a CRB and ``paste`` it to the process's VAS send window,
   backing off when the window is out of credits;
3. poll the CSB; on ``CC=TRANSLATION`` touch the faulting page and
   resubmit; on ``CC=TARGET_SPACE`` grow the target buffer and resubmit;
4. after a bounded number of retries, fall back to software zlib —
   the same last-resort path the production library (libnxz) takes.

Every wait in the protocol is bounded by a
:class:`~repro.resilience.policy.RetryPolicy`: the paste loop gives up
on a wedged window (e.g. a leaked-credit storm) instead of spinning,
resubmissions stop after ``max_attempts``, and an optional per-job
deadline in modelled seconds raises
:class:`~repro.errors.DeadlineExceeded` once a job spends its budget
waiting.  A submission that never completes at all (a hung engine) is
detected by its missing completion, recovered via
:meth:`~repro.nx.accelerator.NxAccelerator.recover_hung`, and retried.

Completion codes split into three classes (see ``docs/protocol.md``):
*handled* (``TRANSLATION``, ``TARGET_SPACE`` — fix up and resubmit),
*permanent* (``INVALID_CRB``, ``DATA_LENGTH`` — the request itself is
wrong; raise immediately, no retry), and *spurious* (anything else — a
misbehaving engine; retry, then fall back to software).

Timing is accounted in modelled seconds so experiments can report
end-to-end latencies including fault fixups and retries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import DeadlineExceeded, JobError, ReproError
from ..obs.trace import TRACE as _TRACE
from ..resilience.policy import RetryPolicy, check_deadline
from ..sysstack.crb import (CRB_FLAG_CONTINUED, CcCode, Crb,
                            Csb, FunctionCode, Op)
from ..sysstack.dde import Dde
from ..sysstack.mmu import AddressSpace

if TYPE_CHECKING:  # avoid a cycle: nx.accelerator imports sysstack.crb
    from ..nx.accelerator import NxAccelerator

PAGE_TOUCH_SECONDS = 4e-6       # minor fault service in the OS
CSB_POLL_SECONDS = 0.2e-6       # one poll iteration
PASTE_RETRY_SECONDS = 0.5e-6    # back-off after a credit-rejected paste
DEFAULT_MAX_RETRIES = 8

#: The request itself is malformed — retrying cannot help.
PERMANENT_CCS = (CcCode.INVALID_CRB, CcCode.DATA_LENGTH)


@dataclass
class SubmissionStats:
    """What happened while getting one job through the accelerator."""

    submissions: int = 0
    paste_rejections: int = 0
    translation_faults: int = 0
    target_overflows: int = 0
    engine_hangs: int = 0
    spurious_ccs: int = 0
    fallback_to_software: bool = False
    elapsed_seconds: float = 0.0


@dataclass
class DriverResult:
    """Completed request: output plus accounting."""

    output: bytes
    csb: Csb | None
    stats: SubmissionStats
    engine_result: object | None = None


@dataclass
class NxDriver:
    """Ties a process address space to one chip's accelerator."""

    accelerator: "NxAccelerator"
    space: AddressSpace
    max_retries: int = DEFAULT_MAX_RETRIES
    pid: int = 1
    retry_policy: RetryPolicy | None = None
    deadline_s: float | None = None
    _window_id: int | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.retry_policy is None:
            self.retry_policy = RetryPolicy.from_max_retries(
                self.max_retries)

    def open(self, credits: int | None = None) -> None:
        """Open the process's send window (idempotent).

        A second ``open`` on a live session is a no-op: opening another
        window would strand the first one's credits until ``close``,
        which silently halves the usable credit pool.
        """
        if self._window_id is not None:
            return
        window = self.accelerator.vas.open_window(pid=self.pid,
                                                  credits=credits)
        self._window_id = window.window_id

    def close(self) -> None:
        """Close the send window; safe to call repeatedly."""
        if self._window_id is not None:
            self.accelerator.vas.close_window(self._window_id)
            self._window_id = None

    # -- request construction ------------------------------------------------

    def prepare_buffers(self, data: bytes,
                        target_factor: float = 1.2) -> tuple[Dde, Dde, int]:
        """Place input in memory; allocate output + CSB; return descriptors."""
        src_va = self.space.alloc(max(1, len(data)))
        self.space.write(src_va, data)
        target_len = max(4096, int(len(data) * target_factor) + 1024)
        dst_va = self.space.alloc(target_len)
        csb_va = self.space.alloc(64)
        return (Dde.direct(src_va, len(data)),
                Dde.direct(dst_va, target_len), csb_va)

    # -- the submit/retry loop -----------------------------------------------

    def run(self, op: Op, data: bytes, strategy: str = "auto",
            fmt: str = "raw", history: bytes = b"",
            final: bool = True,
            deadline_s: float | None = None) -> DriverResult:
        """Execute one compress/decompress request end to end.

        ``history`` seeds the engine's match window (or the inflate
        window for raw decompression); ``final=False`` marks a
        continuation request whose output concatenates with later ones.
        ``deadline_s`` bounds the job's *modelled* time spent waiting —
        past it, retries stop and :class:`DeadlineExceeded` is raised.
        """
        if self._window_id is None:
            self.open()
        machine = self.accelerator.machine
        policy = self.retry_policy
        if deadline_s is None:
            deadline_s = self.deadline_s
        stats = SubmissionStats()
        compressing = op in (Op.COMPRESS, Op.COMPRESS_842)
        source, target, csb_va = self.prepare_buffers(
            data, target_factor=1.3 if compressing else 4.0)
        history_dde = None
        if history:
            hist_va = self.space.alloc(len(history))
            self.space.write(hist_va, history)
            history_dde = Dde.direct(hist_va, len(history))

        flags = 0 if final else CRB_FLAG_CONTINUED
        chaos = self.accelerator.chaos
        attempt = 0
        while policy.allows(attempt):
            crb = Crb(function=FunctionCode(op=op, strategy=strategy,
                                            fmt=fmt),
                      source=source, target=target, csb_address=csb_va,
                      sequence=stats.submissions, flags=flags,
                      history_dde=history_dde)
            stats.submissions += 1
            stats.elapsed_seconds += machine.submit_overhead_us * 1e-6

            if not self._paste_sync(crb, stats, attempt, deadline_s):
                break  # window wedged (credit leak): software fallback

            stats.elapsed_seconds += machine.dispatch_overhead_us * 1e-6
            completed = self.accelerator.drain(self.space)
            outcome = _match_completion(completed, crb.sequence)
            if outcome is None:
                # The engine swallowed the job: reset it, reclaim the
                # credit, and charge a backoff before resubmitting.
                stats.engine_hangs += 1
                self.accelerator.recover_hung()
                _TRACE.event("fault.hang", attempt=attempt)
                stats.elapsed_seconds += policy.backoff_s(attempt, token=1)
                check_deadline(stats.elapsed_seconds, deadline_s,
                               "engine hang recovery")
                attempt += 1
                continue
            stats.elapsed_seconds += outcome.busy_seconds
            stats.elapsed_seconds += CSB_POLL_SECONDS
            stats.elapsed_seconds += machine.completion_overhead_us * 1e-6

            csb = outcome.csb
            if chaos is not None:
                chaos.on_csb(csb)
            if _TRACE.enabled:
                with _TRACE.span("csb.complete", attempt=attempt,
                                 cc=csb.cc.name) as complete_span:
                    if csb.cc is CcCode.TRANSLATION:
                        complete_span.event(
                            "fault.translation",
                            address=csb.fault_address)
                        complete_span.event("resubmit",
                                            attempt=attempt + 1)
                    elif csb.cc is CcCode.TARGET_SPACE:
                        complete_span.event("overflow.target",
                                            length=target.length)
                        complete_span.event("resubmit",
                                            attempt=attempt + 1)
            if csb.cc is CcCode.SUCCESS:
                output = self.space.read(target.address, csb.target_written)
                return DriverResult(output=output, csb=csb, stats=stats,
                                    engine_result=outcome.result)
            if csb.cc is CcCode.TRANSLATION:
                stats.translation_faults += 1
                self.space.touch(csb.fault_address)
                stats.elapsed_seconds += PAGE_TOUCH_SECONDS
                check_deadline(stats.elapsed_seconds, deadline_s,
                               "translation fixup")
                attempt += 1
                continue
            if csb.cc is CcCode.TARGET_SPACE:
                stats.target_overflows += 1
                new_len = target.length * 2
                target = Dde.direct(self.space.alloc(new_len), new_len)
                check_deadline(stats.elapsed_seconds, deadline_s,
                               "target growth")
                attempt += 1
                continue
            if csb.cc in PERMANENT_CCS:
                raise JobError(f"unexpected CC {csb.cc!r}", cc=int(csb.cc))
            # A spurious non-success CC: the engine is misbehaving, not
            # the request.  Back off, retry, and let the budget decide.
            stats.spurious_ccs += 1
            _TRACE.event("fault.spurious_cc", cc=csb.cc.name,
                         attempt=attempt)
            stats.elapsed_seconds += policy.backoff_s(attempt, token=2)
            check_deadline(stats.elapsed_seconds, deadline_s,
                           "spurious CC retry")
            attempt += 1

        # Retry budget exhausted: the production library falls back to
        # running zlib on the calling core.
        stats.fallback_to_software = True
        _TRACE.event("fallback.software", retries=stats.submissions)
        output, sw_seconds = _software_fallback(op, data, machine, fmt=fmt,
                                                history=history, final=final)
        stats.elapsed_seconds += sw_seconds
        return DriverResult(output=output, csb=None, stats=stats)

    # -- paste with bounded backoff ------------------------------------------

    def _paste_sync(self, crb: Crb, stats: SubmissionStats, attempt: int,
                    deadline_s: float | None) -> bool:
        """Paste one CRB, draining the engine between rejected tries.

        Returns False when :attr:`retry_policy` declares the window
        wedged (credits never free) — the caller falls back to software
        instead of spinning forever.
        """
        if _TRACE.enabled:
            rejected_before = stats.paste_rejections
            with _TRACE.span("vas.paste", attempt=attempt,
                             window=self._window_id) as paste_span:
                accepted = self._paste_loop(crb, stats, deadline_s)
                paste_span.set(rejections=stats.paste_rejections
                               - rejected_before, accepted=accepted)
            return accepted
        return self._paste_loop(crb, stats, deadline_s)

    def _paste_loop(self, crb: Crb, stats: SubmissionStats,
                    deadline_s: float | None) -> bool:
        policy = self.retry_policy
        retries = 0
        while not self.accelerator.vas.paste(self._window_id, crb):
            stats.paste_rejections += 1
            retries += 1
            if retries > policy.max_paste_retries:
                return False
            stats.elapsed_seconds += policy.backoff_s(retries,
                                                      token=crb.sequence)
            check_deadline(stats.elapsed_seconds, deadline_s, "vas.paste")
            self.accelerator.drain(self.space)  # engine catch-up
        return True


def _match_completion(completed, sequence: int):
    """The outcome for our submission, or None if it never completed."""
    for job in completed:
        if job.crb is not None and job.crb.sequence == sequence:
            return job.outcome
    return None


@dataclass
class PendingJob:
    """One submitted-but-not-completed asynchronous request."""

    sequence: int
    op: Op
    crb: Crb
    stats: SubmissionStats
    data_len: int
    done: bool = False
    result: DriverResult | None = None
    #: Terminal failure (permanent CC, deadline, cancellation).  A job
    #: with ``error`` set is ``done`` but has no ``result``.
    error: Exception | None = None
    deadline_s: float | None = None

    @property
    def failed(self) -> bool:
        return self.error is not None


class AsyncNxDriver(NxDriver):
    """Batch submission: paste many CRBs, then poll for completions.

    This is what the asynchronous POWER9 interface is *for*: a thread
    keeps several jobs in flight on one window (bounded by its credits)
    and overlaps its own work with the engine.  ``submit`` pastes one
    request; ``poll`` drains the accelerator, finishes successful jobs,
    and transparently re-pastes jobs that faulted or overflowed.

    Failure containment: a job that completes with a *permanent* CC
    (malformed request) is marked failed via :attr:`PendingJob.error`
    and draining continues — one bad job can no longer abandon every
    other in-flight request.  Retries are bounded per job by the
    driver's :class:`RetryPolicy`; exhaustion resolves the job in
    software, and a per-job deadline resolves it with
    :class:`DeadlineExceeded`.
    """

    def _init_async(self) -> None:
        if not hasattr(self, "_pending"):
            self._pending: dict[int, PendingJob] = {}
            self._next_sequence = 0
            #: Jobs completed by a drain nested inside a paste-retry
            #: loop; handed back on the next ``poll`` so no completion
            #: is ever silently dropped.
            self._unclaimed: list[PendingJob] = []

    def submit(self, op: Op, data: bytes, strategy: str = "auto",
               fmt: str = "raw",
               deadline_s: float | None = None) -> PendingJob:
        """Paste one request; returns a handle to poll on."""
        self._init_async()
        if self._window_id is None:
            self.open()
        machine = self.accelerator.machine
        stats = SubmissionStats()
        source, target, csb_va = self.prepare_buffers(
            data, target_factor=1.2 if op is Op.COMPRESS else 4.0)
        crb = Crb(function=FunctionCode(op=op, strategy=strategy, fmt=fmt),
                  source=source, target=target, csb_address=csb_va,
                  sequence=self._next_sequence)
        job = PendingJob(sequence=self._next_sequence, op=op, crb=crb,
                         stats=stats, data_len=len(data),
                         deadline_s=(deadline_s if deadline_s is not None
                                     else self.deadline_s))
        self._next_sequence += 1
        self._pending[job.sequence] = job
        try:
            accepted = self._paste_with_backoff(job)
        except DeadlineExceeded as exc:
            self._fail_job(job, exc)
            return job
        if not accepted:
            self._resolve_software(job)
        stats.elapsed_seconds += machine.submit_overhead_us * 1e-6
        return job

    def _paste_with_backoff(self, job: PendingJob) -> bool:
        """Bounded paste; drains completions (kept for later polls)
        while waiting for a credit.  False when the window is wedged."""
        job.stats.submissions += 1
        if _TRACE.enabled:
            rejected_before = job.stats.paste_rejections
            with _TRACE.span("vas.paste", sequence=job.sequence,
                             window=self._window_id) as span:
                accepted = self._async_paste_loop(job)
                span.set(rejections=job.stats.paste_rejections
                         - rejected_before, accepted=accepted)
            return accepted
        return self._async_paste_loop(job)

    def _async_paste_loop(self, job: PendingJob) -> bool:
        policy = self.retry_policy
        retries = 0
        while not self.accelerator.vas.paste(self._window_id, job.crb):
            job.stats.paste_rejections += 1
            retries += 1
            if retries > policy.max_paste_retries:
                return False
            job.stats.elapsed_seconds += policy.backoff_s(
                retries, token=job.sequence)
            check_deadline(job.stats.elapsed_seconds, job.deadline_s,
                           "vas.paste")
            # Free credits by draining completions; anything finished
            # here is stashed for the next poll(), not dropped.
            # (poll() rebinds self._unclaimed, so it must run before
            # the attribute is read for the extend.)
            drained = self.poll()
            self._unclaimed.extend(drained)
        return True

    def poll(self) -> list[PendingJob]:
        """Drain the engine; returns jobs that resolved on this poll.

        Resolved means completed, failed (:attr:`PendingJob.error`),
        or fallen back to software — every returned job is ``done``.
        """
        self._init_async()
        machine = self.accelerator.machine
        chaos = self.accelerator.chaos
        finished: list[PendingJob] = self._unclaimed
        self._unclaimed = []
        for completed in self.accelerator.drain(self.space):
            job = self._pending.get(
                completed.crb.sequence if completed.crb else -1)
            if job is None or job.done:
                continue
            outcome = completed.outcome
            job.stats.elapsed_seconds += outcome.busy_seconds
            job.stats.elapsed_seconds += CSB_POLL_SECONDS
            csb = outcome.csb
            if chaos is not None:
                chaos.on_csb(csb)
            if csb.cc is CcCode.SUCCESS:
                output = self.space.read(job.crb.target.address,
                                         csb.target_written)
                job.stats.elapsed_seconds += (
                    machine.completion_overhead_us * 1e-6)
                job.done = True
                job.result = DriverResult(output=output, csb=csb,
                                          stats=job.stats,
                                          engine_result=outcome.result)
                del self._pending[job.sequence]
                finished.append(job)
            elif csb.cc is CcCode.TRANSLATION:
                job.stats.translation_faults += 1
                _TRACE.event("fault.translation", sequence=job.sequence,
                             address=csb.fault_address)
                self.space.touch(csb.fault_address)
                job.stats.elapsed_seconds += PAGE_TOUCH_SECONDS
                self._retry(job, finished)
            elif csb.cc is CcCode.TARGET_SPACE:
                job.stats.target_overflows += 1
                new_len = job.crb.target.length * 2
                job.crb.target = Dde.direct(self.space.alloc(new_len),
                                            new_len)
                self._retry(job, finished)
            elif csb.cc in PERMANENT_CCS:
                # Contain the failure to this job: mark it failed and
                # keep draining — the other in-flight jobs (and their
                # window credits, already returned by the drain) are
                # unaffected.
                self._fail_job(job, JobError(
                    f"unexpected CC {csb.cc!r}", cc=int(csb.cc)))
                finished.append(job)
            else:
                job.stats.spurious_ccs += 1
                _TRACE.event("fault.spurious_cc", sequence=job.sequence,
                             cc=csb.cc.name)
                self._retry(job, finished)
        return finished

    def _retry(self, job: PendingJob, finished: list[PendingJob]) -> None:
        """Resubmit within budget, else resolve the job terminally."""
        policy = self.retry_policy
        if (job.deadline_s is not None
                and job.stats.elapsed_seconds > job.deadline_s):
            self._fail_job(job, DeadlineExceeded(
                f"job {job.sequence}: modelled "
                f"{job.stats.elapsed_seconds * 1e6:.1f} us exceeds "
                f"deadline {job.deadline_s * 1e6:.1f} us",
                elapsed_s=job.stats.elapsed_seconds,
                deadline_s=job.deadline_s))
            finished.append(job)
            return
        if job.stats.submissions >= policy.max_attempts:
            self._resolve_software(job)
            finished.append(job)
            return
        try:
            accepted = self._paste_with_backoff(job)
        except DeadlineExceeded as exc:
            self._fail_job(job, exc)
            finished.append(job)
            return
        if not accepted:
            self._resolve_software(job)
            finished.append(job)

    def _fail_job(self, job: PendingJob, error: Exception) -> None:
        job.error = error
        job.done = True
        self._pending.pop(job.sequence, None)

    def _resolve_software(self, job: PendingJob) -> None:
        """Retry budget spent: finish the job on the calling core."""
        data = self.space.read(job.crb.source.address,
                               job.crb.source.length)
        try:
            output, sw_seconds = _software_fallback(
                job.op, data, self.accelerator.machine,
                fmt=job.crb.function.fmt)
        except ReproError as exc:
            # The input is bad enough that software can't finish either.
            self._fail_job(job, exc)
            return
        job.stats.fallback_to_software = True
        job.stats.elapsed_seconds += sw_seconds
        job.result = DriverResult(output=output, csb=None, stats=job.stats)
        job.done = True
        self._pending.pop(job.sequence, None)
        _TRACE.event("fallback.software", sequence=job.sequence)

    def wait_all(self, max_polls: int = 1000) -> list[PendingJob]:
        """Poll until every submitted job has resolved.

        If the poll budget runs out (a hung engine with no recovery),
        the raised :class:`JobError` carries ``partial`` (jobs resolved
        so far) and ``stuck`` (sequences still pending) so the caller
        can salvage completed work and :meth:`cancel_pending` the rest.
        """
        self._init_async()
        done: list[PendingJob] = []
        for _ in range(max_polls):
            done.extend(self.poll())
            if not self._pending:
                return done
        error = JobError(f"{len(self._pending)} jobs still pending "
                         "after poll budget")
        error.partial = list(done)
        error.stuck = sorted(self._pending)
        raise error

    def cancel_pending(self) -> list[PendingJob]:
        """Abandon every in-flight job and reclaim its window credit.

        Queued-but-unpopped CRBs are flushed from the receive FIFOs,
        hung jobs are recovered (engine reset), and each pending job is
        marked failed with a cancellation :class:`JobError`.  After
        this the window's credits are whole again (minus any chaos-
        leaked ones, which only ``close`` reclaims) and the driver can
        submit fresh work.
        """
        self._init_async()
        if self._window_id is not None:
            self.accelerator.vas.flush_window(self._window_id)
            self.accelerator.recover_hung()
        cancelled: list[PendingJob] = []
        for sequence in sorted(self._pending):
            job = self._pending[sequence]
            job.error = JobError(f"job {sequence} cancelled")
            job.done = True
            cancelled.append(job)
        self._pending.clear()
        return cancelled

    @property
    def in_flight(self) -> int:
        self._init_async()
        return len(self._pending)

    def run(self, op: Op, data: bytes, strategy: str = "auto",
            fmt: str = "raw", history: bytes = b"",
            final: bool = True,
            deadline_s: float | None = None) -> DriverResult:
        """Synchronous run; refuses to interleave with pending async jobs
        (its drain would swallow their completions)."""
        self._init_async()
        if self._pending:
            raise JobError("synchronous run with async jobs in flight; "
                           "wait_all() first")
        return super().run(op, data, strategy=strategy, fmt=fmt,
                           history=history, final=final,
                           deadline_s=deadline_s)


def _software_fallback(op: Op, data: bytes, machine,
                       fmt: str = "raw", history: bytes = b"",
                       final: bool = True) -> tuple[bytes, float]:
    """Run the job in software and charge the calibrated core time.

    The output must be wire-compatible with what the engine would have
    produced — same ``fmt`` framing — so callers (and verify-after-
    compress) cannot tell a fallback from a hardware completion by its
    bytes.
    """
    from ..deflate import (deflate, gzip_decompress, inflate,
                           zlib_decompress)
    from ..deflate.containers import wrap_gzip, wrap_zlib
    from ..e842 import compress as e842_compress
    from ..e842 import decompress as e842_decompress
    from ..perf.cost import SoftwareCostModel

    cost = SoftwareCostModel(machine)
    if op is Op.COMPRESS:
        result = deflate(data, level=6, history=history, final=final)
        output = result.data
        if fmt == "zlib":
            output = wrap_zlib(output, data)
        elif fmt == "gzip":
            output = wrap_gzip(output, data)
        return output, cost.compress_seconds(len(data), level=6)
    if op is Op.DECOMPRESS:
        if fmt == "gzip":
            output = gzip_decompress(data)
        elif fmt == "zlib":
            output = zlib_decompress(data)
        else:
            output = inflate(data)
        return output, cost.decompress_seconds(len(output))
    if op is Op.COMPRESS_842:
        result = e842_compress(data)
        # Software 842 is roughly a fast-level zlib in cost.
        return result.data, cost.compress_seconds(len(data), level=1)
    output = e842_decompress(data)
    return output, cost.decompress_seconds(len(output))
