"""User-mode library + kernel driver behaviour for the accelerator.

This is the software half of the documented submission protocol:

1. allocate source/target buffers and a CSB in the process address space;
2. build a CRB and ``paste`` it to the process's VAS send window,
   backing off when the window is out of credits;
3. poll the CSB; on ``CC=TRANSLATION`` touch the faulting page and
   resubmit; on ``CC=TARGET_SPACE`` grow the target buffer and resubmit;
4. after a bounded number of retries, fall back to software zlib —
   the same last-resort path the production library (libnxz) takes.

Timing is accounted in modelled seconds so experiments can report
end-to-end latencies including fault fixups and retries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import JobError
from ..obs.trace import TRACE as _TRACE
from ..sysstack.crb import (CRB_FLAG_CONTINUED, CcCode, Crb,
                            Csb, FunctionCode, Op)
from ..sysstack.dde import Dde
from ..sysstack.mmu import AddressSpace

if TYPE_CHECKING:  # avoid a cycle: nx.accelerator imports sysstack.crb
    from ..nx.accelerator import NxAccelerator

PAGE_TOUCH_SECONDS = 4e-6       # minor fault service in the OS
CSB_POLL_SECONDS = 0.2e-6       # one poll iteration
PASTE_RETRY_SECONDS = 0.5e-6    # back-off after a credit-rejected paste
DEFAULT_MAX_RETRIES = 8


@dataclass
class SubmissionStats:
    """What happened while getting one job through the accelerator."""

    submissions: int = 0
    paste_rejections: int = 0
    translation_faults: int = 0
    target_overflows: int = 0
    fallback_to_software: bool = False
    elapsed_seconds: float = 0.0


@dataclass
class DriverResult:
    """Completed request: output plus accounting."""

    output: bytes
    csb: Csb | None
    stats: SubmissionStats
    engine_result: object | None = None


@dataclass
class NxDriver:
    """Ties a process address space to one chip's accelerator."""

    accelerator: "NxAccelerator"
    space: AddressSpace
    max_retries: int = DEFAULT_MAX_RETRIES
    pid: int = 1
    _window_id: int | None = field(default=None, init=False)

    def open(self, credits: int | None = None) -> None:
        """Open the process's send window (idempotent).

        A second ``open`` on a live session is a no-op: opening another
        window would strand the first one's credits until ``close``,
        which silently halves the usable credit pool.
        """
        if self._window_id is not None:
            return
        window = self.accelerator.vas.open_window(pid=self.pid,
                                                  credits=credits)
        self._window_id = window.window_id

    def close(self) -> None:
        """Close the send window; safe to call repeatedly."""
        if self._window_id is not None:
            self.accelerator.vas.close_window(self._window_id)
            self._window_id = None

    # -- request construction ------------------------------------------------

    def prepare_buffers(self, data: bytes,
                        target_factor: float = 1.2) -> tuple[Dde, Dde, int]:
        """Place input in memory; allocate output + CSB; return descriptors."""
        src_va = self.space.alloc(max(1, len(data)))
        self.space.write(src_va, data)
        target_len = max(4096, int(len(data) * target_factor) + 1024)
        dst_va = self.space.alloc(target_len)
        csb_va = self.space.alloc(64)
        return (Dde.direct(src_va, len(data)),
                Dde.direct(dst_va, target_len), csb_va)

    # -- the submit/retry loop -----------------------------------------------

    def run(self, op: Op, data: bytes, strategy: str = "auto",
            fmt: str = "raw", history: bytes = b"",
            final: bool = True) -> DriverResult:
        """Execute one compress/decompress request end to end.

        ``history`` seeds the engine's match window (or the inflate
        window for raw decompression); ``final=False`` marks a
        continuation request whose output concatenates with later ones.
        """
        if self._window_id is None:
            self.open()
        machine = self.accelerator.machine
        stats = SubmissionStats()
        compressing = op in (Op.COMPRESS, Op.COMPRESS_842)
        source, target, csb_va = self.prepare_buffers(
            data, target_factor=1.3 if compressing else 4.0)
        history_dde = None
        if history:
            hist_va = self.space.alloc(len(history))
            self.space.write(hist_va, history)
            history_dde = Dde.direct(hist_va, len(history))

        flags = 0 if final else CRB_FLAG_CONTINUED
        traced = _TRACE.enabled
        for _attempt in range(self.max_retries + 1):
            crb = Crb(function=FunctionCode(op=op, strategy=strategy,
                                            fmt=fmt),
                      source=source, target=target, csb_address=csb_va,
                      sequence=stats.submissions, flags=flags,
                      history_dde=history_dde)
            stats.submissions += 1
            stats.elapsed_seconds += machine.submit_overhead_us * 1e-6

            if traced:
                rejected_before = stats.paste_rejections
                with _TRACE.span("vas.paste", attempt=_attempt,
                                 window=self._window_id) as paste_span:
                    while not self.accelerator.vas.paste(self._window_id,
                                                         crb):
                        stats.paste_rejections += 1
                        stats.elapsed_seconds += PASTE_RETRY_SECONDS
                        self.accelerator.drain(self.space)
                    paste_span.set(rejections=stats.paste_rejections
                                   - rejected_before)
            else:
                while not self.accelerator.vas.paste(self._window_id, crb):
                    stats.paste_rejections += 1
                    stats.elapsed_seconds += PASTE_RETRY_SECONDS
                    self.accelerator.drain(self.space)  # engine catch-up

            stats.elapsed_seconds += machine.dispatch_overhead_us * 1e-6
            completed = self.accelerator.drain(self.space)
            outcome = completed[-1].outcome
            stats.elapsed_seconds += outcome.busy_seconds
            stats.elapsed_seconds += CSB_POLL_SECONDS
            stats.elapsed_seconds += machine.completion_overhead_us * 1e-6

            csb = outcome.csb
            if traced:
                with _TRACE.span("csb.complete", attempt=_attempt,
                                 cc=csb.cc.name) as complete_span:
                    if csb.cc is CcCode.TRANSLATION:
                        complete_span.event(
                            "fault.translation",
                            address=csb.fault_address)
                        complete_span.event("resubmit",
                                            attempt=_attempt + 1)
                    elif csb.cc is CcCode.TARGET_SPACE:
                        complete_span.event("overflow.target",
                                            length=target.length)
                        complete_span.event("resubmit",
                                            attempt=_attempt + 1)
            if csb.cc is CcCode.SUCCESS:
                output = self.space.read(target.address, csb.target_written)
                return DriverResult(output=output, csb=csb, stats=stats,
                                    engine_result=outcome.result)
            if csb.cc is CcCode.TRANSLATION:
                stats.translation_faults += 1
                self.space.touch(csb.fault_address)
                stats.elapsed_seconds += PAGE_TOUCH_SECONDS
                continue
            if csb.cc is CcCode.TARGET_SPACE:
                stats.target_overflows += 1
                new_len = target.length * 2
                target = Dde.direct(self.space.alloc(new_len), new_len)
                continue
            raise JobError(f"unexpected CC {csb.cc!r}", cc=int(csb.cc))

        # Retry budget exhausted: the production library falls back to
        # running zlib on the calling core.
        stats.fallback_to_software = True
        _TRACE.event("fallback.software", retries=stats.submissions)
        output, sw_seconds = _software_fallback(op, data, machine)
        stats.elapsed_seconds += sw_seconds
        return DriverResult(output=output, csb=None, stats=stats)


@dataclass
class PendingJob:
    """One submitted-but-not-completed asynchronous request."""

    sequence: int
    op: Op
    crb: Crb
    stats: SubmissionStats
    data_len: int
    done: bool = False
    result: DriverResult | None = None


class AsyncNxDriver(NxDriver):
    """Batch submission: paste many CRBs, then poll for completions.

    This is what the asynchronous POWER9 interface is *for*: a thread
    keeps several jobs in flight on one window (bounded by its credits)
    and overlaps its own work with the engine.  ``submit`` pastes one
    request; ``poll`` drains the accelerator, finishes successful jobs,
    and transparently re-pastes jobs that faulted or overflowed.
    """

    def _init_async(self) -> None:
        if not hasattr(self, "_pending"):
            self._pending: dict[int, PendingJob] = {}
            self._next_sequence = 0

    def submit(self, op: Op, data: bytes, strategy: str = "auto",
               fmt: str = "raw") -> PendingJob:
        """Paste one request; returns a handle to poll on."""
        self._init_async()
        if self._window_id is None:
            self.open()
        machine = self.accelerator.machine
        stats = SubmissionStats()
        source, target, csb_va = self.prepare_buffers(
            data, target_factor=1.2 if op is Op.COMPRESS else 4.0)
        crb = Crb(function=FunctionCode(op=op, strategy=strategy, fmt=fmt),
                  source=source, target=target, csb_address=csb_va,
                  sequence=self._next_sequence)
        job = PendingJob(sequence=self._next_sequence, op=op, crb=crb,
                         stats=stats, data_len=len(data))
        self._next_sequence += 1
        self._pending[job.sequence] = job
        self._paste_with_backoff(job)
        stats.elapsed_seconds += machine.submit_overhead_us * 1e-6
        return job

    def _paste_with_backoff(self, job: PendingJob) -> None:
        job.stats.submissions += 1
        if _TRACE.enabled:
            rejected_before = job.stats.paste_rejections
            with _TRACE.span("vas.paste", sequence=job.sequence,
                             window=self._window_id) as span:
                while not self.accelerator.vas.paste(self._window_id,
                                                     job.crb):
                    job.stats.paste_rejections += 1
                    job.stats.elapsed_seconds += PASTE_RETRY_SECONDS
                    self.poll()
                span.set(rejections=job.stats.paste_rejections
                         - rejected_before)
            return
        while not self.accelerator.vas.paste(self._window_id, job.crb):
            job.stats.paste_rejections += 1
            job.stats.elapsed_seconds += PASTE_RETRY_SECONDS
            self.poll()  # free credits by draining completions

    def poll(self) -> list[PendingJob]:
        """Drain the engine; returns jobs that completed on this poll."""
        self._init_async()
        machine = self.accelerator.machine
        finished: list[PendingJob] = []
        for completed in self.accelerator.drain(self.space):
            job = self._pending.get(
                completed.crb.sequence if completed.crb else -1)
            if job is None or job.done:
                continue
            outcome = completed.outcome
            job.stats.elapsed_seconds += outcome.busy_seconds
            job.stats.elapsed_seconds += CSB_POLL_SECONDS
            csb = outcome.csb
            if csb.cc is CcCode.SUCCESS:
                output = self.space.read(job.crb.target.address,
                                         csb.target_written)
                job.stats.elapsed_seconds += (
                    machine.completion_overhead_us * 1e-6)
                job.done = True
                job.result = DriverResult(output=output, csb=csb,
                                          stats=job.stats,
                                          engine_result=outcome.result)
                del self._pending[job.sequence]
                finished.append(job)
            elif csb.cc is CcCode.TRANSLATION:
                job.stats.translation_faults += 1
                _TRACE.event("fault.translation", sequence=job.sequence,
                             address=csb.fault_address)
                self.space.touch(csb.fault_address)
                job.stats.elapsed_seconds += PAGE_TOUCH_SECONDS
                self._paste_with_backoff(job)
            elif csb.cc is CcCode.TARGET_SPACE:
                job.stats.target_overflows += 1
                new_len = job.crb.target.length * 2
                job.crb.target = Dde.direct(self.space.alloc(new_len),
                                            new_len)
                self._paste_with_backoff(job)
            else:
                raise JobError(f"unexpected CC {csb.cc!r}",
                               cc=int(csb.cc))
        return finished

    def wait_all(self, max_polls: int = 1000) -> list[PendingJob]:
        """Poll until every submitted job has completed."""
        self._init_async()
        done: list[PendingJob] = []
        for _ in range(max_polls):
            done.extend(self.poll())
            if not self._pending:
                return done
        raise JobError("jobs still pending after poll budget")

    @property
    def in_flight(self) -> int:
        self._init_async()
        return len(self._pending)

    def run(self, op: Op, data: bytes, strategy: str = "auto",
            fmt: str = "raw", history: bytes = b"",
            final: bool = True) -> DriverResult:
        """Synchronous run; refuses to interleave with pending async jobs
        (its drain would swallow their completions)."""
        self._init_async()
        if self._pending:
            raise JobError("synchronous run with async jobs in flight; "
                           "wait_all() first")
        return super().run(op, data, strategy=strategy, fmt=fmt,
                           history=history, final=final)


def _software_fallback(op: Op, data: bytes, machine) -> tuple[bytes, float]:
    """Run the job in software and charge the calibrated core time."""
    from ..deflate import deflate, inflate
    from ..e842 import compress as e842_compress
    from ..e842 import decompress as e842_decompress
    from ..perf.cost import SoftwareCostModel

    cost = SoftwareCostModel(machine)
    if op is Op.COMPRESS:
        result = deflate(data, level=6)
        return result.data, cost.compress_seconds(len(data), level=6)
    if op is Op.DECOMPRESS:
        output = inflate(data)
        return output, cost.decompress_seconds(len(output))
    if op is Op.COMPRESS_842:
        result = e842_compress(data)
        # Software 842 is roughly a fast-level zlib in cost.
        return result.data, cost.compress_seconds(len(data), level=1)
    output = e842_decompress(data)
    return output, cost.decompress_seconds(len(output))
