"""Paged address-space model with translation-fault injection.

The accelerator accesses user memory through the nest MMU; any page can
be paged out, in which case the engine suspends the job and reports a
translation CC with the faulting address in the CSB.  The driver then
touches the page (forcing the OS to make it resident) and resubmits —
the documented NX protocol.  This module provides the memory, the
translation step, and deterministic fault injection for experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import TranslationFault

PAGE_SIZE = 65536  # 64 KB pages, the common POWER configuration


@dataclass
class PageState:
    """Residency and content of one virtual page."""

    data: bytearray
    present: bool = True
    writable: bool = True
    touches: int = 0


@dataclass
class FaultInjector:
    """Deterministically marks pages non-present at translation time."""

    fault_probability: float = 0.0
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def should_fault(self) -> bool:
        return (self.fault_probability > 0
                and self._rng.random() < self.fault_probability)


class AddressSpace:
    """A sparse 64-bit virtual address space backed by page dict."""

    def __init__(self, page_size: int = PAGE_SIZE,
                 fault_injector: FaultInjector | None = None) -> None:
        self.page_size = page_size
        self.pages: dict[int, PageState] = {}
        self.fault_injector = fault_injector or FaultInjector()
        self.translations = 0
        self.faults = 0
        self._next_va = page_size  # keep 0 unmapped (null page)

    # -- allocation and plain access --------------------------------------

    def alloc(self, size: int) -> int:
        """Reserve a contiguous region; returns its base address."""
        base = self._next_va
        npages = max(1, -(-size // self.page_size))
        for i in range(npages):
            self.pages[(base // self.page_size) + i] = PageState(
                data=bytearray(self.page_size))
        self._next_va += npages * self.page_size
        return base

    def write(self, va: int, data: bytes) -> None:
        """CPU-side store: never faults (the OS pages in synchronously)."""
        pos = 0
        while pos < len(data):
            page, offset = divmod(va + pos, self.page_size)
            state = self._page(page)
            state.present = True
            chunk = min(len(data) - pos, self.page_size - offset)
            state.data[offset:offset + chunk] = data[pos:pos + chunk]
            pos += chunk

    def read(self, va: int, length: int) -> bytes:
        """CPU-side load: never faults."""
        out = bytearray()
        pos = 0
        while pos < length:
            page, offset = divmod(va + pos, self.page_size)
            state = self._page(page)
            state.present = True
            chunk = min(length - pos, self.page_size - offset)
            out.extend(state.data[offset:offset + chunk])
            pos += chunk
        return bytes(out)

    def _page(self, page: int) -> PageState:
        if page not in self.pages:
            raise TranslationFault(page * self.page_size, is_write=False)
        return self.pages[page]

    # -- residency control -------------------------------------------------

    def page_out(self, va: int) -> None:
        """Evict the page containing ``va`` (contents retained)."""
        self._page(va // self.page_size).present = False

    def touch(self, va: int) -> None:
        """Make the page containing ``va`` resident (driver fault fixup)."""
        state = self._page(va // self.page_size)
        state.present = True
        state.touches += 1

    def resident_fraction(self) -> float:
        if not self.pages:
            return 1.0
        resident = sum(1 for p in self.pages.values() if p.present)
        return resident / len(self.pages)

    # -- accelerator-side translation ---------------------------------------

    def translate(self, va: int, is_write: bool) -> None:
        """Model the nest MMU translating one access.

        Raises :class:`TranslationFault` if the page is non-present, was
        never mapped, is read-only for a write, or if the fault injector
        fires (modelling an OS that paged it out concurrently).
        """
        self.translations += 1
        page = va // self.page_size
        state = self.pages.get(page)
        if state is None or not state.present:
            self.faults += 1
            raise TranslationFault(va, is_write)
        if is_write and not state.writable:
            self.faults += 1
            raise TranslationFault(va, is_write)
        if self.fault_injector.should_fault():
            state.present = False
            self.faults += 1
            raise TranslationFault(va, is_write)

    def translate_range(self, va: int, length: int, is_write: bool) -> None:
        """Translate every page of a [va, va+length) access."""
        if length <= 0:
            return
        first = va // self.page_size
        last = (va + length - 1) // self.page_size
        for page in range(first, last + 1):
            self.translate(page * self.page_size, is_write)

    def dma_read(self, va: int, length: int) -> bytes:
        """Accelerator DMA read: translate then fetch."""
        self.translate_range(va, length, is_write=False)
        return self.read(va, length)

    def dma_write(self, va: int, data: bytes) -> None:
        """Accelerator DMA write: translate then store."""
        self.translate_range(va, len(data), is_write=True)
        self.write(va, data)
