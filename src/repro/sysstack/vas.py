"""Virtual Accelerator Switchboard (VAS) model.

On POWER9, user threads obtain a *send window* on the accelerator and
submit jobs by building a CRB in memory and executing ``copy``/``paste``
to the window's paste address.  The switchboard routes the 128-byte CRB
into the accelerator's receive FIFO.  Windows carry *credits*: a paste
with no free credit fails (the busy bit returns set) and the thread must
back off — this is the documented flow-control mechanism that keeps a
shared accelerator safe to expose to unprivileged code.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..errors import VasError
from ..obs.metrics import REGISTRY as _REGISTRY
from .crb import CRB_BYTES, Crb


@dataclass
class PasteRecord:
    """One accepted paste: the raw CRB plus its originating window."""

    window_id: int
    raw_crb: bytes

    def crb(self) -> Crb:
        return Crb.unpack(self.raw_crb)


@dataclass
class SendWindow:
    """A user-mode send window with a fixed credit allocation."""

    window_id: int
    credits: int
    pid: int = 0
    priority: str = "normal"  # "high" routes to the priority RX FIFO
    outstanding: int = 0
    pastes_accepted: int = 0
    pastes_rejected: int = 0
    credits_leaked: int = 0

    @property
    def credits_available(self) -> int:
        return self.credits - self.outstanding


class Vas:
    """Switchboard: windows on one side, two receive FIFOs on the other.

    The accelerator front end implements two receive queues: *high*
    priority for latency-sensitive requests and *normal* for bulk.
    Arbitration is priority-first with an anti-starvation bound — after
    ``starvation_bound`` consecutive high-priority grants, one normal
    request is served even if high work is pending.
    """

    def __init__(self, rx_fifo_depth: int = 64,
                 default_credits: int = 16,
                 starvation_bound: int = 8) -> None:
        self.rx_fifo_depth = rx_fifo_depth
        self.default_credits = default_credits
        self.starvation_bound = starvation_bound
        #: Optional resilience fault-injection hook
        #: (:class:`repro.resilience.faults.FaultInjector`).
        self.chaos = None
        self.windows: dict[int, SendWindow] = {}
        self.rx_fifo: deque[PasteRecord] = deque()
        self.rx_fifo_high: deque[PasteRecord] = deque()
        self._consecutive_high = 0
        self._next_window_id = 1

    def open_window(self, pid: int = 0, credits: int | None = None,
                    priority: str = "normal") -> SendWindow:
        """Allocate a send window (the driver's winopen path)."""
        if priority not in ("normal", "high"):
            raise VasError(f"bad window priority {priority!r}")
        window = SendWindow(window_id=self._next_window_id,
                            credits=credits or self.default_credits,
                            pid=pid, priority=priority)
        self.windows[window.window_id] = window
        self._next_window_id += 1
        return window

    def close_window(self, window_id: int) -> None:
        window = self._window(window_id)
        # Leaked credits are gone until the window is torn down; closing
        # is exactly how the kernel reclaims them, so they don't count
        # as live jobs.
        if window.outstanding - window.credits_leaked > 0:
            raise VasError(
                f"window {window_id} closed with {window.outstanding} "
                "jobs outstanding")
        del self.windows[window_id]

    def paste(self, window_id: int, crb: Crb) -> bool:
        """Attempt one copy/paste submission; False mirrors CR0 busy."""
        window = self._window(window_id)
        raw = crb.pack()
        if len(raw) != CRB_BYTES:
            raise VasError("paste payload must be one cache line pair")
        fifo = (self.rx_fifo_high if window.priority == "high"
                else self.rx_fifo)
        if window.credits_available <= 0 or len(fifo) >= self.rx_fifo_depth:
            window.pastes_rejected += 1
            if _REGISTRY.enabled:
                _REGISTRY.counter(
                    "repro_vas_paste_rejections_total",
                    "credit/FIFO-rejected pastes (CR0 busy)").inc(
                    1, priority=window.priority)
            return False
        window.outstanding += 1
        window.pastes_accepted += 1
        fifo.append(PasteRecord(window_id=window_id, raw_crb=raw))
        if _REGISTRY.enabled:
            _REGISTRY.counter("repro_vas_pastes_total",
                              "accepted CRB pastes").inc(
                1, priority=window.priority)
            _REGISTRY.gauge("repro_vas_rx_fifo_depth",
                            "pending CRBs in the receive FIFOs").set(
                len(self.rx_fifo) + len(self.rx_fifo_high))
        return True

    def pop_request(self) -> PasteRecord | None:
        """Accelerator side: dequeue per the priority arbitration."""
        take_normal = (self.rx_fifo
                       and (not self.rx_fifo_high
                            or self._consecutive_high
                            >= self.starvation_bound))
        record = None
        if take_normal:
            self._consecutive_high = 0
            record = self.rx_fifo.popleft()
        elif self.rx_fifo_high:
            self._consecutive_high += 1
            record = self.rx_fifo_high.popleft()
        if record is not None and _REGISTRY.enabled:
            _REGISTRY.gauge("repro_vas_rx_fifo_depth",
                            "pending CRBs in the receive FIFOs").set(
                len(self.rx_fifo) + len(self.rx_fifo_high))
        return record

    def return_credit(self, window_id: int) -> None:
        """Job completed: release the window credit.

        The resilience ``chaos`` hook may declare the return *leaked*
        (modelling a buggy driver path or lost interrupt): the credit
        then stays consumed until the window is closed or reclaimed.
        """
        window = self._window(window_id)
        if window.outstanding <= 0:
            raise VasError(f"window {window_id} has no outstanding credit")
        if self.chaos is not None and self.chaos.on_credit_return(window_id):
            window.credits_leaked += 1
            return
        window.outstanding -= 1

    def flush_window(self, window_id: int) -> int:
        """Kernel-mediated cancel: drop the window's queued CRBs.

        Removes every not-yet-popped paste for ``window_id`` from both
        receive FIFOs and hands the credits straight back (bypassing
        the chaos hook — this is the cleanup path, not a completion).
        Returns how many requests were flushed.
        """
        window = self._window(window_id)
        removed = 0
        for fifo in (self.rx_fifo, self.rx_fifo_high):
            kept = [rec for rec in fifo if rec.window_id != window_id]
            removed += len(fifo) - len(kept)
            fifo.clear()
            fifo.extend(kept)
        window.outstanding = max(0, window.outstanding - removed)
        return removed

    def reclaim_credit(self, window_id: int) -> None:
        """Return one credit on the cleanup path (no chaos hook)."""
        window = self._window(window_id)
        if window.outstanding > 0:
            window.outstanding -= 1

    def _window(self, window_id: int) -> SendWindow:
        if window_id not in self.windows:
            raise VasError(f"no such window {window_id}")
        return self.windows[window_id]
