"""Data Descriptor Entries: the accelerator's scatter/gather lists.

A *direct* DDE names one contiguous virtual buffer.  An *indirect* DDE
points at an in-memory array of direct DDEs, letting one request cover a
fragmented buffer (the way the paper describes pinning-free user-space
submission).  The engine walks the list through the MMU model, so every
segment is subject to translation faults.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..errors import JobError

DDE_BYTES = 16
MAX_INDIRECT_ENTRIES = 256


@dataclass
class Dde:
    """A direct (single-segment) or indirect (list) descriptor."""

    address: int
    length: int
    indirect: bool = False
    entries: list["Dde"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.length < 0:
            raise JobError("DDE length must be non-negative")
        if self.indirect and len(self.entries) > MAX_INDIRECT_ENTRIES:
            raise JobError("indirect DDE exceeds entry limit")

    @classmethod
    def direct(cls, address: int, length: int) -> "Dde":
        return cls(address=address, length=length)

    @classmethod
    def gather(cls, segments: list[tuple[int, int]],
               list_address: int = 0) -> "Dde":
        """Build an indirect DDE over (address, length) segments."""
        entries = [cls.direct(addr, length) for addr, length in segments]
        total = sum(e.length for e in entries)
        return cls(address=list_address, length=total, indirect=True,
                   entries=entries)

    @property
    def total_length(self) -> int:
        if self.indirect:
            return sum(entry.length for entry in self.entries)
        return self.length

    def segments(self) -> list[tuple[int, int]]:
        """Flatten to a list of (address, length) spans, in order."""
        if not self.indirect:
            return [(self.address, self.length)] if self.length else []
        out: list[tuple[int, int]] = []
        for entry in self.entries:
            if entry.indirect:
                raise JobError("nested indirect DDEs are not allowed")
            if entry.length:
                out.append((entry.address, entry.length))
        return out

    # -- wire form -------------------------------------------------------

    def pack(self) -> bytes:
        """Serialize the descriptor head (entries live in memory)."""
        flags = 1 if self.indirect else 0
        count = len(self.entries) if self.indirect else 0
        return struct.pack("<QIHH", self.address, self.length, flags, count)

    def pack_entries(self) -> bytes:
        """Serialize the indirect entry array (for placing in memory)."""
        return b"".join(entry.pack() for entry in self.entries)

    @classmethod
    def unpack(cls, raw: bytes, offset: int) -> tuple["Dde", int]:
        address, length, flags, count = struct.unpack_from(
            "<QIHH", raw, offset)
        dde = cls(address=address, length=length, indirect=bool(flags & 1))
        offset += DDE_BYTES
        if dde.indirect:
            # Entries are not inline in the CRB; the walker reads them
            # from memory at `address`.  `count` is carried for sizing.
            dde.entries = []
            dde._entry_count = count  # type: ignore[attr-defined]
        return dde, offset

    @classmethod
    def unpack_entries(cls, raw: bytes, count: int) -> list["Dde"]:
        entries = []
        for idx in range(count):
            entry, _ = cls.unpack(raw, idx * DDE_BYTES)
            if entry.indirect:
                raise JobError("nested indirect DDEs are not allowed")
            entries.append(entry)
        return entries
