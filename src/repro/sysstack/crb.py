"""Coprocessor Request Block (CRB) and status structures.

A user thread describes one accelerator job with a 128-byte CRB: the
function code (compress/decompress, Huffman strategy, wire format),
scatter/gather descriptors for source and target, and the address of a
Coprocessor Status Block (CSB) that the engine writes on completion.
The layouts here are modelled, not bit-exact, but they serialize to the
documented sizes so that the VAS copy/paste path moves realistic payloads.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from ..errors import JobError
from .dde import Dde

CRB_BYTES = 128
CSB_BYTES = 16


class Op(enum.Enum):
    """Top-level operation selected by the CRB function code.

    The NX unit exposes both its gzip engines and its 842 engines
    through the same switchboard; the function code picks the pipe.
    """

    COMPRESS = 1
    DECOMPRESS = 2
    COMPRESS_842 = 3
    DECOMPRESS_842 = 4


class CcCode(enum.IntEnum):
    """CSB completion codes (the subset the driver must handle)."""

    SUCCESS = 0
    INVALID_CRB = 4
    DATA_LENGTH = 13
    TRANSLATION = 65     # page fault: fault address is in the CSB
    TARGET_SPACE = 66    # output did not fit in the target DDE
    FUNCTION = 17        # unimplemented function code


@dataclass(frozen=True)
class FunctionCode:
    """Operation + Huffman strategy + wire format, packed into the CRB."""

    op: Op
    strategy: str = "auto"   # fixed | dynamic | canned | auto
    fmt: str = "raw"         # raw | zlib | gzip

    _STRATEGIES = ("fixed", "dynamic", "canned", "auto")
    _FORMATS = ("raw", "zlib", "gzip")

    def encode(self) -> int:
        if self.strategy not in self._STRATEGIES:
            raise JobError(f"bad strategy {self.strategy!r}")
        if self.fmt not in self._FORMATS:
            raise JobError(f"bad format {self.fmt!r}")
        return (self.op.value << 6
                | self._STRATEGIES.index(self.strategy) << 2
                | self._FORMATS.index(self.fmt))

    @classmethod
    def decode(cls, value: int) -> "FunctionCode":
        try:
            op = Op(value >> 6)
        except ValueError as exc:
            raise JobError(f"bad function code {value:#x}") from exc
        return cls(op=op,
                   strategy=cls._STRATEGIES[(value >> 2) & 0xF],
                   fmt=cls._FORMATS[value & 0x3])


@dataclass
class Csb:
    """Coprocessor Status Block written by the engine at job end."""

    valid: bool = False
    cc: CcCode = CcCode.SUCCESS
    processed_bytes: int = 0
    target_written: int = 0
    fault_address: int = 0

    def pack(self) -> bytes:
        return struct.pack("<BBHIII", 1 if self.valid else 0, int(self.cc),
                           0, self.processed_bytes, self.target_written,
                           self.fault_address)

    @classmethod
    def unpack(cls, raw: bytes) -> "Csb":
        valid, cc, _pad, processed, written, fault = struct.unpack(
            "<BBHIII", raw[:CSB_BYTES])
        return cls(valid=bool(valid), cc=CcCode(cc),
                   processed_bytes=processed, target_written=written,
                   fault_address=fault)


# CRB flag bits.
CRB_FLAG_HISTORY = 0x1   # a history DDE follows the target DDE
CRB_FLAG_CONTINUED = 0x2  # not the final request of a stream


@dataclass
class Crb:
    """One coprocessor request, as pasted to a VAS window."""

    function: FunctionCode
    source: Dde
    target: Dde
    csb_address: int
    sequence: int = 0
    flags: int = 0
    history_dde: Dde | None = None  # preset dictionary / carried window
    _pad: bytes = field(default=b"", repr=False)

    @property
    def is_final(self) -> bool:
        return not (self.flags & CRB_FLAG_CONTINUED)

    def pack(self) -> bytes:
        """Serialize to the 128-byte paste payload."""
        flags = self.flags
        if self.history_dde is not None:
            flags |= CRB_FLAG_HISTORY
        body = struct.pack(
            "<IIQ", self.function.encode(), flags, self.csb_address)
        body += struct.pack("<I", self.sequence)
        body += self.source.pack()
        body += self.target.pack()
        if self.history_dde is not None:
            body += self.history_dde.pack()
        if len(body) > CRB_BYTES:
            raise JobError("CRB fields exceed 128 bytes")
        return body + b"\x00" * (CRB_BYTES - len(body))

    @classmethod
    def unpack(cls, raw: bytes) -> "Crb":
        if len(raw) != CRB_BYTES:
            raise JobError(f"CRB must be {CRB_BYTES} bytes, got {len(raw)}")
        fc, flags, csb_address = struct.unpack_from("<IIQ", raw, 0)
        (sequence,) = struct.unpack_from("<I", raw, 16)
        source, offset = Dde.unpack(raw, 20)
        target, offset = Dde.unpack(raw, offset)
        history = None
        if flags & CRB_FLAG_HISTORY:
            history, _offset = Dde.unpack(raw, offset)
        return cls(function=FunctionCode.decode(fc), source=source,
                   target=target, csb_address=csb_address,
                   sequence=sequence, flags=flags, history_dde=history)
