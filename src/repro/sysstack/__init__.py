"""System-stack substrate: how software reaches the accelerator.

CRB/CSB/DDE request structures, the VAS switchboard with copy/paste
submission and window credits, a paged address space with translation-
fault injection, and the user-mode driver with the documented
touch-and-resubmit and software-fallback behaviour.
"""

from .crb import CRB_BYTES, CSB_BYTES, CcCode, Crb, Csb, FunctionCode, Op
from .dde import DDE_BYTES, Dde
from .driver import (AsyncNxDriver, DriverResult, NxDriver,
                     PendingJob, SubmissionStats)
from .mmu import PAGE_SIZE, AddressSpace, FaultInjector
from .vas import SendWindow, Vas

__all__ = [
    "Crb",
    "Csb",
    "CcCode",
    "FunctionCode",
    "Op",
    "CRB_BYTES",
    "CSB_BYTES",
    "Dde",
    "DDE_BYTES",
    "NxDriver",
    "AsyncNxDriver",
    "PendingJob",
    "DriverResult",
    "SubmissionStats",
    "AddressSpace",
    "FaultInjector",
    "PAGE_SIZE",
    "Vas",
    "SendWindow",
]
