"""Exception hierarchy shared across the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class DeflateError(ReproError):
    """A malformed DEFLATE/zlib/gzip stream or an encoding failure."""


class ChecksumError(DeflateError):
    """A container checksum (CRC-32 / Adler-32) did not verify."""


class OutputOverflow(DeflateError):
    """Decoded output would exceed the caller's buffer capacity."""


class HuffmanError(DeflateError):
    """An invalid Huffman code description (over/under-subscribed, etc.)."""


class AcceleratorError(ReproError):
    """The accelerator model rejected or failed a job."""


class JobError(AcceleratorError):
    """A coprocessor job completed with a non-success condition code."""

    def __init__(self, message: str, cc: int | None = None) -> None:
        super().__init__(message)
        self.cc = cc


class TranslationFault(AcceleratorError):
    """Address translation failed inside the accelerator's address pipe."""

    def __init__(self, address: int, is_write: bool) -> None:
        kind = "write" if is_write else "read"
        super().__init__(f"translation fault on {kind} at 0x{address:x}")
        self.address = address
        self.is_write = is_write


class VasError(ReproError):
    """Virtual Accelerator Switchboard misuse (no credits, bad window...)."""


class ConfigError(ReproError):
    """An invalid machine/topology/parameter configuration."""
