"""Exception hierarchy shared across the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class DeflateError(ReproError):
    """A malformed DEFLATE/zlib/gzip stream or an encoding failure."""


class ChecksumError(DeflateError):
    """A container checksum (CRC-32 / Adler-32) did not verify."""


class OutputOverflow(DeflateError):
    """Decoded output would exceed the caller's buffer capacity."""


class HuffmanError(DeflateError):
    """An invalid Huffman code description (over/under-subscribed, etc.)."""


class SeekIndexError(ReproError):
    """A seek-index artifact is unreadable (bad magic, version, CRC...).

    Deliberately *not* a :class:`DeflateError`: the compressed stream
    itself may be perfectly fine — only the sidecar index is unusable.
    Callers recover by falling back to a full serial decode; the index
    layer never serves bytes from an artifact it cannot verify.
    """


class AcceleratorError(ReproError):
    """The accelerator model rejected or failed a job."""


class JobError(AcceleratorError):
    """A coprocessor job completed with a non-success condition code."""

    def __init__(self, message: str, cc: int | None = None) -> None:
        super().__init__(message)
        self.cc = cc


class TranslationFault(AcceleratorError):
    """Address translation failed inside the accelerator's address pipe."""

    def __init__(self, address: int, is_write: bool) -> None:
        kind = "write" if is_write else "read"
        super().__init__(f"translation fault on {kind} at 0x{address:x}")
        self.address = address
        self.is_write = is_write


class DeadlineExceeded(AcceleratorError):
    """A job's modelled elapsed time passed its caller-supplied deadline."""

    def __init__(self, message: str, elapsed_s: float | None = None,
                 deadline_s: float | None = None) -> None:
        super().__init__(message)
        self.elapsed_s = elapsed_s
        self.deadline_s = deadline_s


class ChipUnavailable(AcceleratorError):
    """No healthy chip can take the job (circuit breakers open)."""

    def __init__(self, message: str, chip: int | None = None) -> None:
        super().__init__(message)
        self.chip = chip


class IntegrityError(ReproError):
    """Verify-after-compress found output that does not round-trip."""


class ExecError(AcceleratorError):
    """The process-based execution layer failed a job or a request."""


class WorkerCrash(ExecError):
    """A pool worker process died while (or before) running a job.

    Derives from :class:`AcceleratorError` so the accelerator pool's
    rescue machinery treats a crashed worker exactly like a failed
    chip: the job reruns on the calling core and the caller still gets
    correct bytes.
    """

    def __init__(self, message: str, worker: int | None = None,
                 exitcode: int | None = None) -> None:
        super().__init__(message)
        self.worker = worker
        self.exitcode = exitcode


class ServiceError(ReproError):
    """The compression service rejected or failed a request."""

    #: May the client usefully retry this request (possibly elsewhere)?
    retryable = False


class ServiceOverloaded(ServiceError):
    """Admission control shed the request; retry after a backoff.

    The bounded per-class queues are full — the server prefers an
    explicit, cheap rejection over unbounded buffering.  ``retry_after_s``
    is the server's estimate of when capacity frees up.
    """

    retryable = True

    def __init__(self, message: str, retry_after_s: float = 0.0,
                 qos: str | None = None) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.qos = qos


class ServiceClosed(ServiceError):
    """The service is draining or stopped and accepts no new work."""


class ServiceUnreachable(ServiceError):
    """No server is listening (connection refused / reset / timed out).

    Retryable by definition — the server may simply not be up *yet* —
    and carried as a one-line, traceback-free message by the CLI.
    """

    retryable = True

    def __init__(self, message: str, host: str = "",
                 port: int | None = None) -> None:
        super().__init__(message)
        self.host = host
        self.port = port


class RetryBudgetExhausted(ServiceError):
    """The client's shared retry budget refused another retry.

    Raised instead of hammering a struggling server: when retries are
    being spent faster than successful requests earn them back, the
    *original* failure is attached as ``__cause__`` and surfaced.
    """


class VasError(ReproError):
    """Virtual Accelerator Switchboard misuse (no credits, bad window...)."""


class ConfigError(ReproError):
    """An invalid machine/topology/parameter configuration."""
