"""An 842-style compression codec, from scratch.

The POWER NX unit contains 842 engines alongside the gzip engines: 842
is IBM's hardware-friendly format for memory/SAN compression (Active
Memory Expansion, AIX), trading ratio for a trivially pipelineable
8-bytes-per-template design.  The paper positions the gzip engines as
the ratio upgrade over this in-house format, so the comparison matters.

Format modelled here (after the published 842 description and the Linux
``lib/842`` software implementation): input is processed in 8-byte
chunks; each chunk is encoded as a 5-bit template opcode followed by the
template's operands.  Operands are literal data (``D8/D4/D2``) or ring
indices (``I8/I4/I2``) referencing recently seen aligned 8/4/2-byte
subunits.  Special opcodes cover chunk repetition, zero chunks, trailing
short data, and end-of-stream.

The bitstream is self-consistent (our decoder ⇄ our encoder) and
documented as a modelled format: with no network access, bit-exact
cross-validation against ``lib/842`` is out of scope, but the template
structure, ring geometry (256/512/256 entries), and cost model match the
published design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..deflate.bitio import BitReader, BitWriter
from ..errors import ReproError

CHUNK = 8

# Ring geometries: entries of recently seen aligned subunits.
I2_BITS = 8   # 256 most recent 2-byte units
I4_BITS = 9   # 512 most recent 4-byte units
I8_BITS = 8   # 256 most recent 8-byte units

OP_BITS = 5

# Template table: opcode -> sequence of actions covering 8 bytes.
# D<n> = n literal bytes, I<n> = ring index replacing n bytes.
TEMPLATES: dict[int, tuple[str, ...]] = {
    0x00: ("D8",),
    0x01: ("D4", "D2", "I2"),
    0x02: ("D4", "I2", "D2"),
    0x03: ("D4", "I2", "I2"),
    0x04: ("D4", "I4"),
    0x05: ("D2", "I2", "D4"),
    0x06: ("D2", "I2", "D2", "I2"),
    0x07: ("D2", "I2", "I2", "D2"),
    0x08: ("D2", "I2", "I2", "I2"),
    0x09: ("D2", "I2", "I4"),
    0x0A: ("I2", "D2", "D4"),
    0x0B: ("I2", "D4", "I2"),
    0x0C: ("I2", "D2", "I2", "D2"),
    0x0D: ("I2", "D2", "I2", "I2"),
    0x0E: ("I2", "D2", "I4"),
    0x0F: ("I2", "I2", "D4"),
    0x10: ("I2", "I2", "D2", "I2"),
    0x11: ("I2", "I2", "I2", "D2"),
    0x12: ("I2", "I2", "I2", "I2"),
    0x13: ("I2", "I2", "I4"),
    0x14: ("I4", "D4"),
    0x15: ("I4", "D2", "I2"),
    0x16: ("I4", "I2", "D2"),
    0x17: ("I4", "I2", "I2"),
    0x18: ("I4", "I4"),
    0x19: ("I8",),
}
OP_REPEAT = 0x1A      # repeat previous chunk 1..64 times (6-bit count)
OP_ZEROS = 0x1B       # one all-zero chunk
OP_SHORT_DATA = 0x1C  # 1..7 trailing literal bytes (3-bit count)
OP_END = 0x1E

_ACTION_BITS = {"D8": 64, "D4": 32, "D2": 16,
                "I8": I8_BITS, "I4": I4_BITS, "I2": I2_BITS}
_ACTION_BYTES = {"D8": 8, "D4": 4, "D2": 2, "I8": 8, "I4": 4, "I2": 2}

_REPEAT_BITS = 6
_SHORT_BITS = 3


class E842Error(ReproError):
    """Malformed 842 stream."""


class E842Overflow(E842Error):
    """Decoded output exceeds the caller's buffer capacity."""


def template_cost_bits(actions: tuple[str, ...]) -> int:
    """Encoded size of one chunk under a template (opcode included)."""
    return OP_BITS + sum(_ACTION_BITS[a] for a in actions)


class _Rings:
    """The three subunit rings both sides maintain in lockstep."""

    def __init__(self) -> None:
        self.counts = {2: 0, 4: 0, 8: 0}
        self.sizes = {2: 1 << I2_BITS, 4: 1 << I4_BITS, 8: 1 << I8_BITS}
        self.slots = {width: [b""] * size
                      for width, size in self.sizes.items()}
        # encoder side: value -> last insertion counter
        self.last_seen: dict[int, dict[bytes, int]] = {2: {}, 4: {}, 8: {}}

    def push_chunk(self, chunk: bytes) -> None:
        """Insert every aligned subunit of one 8-byte chunk."""
        for width in (2, 4, 8):
            for off in range(0, CHUNK, width):
                unit = chunk[off:off + width]
                slot = self.counts[width] % self.sizes[width]
                self.slots[width][slot] = unit
                self.last_seen[width][unit] = self.counts[width]
                self.counts[width] += 1

    def find(self, unit: bytes) -> int | None:
        """Encoder: ring index of ``unit`` if it is still live."""
        width = len(unit)
        counter = self.last_seen[width].get(unit)
        if counter is None:
            return None
        if self.counts[width] - counter > self.sizes[width]:
            return None  # overwritten since
        return counter % self.sizes[width]

    def fetch(self, width: int, index: int) -> bytes:
        unit = self.slots[width][index]
        if len(unit) != width:
            raise E842Error(f"I{width} index {index} references an "
                            "unwritten ring slot")
        return unit


@dataclass
class E842Stats:
    """Encoder statistics for the engine timing model."""

    chunks: int = 0
    literal_chunks: int = 0
    indexed_chunks: int = 0
    repeat_chunks: int = 0
    zero_chunks: int = 0
    short_bytes: int = 0


@dataclass
class E842Result:
    data: bytes
    input_bytes: int
    stats: E842Stats = field(default_factory=E842Stats)

    @property
    def ratio(self) -> float:
        return self.input_bytes / len(self.data) if self.data else 0.0


def compress(data: bytes) -> E842Result:
    """Encode ``data`` as an 842 stream."""
    writer = BitWriter()
    rings = _Rings()
    stats = E842Stats()
    n = len(data)
    pos = 0
    prev_chunk: bytes | None = None

    while pos + CHUNK <= n:
        chunk = data[pos:pos + CHUNK]
        # Repetition run of the previous chunk.
        if chunk == prev_chunk:
            run = 0
            while (run < (1 << _REPEAT_BITS)
                   and pos + CHUNK <= n
                   and data[pos:pos + CHUNK] == prev_chunk):
                run += 1
                pos += CHUNK
            writer.write_bits(OP_REPEAT, OP_BITS)
            writer.write_bits(run - 1, _REPEAT_BITS)
            stats.chunks += run
            stats.repeat_chunks += run
            for _ in range(run):
                rings.push_chunk(chunk)
            continue
        if chunk == b"\x00" * CHUNK:
            writer.write_bits(OP_ZEROS, OP_BITS)
            stats.chunks += 1
            stats.zero_chunks += 1
            rings.push_chunk(chunk)
            prev_chunk = chunk
            pos += CHUNK
            continue

        opcode, plan = _choose_template(chunk, rings)
        writer.write_bits(opcode, OP_BITS)
        for action, payload in plan:
            writer.write_bits(payload, _ACTION_BITS[action])
        stats.chunks += 1
        if opcode == 0x00:
            stats.literal_chunks += 1
        else:
            stats.indexed_chunks += 1
        rings.push_chunk(chunk)
        prev_chunk = chunk
        pos += CHUNK

    tail = data[pos:]
    if tail:
        writer.write_bits(OP_SHORT_DATA, OP_BITS)
        writer.write_bits(len(tail), _SHORT_BITS)
        for byte in tail:
            writer.write_bits(byte, 8)
        stats.short_bytes = len(tail)
    writer.write_bits(OP_END, OP_BITS)
    return E842Result(data=writer.getvalue(), input_bytes=n, stats=stats)


def _choose_template(chunk: bytes,
                     rings: _Rings) -> tuple[int, list[tuple[str, int]]]:
    """Pick the cheapest template whose index references all resolve."""
    best_opcode = 0x00
    best_plan = [("D8", int.from_bytes(chunk, "big"))]
    best_bits = template_cost_bits(TEMPLATES[0x00])
    for opcode, actions in TEMPLATES.items():
        bits = template_cost_bits(actions)
        if bits >= best_bits:
            continue
        plan = []
        off = 0
        ok = True
        for action in actions:
            width = _ACTION_BYTES[action]
            unit = chunk[off:off + width]
            off += width
            if action.startswith("D"):
                plan.append((action, int.from_bytes(unit, "big")))
            else:
                index = rings.find(unit)
                if index is None:
                    ok = False
                    break
                plan.append((action, index))
        if ok:
            best_opcode = opcode
            best_plan = plan
            best_bits = bits
    return best_opcode, best_plan


def decompress(payload: bytes, max_output: int = 1 << 31) -> bytes:
    """Decode an 842 stream."""
    reader = BitReader(payload)
    rings = _Rings()
    out = bytearray()
    prev_chunk: bytes | None = None

    while True:
        opcode = reader.read_bits(OP_BITS)
        if opcode == OP_END:
            return bytes(out)
        if opcode == OP_REPEAT:
            if prev_chunk is None:
                raise E842Error("repeat with no previous chunk")
            run = reader.read_bits(_REPEAT_BITS) + 1
            for _ in range(run):
                out += prev_chunk
                rings.push_chunk(prev_chunk)
        elif opcode == OP_ZEROS:
            chunk = b"\x00" * CHUNK
            out += chunk
            rings.push_chunk(chunk)
            prev_chunk = chunk
        elif opcode == OP_SHORT_DATA:
            count = reader.read_bits(_SHORT_BITS)
            if not 1 <= count < CHUNK:
                raise E842Error(f"bad short-data count {count}")
            out += bytes(reader.read_bits(8) for _ in range(count))
        elif opcode in TEMPLATES:
            chunk = bytearray()
            for action in TEMPLATES[opcode]:
                width = _ACTION_BYTES[action]
                value = reader.read_bits(_ACTION_BITS[action])
                if action.startswith("D"):
                    chunk += value.to_bytes(width, "big")
                else:
                    chunk += rings.fetch(width, value)
            chunk = bytes(chunk)
            out += chunk
            rings.push_chunk(chunk)
            prev_chunk = chunk
        else:
            raise E842Error(f"reserved opcode {opcode:#x}")
        if len(out) > max_output:
            raise E842Overflow("output exceeds allowed size")
