"""842-style codec + engine model (the NX unit's memory-compression side)."""

from .codec import (
    E842Error,
    E842Overflow,
    E842Result,
    E842Stats,
    compress,
    decompress,
    template_cost_bits,
)
from .engine import E842JobResult, Engine842, Engine842Params

__all__ = [
    "compress",
    "decompress",
    "E842Result",
    "E842Stats",
    "E842Error",
    "E842Overflow",
    "template_cost_bits",
    "Engine842",
    "Engine842Params",
    "E842JobResult",
]
