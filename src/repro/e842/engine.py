"""Timing model for the NX 842 engines.

The 842 design is exactly what makes it hardware-cheap: one template per
8-byte chunk, no Huffman stage, no table generation — so the engine
streams at its full scan width with only ring lookups in the loop.  The
POWER9 NX carries two such engines (a heritage of Active Memory
Expansion); they are faster than the gzip side but compress noticeably
worse, which is the trade the paper's gzip engines were built to win.
"""

from __future__ import annotations

from dataclasses import dataclass

from .codec import CHUNK, E842Result, E842Stats, compress, decompress


@dataclass(frozen=True)
class Engine842Params:
    """One 842 engine."""

    name: str = "nx-842-p9"
    clock_ghz: float = 2.0
    bytes_per_cycle: int = 8
    pipeline_fill_cycles: int = 32
    engines_per_nx: int = 2


@dataclass(frozen=True)
class E842JobResult:
    """Functional + timing outcome of one 842 job."""

    data: bytes
    input_bytes: int
    output_bytes: int
    cycles: int
    clock_ghz: float
    stats: E842Stats | None = None

    @property
    def ratio(self) -> float:
        """Compression ratio (meaningful on the compress direction)."""
        if not self.data:
            return 0.0
        return self.input_bytes / len(self.data)

    @property
    def seconds(self) -> float:
        return self.cycles / (self.clock_ghz * 1e9)

    @property
    def throughput_gbps(self) -> float:
        seconds = self.seconds
        return (self.input_bytes / 1e9) / seconds if seconds else 0.0


@dataclass
class Engine842:
    """Compression/decompression through one modelled 842 engine."""

    params: Engine842Params = Engine842Params()

    def compress(self, data: bytes) -> E842JobResult:
        result: E842Result = compress(data)
        cycles = self._cycles(len(data))
        return E842JobResult(data=result.data, input_bytes=len(data),
                             output_bytes=len(result.data), cycles=cycles,
                             clock_ghz=self.params.clock_ghz,
                             stats=result.stats)

    def decompress(self, payload: bytes,
                   max_output: int = 1 << 31) -> E842JobResult:
        out = decompress(payload, max_output=max_output)
        cycles = self._cycles(len(out))
        return E842JobResult(data=out, input_bytes=len(payload),
                             output_bytes=len(out), cycles=cycles,
                             clock_ghz=self.params.clock_ghz)

    def _cycles(self, nbytes: int) -> int:
        chunks = -(-max(nbytes, 1) // CHUNK)
        per_cycle_chunks = max(1, self.params.bytes_per_cycle // CHUNK)
        return (self.params.pipeline_fill_cycles
                + -(-chunks // per_cycle_chunks))
