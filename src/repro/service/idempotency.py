"""Exactly-once result replay for resent requests.

The wire protocol has client-generated ``request_id`` idempotency keys
(see :mod:`repro.service.protocol`); this module is the server-side
half: a bounded per-tenant LRU of recently completed results plus an
in-flight claim table, giving one logical request **at most one
execution** no matter how many times a reconnecting client resends it.

Three races matter, and each has a distinct answer:

* *resend after the result was computed* — the LRU returns the cached
  response header + body (a **hit**; the job never re-executes);
* *resend while the first attempt is still executing* — the second
  connection **waits** on the owner's completion event instead of
  executing in parallel (the classic double-execute window when a
  client reconnects faster than the server finishes);
* *resend after the first attempt failed* — the owner **aborts** its
  claim, waiters wake empty-handed and re-claim, so a failed execution
  never poisons the key (at-most-one *successful* execution).

Bounds: ``max_entries`` results per tenant (LRU eviction) and
``max_bytes`` of cached payload per tenant (evicting oldest first), so
a chatty tenant cannot grow server memory without bound or wash out
other tenants' windows.  ``stats()`` exposes exact counters — ``hits``,
``stores``, ``duplicate_stores``, ``evictions``, ``waits`` — that the
network chaos campaign reconciles against client-side success counts:
``duplicate_stores == 0`` *is* the zero-double-execution proof.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

#: Default bounds: plenty for a reconnect window, bounded for a fleet.
DEFAULT_MAX_ENTRIES = 256
DEFAULT_MAX_BYTES = 32 << 20
DEFAULT_MAX_TENANTS = 64


class _Claim:
    """One in-flight execution of a keyed request."""

    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event = threading.Event()


class IdempotencyCache:
    """Per-tenant LRU of completed results + in-flight claim table."""

    def __init__(self, *, max_entries: int = DEFAULT_MAX_ENTRIES,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 max_tenants: int = DEFAULT_MAX_TENANTS) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.max_tenants = max_tenants
        self._lock = threading.Lock()
        # tenant -> OrderedDict[request_id -> (header, body)]
        self._tenants: OrderedDict[str, OrderedDict[str, tuple[dict,
                                                               bytes]]] = \
            OrderedDict()
        self._tenant_bytes: dict[str, int] = {}
        self._inflight: dict[tuple[str, str], _Claim] = {}
        self.hits = 0
        self.stores = 0
        self.duplicate_stores = 0
        self.evictions = 0
        self.waits = 0

    # -- the handler-facing protocol -----------------------------------------

    def begin(self, tenant: str, request_id: str):
        """Start (or join) one keyed execution.

        Returns one of::

            ("hit", (header, body))   # replay, do not execute
            ("owner", key)            # execute; commit() or abort() after
            ("wait", claim)           # another connection is executing;
                                      # wait on claim.event, then retry
        """
        key = (tenant, request_id)
        with self._lock:
            entries = self._tenants.get(tenant)
            if entries is not None and request_id in entries:
                entries.move_to_end(request_id)
                self._tenants.move_to_end(tenant)
                self.hits += 1
                return "hit", entries[request_id]
            claim = self._inflight.get(key)
            if claim is not None:
                self.waits += 1
                return "wait", claim
            self._inflight[key] = _Claim()
            return "owner", key

    def commit(self, key: tuple[str, str], header: dict,
               body: bytes) -> bool:
        """Record the owner's completed result; wake any waiters.

        Returns False — and counts a ``duplicate_store`` — if the key
        was already present, which a correct server never produces.
        """
        tenant, request_id = key
        with self._lock:
            entries = self._tenants.get(tenant)
            if entries is None:
                if len(self._tenants) >= self.max_tenants:
                    evicted, dropped = self._tenants.popitem(last=False)
                    self._tenant_bytes.pop(evicted, None)
                    self.evictions += len(dropped)
                entries = self._tenants[tenant] = OrderedDict()
                self._tenant_bytes[tenant] = 0
            fresh = request_id not in entries
            if fresh:
                entries[request_id] = (header, body)
                self._tenant_bytes[tenant] += len(body)
                self.stores += 1
                self._evict_locked(tenant)
            else:
                self.duplicate_stores += 1
            self._release_locked((tenant, request_id))
            return fresh

    def abort(self, key: tuple[str, str]) -> None:
        """The owner failed without a result: free the key for retry."""
        with self._lock:
            self._release_locked(key)

    # -- internals -----------------------------------------------------------

    def _release_locked(self, key: tuple[str, str]) -> None:
        claim = self._inflight.pop(key, None)
        if claim is not None:
            claim.event.set()

    def _evict_locked(self, tenant: str) -> None:
        entries = self._tenants[tenant]
        while (len(entries) > self.max_entries
               or self._tenant_bytes[tenant] > self.max_bytes):
            if len(entries) <= 1 and len(entries) <= self.max_entries:
                break  # never evict the entry just stored on bytes alone
            _, (_, body) = entries.popitem(last=False)
            self._tenant_bytes[tenant] -= len(body)
            self.evictions += 1

    # -- introspection -------------------------------------------------------

    def entries(self) -> int:
        with self._lock:
            return sum(len(e) for e in self._tenants.values())

    def cached_bytes(self) -> int:
        with self._lock:
            return sum(self._tenant_bytes.get(t, 0) for t in self._tenants)

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "stores": self.stores,
                "duplicate_stores": self.duplicate_stores,
                "evictions": self.evictions,
                "waits": self.waits,
                "entries": sum(len(e) for e in self._tenants.values()),
                "tenants": len(self._tenants),
            }
