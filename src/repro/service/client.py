"""Self-healing client for the compression job server.

Thin, dependency-free, and honest about backpressure: a shed request
surfaces as :class:`~repro.errors.ServiceOverloaded` carrying the
server's ``retry_after_s`` hint, and :meth:`ServiceClient.request`
optionally honours it (bounded retries with the server-suggested
backoff) so callers get the paper's shared-accelerator etiquette —
back off, don't hammer — by default.

The wire is a failure domain of its own, and the client owns three
defences (all off the hot path when the connection behaves):

* **Auto-reconnect** (``reconnect=True``): a connection lost mid-call
  is redialled with capped exponential backoff and *deterministic*
  jitter (derived from the request id, so a seeded chaos campaign
  replays the identical timeline), and the request is resent **with
  the same** ``request_id`` — the server's idempotency cache turns the
  resend into a replay, never a second execution.  One logical
  request: one id, one trace, one execution.
* **A shared retry budget** — a token bucket spanning all requests on
  the client: successful traffic earns fractional tokens, every retry
  (reconnect or overload) spends one.  Under a genuine outage retries
  starve instead of amplifying the overload into a synchronized storm.
* **Stale-response filtering** — the server echoes ``request_id``;
  any response carrying a different id (a duplicated or stale frame
  from an earlier exchange) is discarded and reading continues, so a
  noisy wire can delay an answer but never cross-wire two requests.

One client owns one socket and is **not** thread-safe; concurrent
callers should each open their own (connections are cheap, the server
threads per connection).  A single :class:`RetryBudget` may be shared
across many clients — that is the point of it.
"""

from __future__ import annotations

import os
import socket
import threading
import time

from ..errors import (AcceleratorError, RetryBudgetExhausted, ServiceError,
                      ServiceOverloaded, ServiceUnreachable)
from ..obs.context import TraceContext
from ..obs.flight import FLIGHT as _FLIGHT
from ..obs.metrics import REGISTRY as _REGISTRY
from ..obs.trace import TRACE as _TRACE
from ..resilience.policy import _mix
from .protocol import ProtocolError, recv_message, send_message

#: Reconnect backoff: capped exponential, deterministically jittered.
_BACKOFF_BASE_S = 0.05
_BACKOFF_MAX_S = 2.0
_BACKOFF_JITTER = 0.25

#: Drop at most this many mismatched responses per call before giving
#: up on the connection — a peer spraying stale frames is a dead peer.
_MAX_STALE_DROPS = 16


class RemoteServiceError(ServiceError):
    """The server reported a non-retryable failure for this request."""

    def __init__(self, message: str, error_type: str = "") -> None:
        super().__init__(message)
        self.error_type = error_type


class RetryBudget:
    """Token bucket damping retries across all of a client's requests.

    Every logical request deposits ``deposit`` tokens (capped at
    ``capacity``); every retry withdraws one.  When the bucket is empty
    the retry is denied — the caller surfaces the underlying failure
    instead of resending.  The arithmetic is time-free and therefore
    deterministic: a seeded campaign replays the same grant/deny
    sequence.  Thread-safe, so one budget can be shared fleet-wide.
    """

    def __init__(self, capacity: float = 16.0, deposit: float = 0.5,
                 initial: float | None = None) -> None:
        self.capacity = float(capacity)
        self.deposit = float(deposit)
        self._tokens = self.capacity if initial is None else float(initial)
        self._lock = threading.Lock()
        self.granted = 0
        self.denied = 0

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def on_request(self) -> None:
        """One logical request started: earn fractional retry credit."""
        with self._lock:
            self._tokens = min(self.capacity, self._tokens + self.deposit)

    def try_withdraw(self) -> bool:
        """Spend one token for a retry; False when the budget is dry."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self.granted += 1
                return True
            self.denied += 1
            if _REGISTRY.enabled:
                _REGISTRY.counter(
                    "repro_service_net_retry_denied_total",
                    "retries refused by the client retry budget").inc(1)
            return False


class ClientResult:
    """One served request: the bytes plus the server's timing view."""

    __slots__ = ("output", "qos", "modelled_s", "queue_wait_s",
                 "batch_size", "attempts", "traceparent", "request_id",
                 "reconnects", "deduped")

    def __init__(self, output: bytes, header: dict, attempts: int = 1,
                 traceparent: str = "", request_id: str = "",
                 reconnects: int = 0) -> None:
        self.output = output
        self.qos = header.get("qos", "")
        self.modelled_s = float(header.get("modelled_s", 0.0))
        self.queue_wait_s = float(header.get("queue_wait_s", 0.0))
        self.batch_size = int(header.get("batch_size", 1))
        self.attempts = attempts
        #: The trace context this request was sent under; join it with
        #: the server's ``/traces/recent`` trees by its 32-hex trace id.
        self.traceparent = traceparent
        #: The wire idempotency key this logical request kept across
        #: every resend.
        self.request_id = request_id
        #: Connections dialled beyond the first to fulfil this request.
        self.reconnects = reconnects
        #: True when the server replayed the result from its
        #: idempotency cache instead of executing again.
        self.deduped = bool(header.get("deduped", False))


class ServiceClient:
    """Blocking client over one connection to a compression server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout_s: float = 60.0, reconnect: bool = False,
                 max_reconnects: int = 4,
                 retry_budget: RetryBudget | None = None,
                 socket_wrapper=None) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.reconnect = reconnect
        self.max_reconnects = max_reconnects
        #: Shared across requests (and shareable across clients): the
        #: damper that keeps retries from amplifying an overload.
        self.retry_budget = retry_budget or RetryBudget()
        #: Chaos/test hook: wraps every socket this client dials.
        self.socket_wrapper = socket_wrapper
        self.sock: socket.socket | None = None
        self.reconnects_total = 0
        self._connect()

    def _connect(self) -> None:
        try:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout_s)
        except OSError as exc:
            raise ServiceUnreachable(
                f"server unreachable at {self.host}:{self.port} "
                f"({exc.strerror or exc})",
                host=self.host, port=self.port) from exc
        if self.socket_wrapper is not None:
            sock = self.socket_wrapper(sock)
        self.sock = sock

    def close(self) -> None:
        if self.sock is None:
            return
        try:
            self.sock.close()
        except OSError:
            pass
        self.sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- raw exchange --------------------------------------------------------

    def call(self, header: dict, payload: bytes = b"") -> tuple[dict, bytes]:
        """One request/response round trip; raises on a dead socket."""
        if self.sock is None:
            self._connect()
        send_message(self.sock, header, payload)
        message = recv_message(self.sock)
        if message is None:
            raise ProtocolError("server closed the connection")
        return message

    def _call_matching(self, header: dict, payload: bytes,
                       request_id: str, span) -> tuple[dict, bytes]:
        """``call`` that discards responses for *other* request ids.

        A duplicated or delayed frame from an earlier exchange on this
        connection must not be mistaken for this request's answer; the
        echoed ``request_id`` is the discriminator.  Responses without
        an id (old servers, ``ping``/``stats``) pass through.
        """
        if self.sock is None:
            self._connect()
        send_message(self.sock, header, payload)
        for _ in range(_MAX_STALE_DROPS):
            message = recv_message(self.sock)
            if message is None:
                raise ProtocolError("server closed the connection")
            echoed = message[0].get("request_id")
            if echoed is None or echoed == request_id:
                return message
            span.event("client.stale_drop", got=echoed)
            if _REGISTRY.enabled:
                _REGISTRY.counter(
                    "repro_service_net_stale_drops_total",
                    "stale/duplicated responses discarded by the "
                    "client").inc(1)
        raise ProtocolError(
            f"no response for {request_id!r} within "
            f"{_MAX_STALE_DROPS} frames")

    # -- reconnect machinery -------------------------------------------------

    def _backoff_s(self, request_id: str, attempt: int) -> float:
        """Capped exponential backoff with deterministic jitter."""
        base = min(_BACKOFF_BASE_S * (2.0 ** (attempt - 1)),
                   _BACKOFF_MAX_S)
        unit = _mix(int(request_id, 16), attempt) / float(1 << 64)
        return base * (1.0 + _BACKOFF_JITTER * (2.0 * unit - 1.0))

    def _reconnect(self, request_id: str, reconnects: int, span,
                   cause: Exception) -> None:
        """Tear down, back off, redial; raises when out of budget."""
        if not self.reconnect or reconnects > self.max_reconnects:
            raise cause
        if not self.retry_budget.try_withdraw():
            raise RetryBudgetExhausted(
                f"retry budget empty after connection failure: "
                f"{cause}") from cause
        self.close()
        self.reconnects_total += 1
        span.event("client.reconnect", attempt=reconnects,
                   cause=type(cause).__name__)
        if _REGISTRY.enabled:
            _REGISTRY.counter(
                "repro_service_net_reconnects_total",
                "connections redialled after a wire failure").inc(1)
        _FLIGHT.record("net.reconnect", request_id=request_id,
                       attempt=reconnects, cause=type(cause).__name__)
        time.sleep(self._backoff_s(request_id, reconnects))
        self._connect()  # raises ServiceUnreachable if still down

    # -- typed surface -------------------------------------------------------

    def ping(self) -> bool:
        header, _ = self.call({"op": "ping"})
        return header.get("status") == "ok"

    def stats(self) -> dict:
        header, _ = self.call({"op": "stats"})
        return header.get("stats", {})

    def drain(self) -> bool:
        header, _ = self.call({"op": "drain"})
        return header.get("status") == "ok"

    def request(self, op: str, payload: bytes, *, qos: str | None = None,
                tenant: str = "", fmt: str | None = None,
                strategy: str = "auto", deadline_s: float | None = None,
                retries: int = 0) -> ClientResult:
        """Submit one job; retry overload sheds and connection losses.

        ``retries`` bounds how many times an overload rejection is
        retried, sleeping the server's ``retry_after_s`` hint between
        attempts.  The final rejection (or any non-retryable error)
        raises.  With ``reconnect`` enabled, a connection lost mid-call
        is redialled (up to ``max_reconnects``, spending the shared
        retry budget) and the request resent under the **same**
        ``request_id``, so the server executes it at most once.

        Every request originates a wire trace context, sent as a
        ``traceparent`` header field; retries and resends reuse it (one
        logical request, one trace).  With client-side tracing enabled
        the round trip is additionally covered by a local
        ``client.request`` span stamped with that context.
        """
        ctx = TraceContext.new()
        request_id = os.urandom(8).hex()
        header = {"op": op, "strategy": strategy,
                  "traceparent": ctx.to_traceparent(),
                  "request_id": request_id}
        if qos is not None:
            header["qos"] = qos
        if tenant:
            header["tenant"] = tenant
        if fmt is not None:
            header["fmt"] = fmt
        if deadline_s is not None:
            header["deadline_s"] = deadline_s
        attempts = 0
        reconnects = 0
        self.retry_budget.on_request()
        with _TRACE.span("client.request", ctx=ctx, op=op,
                         nbytes=len(payload)) as span:
            while True:
                attempts += 1
                try:
                    response, body = self._call_matching(
                        header, payload, request_id, span)
                except (ProtocolError, ServiceUnreachable, OSError) as exc:
                    reconnects += 1
                    self._reconnect(request_id, reconnects, span, exc)
                    continue
                status = response.get("status")
                if status == "ok":
                    span.set(status="ok", attempts=attempts,
                             out_bytes=len(body))
                    return ClientResult(body, response, attempts=attempts,
                                        traceparent=ctx.to_traceparent(),
                                        request_id=request_id,
                                        reconnects=reconnects)
                if status == "rejected":
                    if attempts <= retries \
                            and self.retry_budget.try_withdraw():
                        span.event("client.retry", attempt=attempts)
                        time.sleep(max(0.0, float(
                            response.get("retry_after_s", 0.0))))
                        continue
                    span.set(status="rejected", attempts=attempts)
                    raise ServiceOverloaded(
                        response.get("error", "request shed"),
                        retry_after_s=float(
                            response.get("retry_after_s", 0.0)),
                        qos=response.get("qos"))
                error_type = response.get("error_type", "")
                message = response.get("error", "request failed")
                span.set(status="error", error=error_type or "unknown")
                if error_type == "bad_frame":
                    raise ProtocolError(
                        f"server rejected frame: {message}",
                        kind=response.get("kind", "protocol"))
                if response.get("retryable"):
                    raise ServiceOverloaded(message)
                if error_type in ("DeadlineExceeded", "ChipUnavailable",
                                  "JobError"):
                    raise AcceleratorError(message)
                raise RemoteServiceError(message, error_type=error_type)

    def compress(self, payload: bytes, **kwargs) -> ClientResult:
        return self.request("compress", payload, **kwargs)

    def decompress(self, payload: bytes, **kwargs) -> ClientResult:
        return self.request("decompress", payload, **kwargs)
