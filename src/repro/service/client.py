"""Client for the compression job server.

Thin, dependency-free, and honest about backpressure: a shed request
surfaces as :class:`~repro.errors.ServiceOverloaded` carrying the
server's ``retry_after_s`` hint, and :meth:`ServiceClient.request`
optionally honours it (bounded retries with the server-suggested
backoff) so callers get the paper's shared-accelerator etiquette —
back off, don't hammer — by default.

One client owns one socket and is **not** thread-safe; concurrent
callers should each open their own (connections are cheap, the server
threads per connection).
"""

from __future__ import annotations

import socket
import time

from ..errors import AcceleratorError, ServiceError, ServiceOverloaded
from ..obs.context import TraceContext
from ..obs.trace import TRACE as _TRACE
from .protocol import ProtocolError, recv_message, send_message


class RemoteServiceError(ServiceError):
    """The server reported a non-retryable failure for this request."""

    def __init__(self, message: str, error_type: str = "") -> None:
        super().__init__(message)
        self.error_type = error_type


class ClientResult:
    """One served request: the bytes plus the server's timing view."""

    __slots__ = ("output", "qos", "modelled_s", "queue_wait_s",
                 "batch_size", "attempts", "traceparent")

    def __init__(self, output: bytes, header: dict, attempts: int = 1,
                 traceparent: str = "") -> None:
        self.output = output
        self.qos = header.get("qos", "")
        self.modelled_s = float(header.get("modelled_s", 0.0))
        self.queue_wait_s = float(header.get("queue_wait_s", 0.0))
        self.batch_size = int(header.get("batch_size", 1))
        self.attempts = attempts
        #: The trace context this request was sent under; join it with
        #: the server's ``/traces/recent`` trees by its 32-hex trace id.
        self.traceparent = traceparent


class ServiceClient:
    """Blocking client over one connection to a compression server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout_s: float = 60.0) -> None:
        self.sock = socket.create_connection((host, port),
                                             timeout=timeout_s)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- raw exchange --------------------------------------------------------

    def call(self, header: dict, payload: bytes = b"") -> tuple[dict, bytes]:
        """One request/response round trip; raises on a dead socket."""
        send_message(self.sock, header, payload)
        message = recv_message(self.sock)
        if message is None:
            raise ProtocolError("server closed the connection")
        return message

    # -- typed surface -------------------------------------------------------

    def ping(self) -> bool:
        header, _ = self.call({"op": "ping"})
        return header.get("status") == "ok"

    def stats(self) -> dict:
        header, _ = self.call({"op": "stats"})
        return header.get("stats", {})

    def drain(self) -> bool:
        header, _ = self.call({"op": "drain"})
        return header.get("status") == "ok"

    def request(self, op: str, payload: bytes, *, qos: str | None = None,
                tenant: str = "", fmt: str | None = None,
                strategy: str = "auto", deadline_s: float | None = None,
                retries: int = 0) -> ClientResult:
        """Submit one job; optionally retry shed requests.

        ``retries`` bounds how many times an overload rejection is
        retried, sleeping the server's ``retry_after_s`` hint between
        attempts.  The final rejection (or any non-retryable error)
        raises.

        Every request originates a wire trace context, sent as a
        ``traceparent`` header field; retries reuse it (one logical
        request, one trace).  With client-side tracing enabled the
        round trip is additionally covered by a local
        ``client.request`` span stamped with that context.
        """
        ctx = TraceContext.new()
        header = {"op": op, "strategy": strategy,
                  "traceparent": ctx.to_traceparent()}
        if qos is not None:
            header["qos"] = qos
        if tenant:
            header["tenant"] = tenant
        if fmt is not None:
            header["fmt"] = fmt
        if deadline_s is not None:
            header["deadline_s"] = deadline_s
        attempts = 0
        with _TRACE.span("client.request", ctx=ctx, op=op,
                         nbytes=len(payload)) as span:
            while True:
                attempts += 1
                response, body = self.call(header, payload)
                status = response.get("status")
                if status == "ok":
                    span.set(status="ok", attempts=attempts,
                             out_bytes=len(body))
                    return ClientResult(body, response, attempts=attempts,
                                        traceparent=ctx.to_traceparent())
                if status == "rejected":
                    if attempts <= retries:
                        span.event("client.retry", attempt=attempts)
                        time.sleep(max(0.0, float(
                            response.get("retry_after_s", 0.0))))
                        continue
                    span.set(status="rejected", attempts=attempts)
                    raise ServiceOverloaded(
                        response.get("error", "request shed"),
                        retry_after_s=float(
                            response.get("retry_after_s", 0.0)),
                        qos=response.get("qos"))
                error_type = response.get("error_type", "")
                message = response.get("error", "request failed")
                span.set(status="error", error=error_type or "unknown")
                if response.get("retryable"):
                    raise ServiceOverloaded(message)
                if error_type in ("DeadlineExceeded", "ChipUnavailable",
                                  "JobError"):
                    raise AcceleratorError(message)
                raise RemoteServiceError(message, error_type=error_type)

    def compress(self, payload: bytes, **kwargs) -> ClientResult:
        return self.request("compress", payload, **kwargs)

    def decompress(self, payload: bytes, **kwargs) -> ClientResult:
        return self.request("decompress", payload, **kwargs)
