"""Length-prefixed wire protocol for the compression job server.

One request or response is two frames on the stream::

    u32 header_len | header JSON (UTF-8) | u32 payload_len | payload

Both length prefixes are big-endian unsigned 32-bit.  The header is a
flat JSON object; the payload is the raw bytes being compressed /
decompressed (or the result bytes on the way back).  Keeping metadata
in JSON and bulk data out of it means no base64 blow-up and no parser
in the hot path — the payload is spliced straight through.

Request header fields: ``op`` ("compress" / "decompress" / "ping" /
"stats" / "drain"), plus optional ``qos``, ``tenant``, ``fmt``,
``strategy``, ``deadline_s``.

Response header fields: ``status`` ("ok" / "rejected" / "error"),
plus result metadata (``modelled_s``, ``queue_wait_s``, ``batch_size``)
on success or ``error`` / ``retryable`` / ``retry_after_s`` on failure.
"""

from __future__ import annotations

import json
import socket
import struct

from ..errors import DeflateError

#: Frame length prefix: big-endian u32.
_LEN = struct.Struct(">I")

#: Refuse absurd frames before allocating for them (64 MiB headers /
#: 1 GiB payloads are protocol corruption, not workload).
MAX_HEADER_BYTES = 1 << 20
MAX_PAYLOAD_BYTES = 1 << 30


class ProtocolError(DeflateError):
    """A malformed or oversized frame on the service socket."""


def _recv_exact(sock: socket.socket, nbytes: int) -> bytes | None:
    """Read exactly ``nbytes``; None on clean EOF at a frame boundary."""
    chunks: list[bytes] = []
    remaining = nbytes
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == nbytes and not chunks:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({remaining} of "
                f"{nbytes} bytes missing)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(sock: socket.socket, header: dict,
                 payload: bytes = b"") -> None:
    """Write one header+payload message onto the socket."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    sock.sendall(_LEN.pack(len(header_bytes)) + header_bytes
                 + _LEN.pack(len(payload)))
    if payload:
        sock.sendall(payload)


def recv_message(sock: socket.socket) -> tuple[dict, bytes] | None:
    """Read one message; None when the peer closed between messages."""
    prefix = _recv_exact(sock, _LEN.size)
    if prefix is None:
        return None
    (header_len,) = _LEN.unpack(prefix)
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(f"header length {header_len} exceeds "
                            f"{MAX_HEADER_BYTES}")
    header_bytes = _recv_exact(sock, header_len)
    if header_bytes is None:
        raise ProtocolError("connection closed before header")
    try:
        header = json.loads(header_bytes)
    except ValueError as exc:
        raise ProtocolError(f"undecodable header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError(f"header must be a JSON object, "
                            f"got {type(header).__name__}")
    prefix = _recv_exact(sock, _LEN.size)
    if prefix is None:
        raise ProtocolError("connection closed before payload length")
    (payload_len,) = _LEN.unpack(prefix)
    if payload_len > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"payload length {payload_len} exceeds "
                            f"{MAX_PAYLOAD_BYTES}")
    payload = b""
    if payload_len:
        payload = _recv_exact(sock, payload_len)
        if payload is None:
            raise ProtocolError("connection closed before payload")
    return header, payload
