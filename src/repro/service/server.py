"""TCP front end for :class:`~repro.service.core.CompressionService`.

A :class:`ThreadingTCPServer` speaking the length-prefixed protocol of
:mod:`repro.service.protocol`.  Each connection gets a handler thread
that parses requests, submits them to the shared service (admission
control, QoS, batching all happen there), and writes the response —
so the socket layer adds connection handling and nothing else; every
policy decision lives in the in-process service and is equally
exercised by in-process callers and remote clients.

Overload and failure map onto the wire as structured responses, never
dropped connections: a shed request returns ``status: rejected`` with
``retryable: true`` and the server's ``retry_after_s`` hint.
"""

from __future__ import annotations

import socketserver
import threading

from ..errors import ReproError, ServiceOverloaded
from .core import CompressionService
from .protocol import ProtocolError, recv_message, send_message

#: Ops a connection may invoke; anything else is a protocol error.
_OPS = ("compress", "decompress", "ping", "stats", "drain")


class _Handler(socketserver.BaseRequestHandler):
    """One connection: loop reading requests until the peer hangs up."""

    def handle(self) -> None:
        service: CompressionService = self.server.service
        while True:
            try:
                message = recv_message(self.request)
            except (ProtocolError, OSError):
                return
            if message is None:
                return
            header, payload = message
            try:
                response, body = self._serve(service, header, payload)
            except OSError:
                return
            try:
                send_message(self.request, response, body)
            except OSError:
                return

    def _serve(self, service: CompressionService, header: dict,
               payload: bytes) -> tuple[dict, bytes]:
        op = header.get("op")
        if op == "ping":
            return {"status": "ok", "op": "ping"}, b""
        if op == "stats":
            stats = service.stats()
            return {"status": "ok", "op": "stats",
                    "stats": {
                        "accepted": stats.accepted,
                        "rejected": stats.rejected,
                        "expired": stats.expired,
                        "completed": stats.completed,
                        "failed": stats.failed,
                        "queued": stats.queued,
                        "batches": stats.batches,
                        "bytes_in": stats.bytes_in,
                        "bytes_out": stats.bytes_out,
                        "state": stats.state,
                        "per_class": stats.per_class,
                    }}, b""
        if op == "drain":
            # Drain in the background so this response still goes out.
            threading.Thread(target=service.drain, daemon=True).start()
            return {"status": "ok", "op": "drain"}, b""
        if op not in ("compress", "decompress"):
            return {"status": "error", "retryable": False,
                    "error": f"unknown op {op!r}; have {_OPS}"}, b""
        try:
            ticket = service.submit(
                op, payload,
                fmt=header.get("fmt"),
                strategy=header.get("strategy", "auto"),
                qos=header.get("qos"),
                tenant=header.get("tenant", ""),
                deadline_s=header.get("deadline_s"),
                traceparent=header.get("traceparent"))
            result = ticket.wait(self.server.request_timeout_s)
        except ServiceOverloaded as exc:
            return {"status": "rejected", "retryable": True,
                    "error": str(exc), "qos": exc.qos,
                    "retry_after_s": exc.retry_after_s}, b""
        except (ReproError, TimeoutError) as exc:
            retryable = bool(getattr(exc, "retryable", False))
            return {"status": "error", "retryable": retryable,
                    "error": str(exc),
                    "error_type": type(exc).__name__}, b""
        return {"status": "ok", "op": op, "qos": result.qos,
                "modelled_s": result.modelled_seconds,
                "queue_wait_s": result.queue_wait_s,
                "batch_size": result.batch_size}, result.output


class CompressionServer(socketserver.ThreadingTCPServer):
    """The TCP server; one shared service behind all connections."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int],
                 service: CompressionService,
                 request_timeout_s: float = 60.0) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.request_timeout_s = request_timeout_s

    @property
    def port(self) -> int:
        return self.server_address[1]


def serve(service: CompressionService, host: str = "127.0.0.1",
          port: int = 0) -> CompressionServer:
    """Bind and start serving on a background thread.

    ``port=0`` picks an ephemeral port (read it back off ``.port``).
    The caller owns shutdown: ``server.shutdown()`` stops the accept
    loop, then drain/close the service.
    """
    server = CompressionServer((host, port), service)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-service-accept", daemon=True)
    thread.start()
    return server
