"""TCP front end for :class:`~repro.service.core.CompressionService`.

A :class:`ThreadingTCPServer` speaking the length-prefixed protocol of
:mod:`repro.service.protocol`.  Each connection gets a handler thread
that parses requests, submits them to the shared service (admission
control, QoS, batching all happen there), and writes the response —
so the socket layer adds connection handling and nothing else; every
policy decision lives in the in-process service and is equally
exercised by in-process callers and remote clients.

Overload and failure map onto the wire as structured responses, never
dropped connections: a shed request returns ``status: rejected`` with
``retryable: true`` and the server's ``retry_after_s`` hint.  The
connection layer adds three wire-robustness guarantees on top:

* **Idle read deadlines** — a connection that goes silent (or
  slow-loris dribbles) mid-frame is closed after ``idle_timeout_s``,
  so abandoned sockets cannot pin handler threads forever.
* **Typed bad-frame rejection** — a structurally broken request
  (garbage or oversized header, oversized payload declaration) is
  answered with ``error_type: "bad_frame"`` before the connection
  closes; the dispatcher never sees the frame and stays healthy.
* **Exactly-once resends** — requests carrying a ``request_id`` are
  deduplicated through a bounded per-tenant
  :class:`~repro.service.idempotency.IdempotencyCache`: a resend after
  a broken connection replays the cached result (``deduped: true``)
  instead of executing the job twice, and a resend racing the first
  execution waits for it rather than double-running it.
"""

from __future__ import annotations

import socketserver
import threading

from ..errors import ReproError, ServiceOverloaded
from ..obs.flight import FLIGHT as _FLIGHT
from ..obs.metrics import REGISTRY as _REGISTRY
from .core import CompressionService
from .idempotency import IdempotencyCache
from .protocol import ProtocolError, recv_message, send_message

#: Ops a connection may invoke; anything else is a protocol error.
_OPS = ("compress", "decompress", "ping", "stats", "drain")

#: Close a connection that sends nothing readable for this long.
DEFAULT_IDLE_TIMEOUT_S = 120.0

#: Bound on begin()/wait loops for one keyed request: an owner always
#: commits or aborts, so more spins than this means something is wrong.
_MAX_DEDUP_WAITS = 16


def _net_counter(name: str, help_text: str, **labels) -> None:
    if _REGISTRY.enabled:
        _REGISTRY.counter(name, help_text).inc(1, **labels)


class _Handler(socketserver.BaseRequestHandler):
    """One connection: loop reading requests until the peer hangs up."""

    def handle(self) -> None:
        service: CompressionService = self.server.service
        self.request.settimeout(self.server.idle_timeout_s)
        _net_counter("repro_service_net_connections_total",
                     "connections accepted by the service socket")
        while True:
            try:
                message = recv_message(self.request)
            except TimeoutError:
                _net_counter("repro_service_net_idle_timeouts_total",
                             "connections closed at the idle deadline")
                _FLIGHT.record("net.idle_timeout",
                               timeout_s=self.server.idle_timeout_s)
                return
            except ProtocolError as exc:
                self._reject_bad_frame(exc)
                return
            except OSError:
                return
            if message is None:
                return
            header, payload = message
            try:
                response, body = self._serve(service, header, payload)
            except ProtocolError:
                # e.g. a keyed request that never resolved: nothing
                # trustworthy to answer with — drop the connection.
                return
            except OSError:
                return
            try:
                send_message(self.request, response, body)
            except OSError:
                return

    def _reject_bad_frame(self, exc: ProtocolError) -> None:
        """Answer a structurally broken frame with a typed error.

        Only ``answerable`` failures (the reader's stream position is
        still coherent) get a response; a peer that vanished mid-frame
        gets nothing because there is nothing to write to.  Either way
        the connection closes — resynchronising a stream after garbage
        would be guessing.
        """
        _net_counter("repro_service_net_bad_frames_total",
                     "structurally broken frames received",
                     kind=exc.kind)
        _FLIGHT.record("net.bad_frame", kind=exc.kind, error=str(exc))
        if not exc.answerable:
            return
        try:
            send_message(self.request, {
                "status": "error", "retryable": False,
                "error_type": "bad_frame", "kind": exc.kind,
                "error": str(exc)})
        except OSError:
            pass

    def _serve(self, service: CompressionService, header: dict,
               payload: bytes) -> tuple[dict, bytes]:
        op = header.get("op")
        if op == "ping":
            return {"status": "ok", "op": "ping"}, b""
        if op == "stats":
            stats = service.stats()
            doc = {"accepted": stats.accepted,
                   "rejected": stats.rejected,
                   "expired": stats.expired,
                   "completed": stats.completed,
                   "failed": stats.failed,
                   "queued": stats.queued,
                   "batches": stats.batches,
                   "bytes_in": stats.bytes_in,
                   "bytes_out": stats.bytes_out,
                   "state": stats.state,
                   "per_class": stats.per_class}
            if self.server.dedup is not None:
                doc["dedup"] = self.server.dedup.stats()
            return {"status": "ok", "op": "stats", "stats": doc}, b""
        if op == "drain":
            # Drain in the background so this response still goes out.
            threading.Thread(target=service.drain, daemon=True).start()
            return {"status": "ok", "op": "drain"}, b""
        if op not in ("compress", "decompress"):
            return {"status": "error", "retryable": False,
                    "error": f"unknown op {op!r}; have {_OPS}"}, b""
        request_id = header.get("request_id")
        if not isinstance(request_id, str) or not request_id:
            request_id = None
        if request_id is None or self.server.dedup is None:
            return self._execute(service, op, header, payload, None)
        return self._serve_idempotent(service, op, header, payload,
                                      request_id)

    def _serve_idempotent(self, service: CompressionService, op: str,
                          header: dict, payload: bytes,
                          request_id: str) -> tuple[dict, bytes]:
        """At-most-one execution per ``(tenant, request_id)``."""
        dedup: IdempotencyCache = self.server.dedup
        tenant = header.get("tenant", "") or ""
        for _ in range(_MAX_DEDUP_WAITS):
            state, token = dedup.begin(tenant, request_id)
            if state == "hit":
                cached_header, body = token
                response = dict(cached_header)
                response["deduped"] = True
                _net_counter("repro_service_net_dedup_hits_total",
                             "resent requests served from the result "
                             "cache", op=op)
                _FLIGHT.record("net.dedup_hit", request_id=request_id,
                               op=op, tenant=tenant)
                return response, body
            if state == "wait":
                # Another connection is executing this very request
                # (the client reconnected faster than we finished).
                token.event.wait(self.server.request_timeout_s)
                continue
            committed = False
            try:
                response, body = self._execute(service, op, header,
                                               payload, request_id)
                if response.get("status") == "ok":
                    dedup.commit(token, response, body)
                    committed = True
                return response, body
            finally:
                if not committed:
                    dedup.abort(token)
        raise ProtocolError(
            f"request {request_id!r} still unresolved after "
            f"{_MAX_DEDUP_WAITS} dedup waits")

    def _execute(self, service: CompressionService, op: str, header: dict,
                 payload: bytes,
                 request_id: str | None) -> tuple[dict, bytes]:
        echo = {} if request_id is None else {"request_id": request_id}
        try:
            ticket = service.submit(
                op, payload,
                fmt=header.get("fmt"),
                strategy=header.get("strategy", "auto"),
                qos=header.get("qos"),
                tenant=header.get("tenant", ""),
                deadline_s=header.get("deadline_s"),
                traceparent=header.get("traceparent"),
                client_request_id=request_id)
            result = ticket.wait(self.server.request_timeout_s)
        except ServiceOverloaded as exc:
            return {"status": "rejected", "retryable": True,
                    "error": str(exc), "qos": exc.qos,
                    "retry_after_s": exc.retry_after_s, **echo}, b""
        except (ReproError, TimeoutError) as exc:
            retryable = bool(getattr(exc, "retryable", False))
            return {"status": "error", "retryable": retryable,
                    "error": str(exc),
                    "error_type": type(exc).__name__, **echo}, b""
        return {"status": "ok", "op": op, "qos": result.qos,
                "modelled_s": result.modelled_seconds,
                "queue_wait_s": result.queue_wait_s,
                "batch_size": result.batch_size,
                **echo}, result.output


class CompressionServer(socketserver.ThreadingTCPServer):
    """The TCP server; one shared service behind all connections."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int],
                 service: CompressionService,
                 request_timeout_s: float = 60.0, *,
                 idle_timeout_s: float = DEFAULT_IDLE_TIMEOUT_S,
                 dedup: IdempotencyCache | None = None,
                 socket_wrapper=None) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.request_timeout_s = request_timeout_s
        self.idle_timeout_s = idle_timeout_s
        #: Result cache behind request_id idempotency; always on unless
        #: explicitly disabled with ``dedup=None`` via :func:`serve`.
        self.dedup = dedup if dedup is not None else IdempotencyCache()
        #: Test/chaos hook: wrap every accepted connection's socket
        #: (e.g. :func:`repro.resilience.netfaults.fault_factory`).
        self.socket_wrapper = socket_wrapper

    def get_request(self):
        sock, addr = super().get_request()
        if self.socket_wrapper is not None:
            sock = self.socket_wrapper(sock)
        return sock, addr

    @property
    def port(self) -> int:
        return self.server_address[1]


def serve(service: CompressionService, host: str = "127.0.0.1",
          port: int = 0, **server_kwargs) -> CompressionServer:
    """Bind and start serving on a background thread.

    ``port=0`` picks an ephemeral port (read it back off ``.port``).
    Keyword arguments (``idle_timeout_s``, ``dedup``,
    ``socket_wrapper``…) pass through to :class:`CompressionServer`.
    The caller owns shutdown: ``server.shutdown()`` stops the accept
    loop, then drain/close the service.
    """
    server = CompressionServer((host, port), service, **server_kwargs)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-service-accept", daemon=True)
    thread.start()
    return server
