"""Compression-as-a-service: a multi-client job server over the pool.

The paper's accelerator is a *shared* resource — one NX/zEDC per chip
serving every tenant on the machine.  This package is the software
discipline that sharing requires:

* :mod:`repro.service.core` — :class:`CompressionService`, the
  in-process server: bounded per-QoS-class queues with explicit
  reject-with-retry-after backpressure, a single dispatcher coalescing
  requests into async batches (sized by the E16 saturation depth), and
  graceful drain;
* :mod:`repro.service.qos` — QoS classes mapped onto the two VAS
  receive FIFOs with the E14 starvation-bounded arbitration;
* :mod:`repro.service.protocol` / :mod:`~repro.service.server` /
  :mod:`~repro.service.client` — the length-prefixed TCP surface
  (``repro serve`` / ``repro submit``) over the same service object.

Quick start (in-process)::

    from repro.service import CompressionService

    with CompressionService(chips=2) as svc:
        result = svc.compress(b"payload" * 1000, qos="interactive")

Over a socket::

    from repro.service import CompressionService, ServiceClient, serve

    svc = CompressionService(chips=2)
    server = serve(svc, port=0)
    with ServiceClient(port=server.port) as client:
        out = client.compress(b"payload" * 1000, qos="bulk").output
"""

from .client import (ClientResult, RemoteServiceError, RetryBudget,
                     ServiceClient)
from .core import (CompressionService, ServiceResult, ServiceStats,
                   ServiceTicket)
from .idempotency import IdempotencyCache
from .protocol import ProtocolError, recv_message, send_message
from .qos import (DEFAULT_CLASSES, DEFAULT_STARVATION_BOUND, FIFOS,
                  QosClass, QosPolicy)
from .server import CompressionServer, serve

__all__ = [
    "CompressionService", "ServiceResult", "ServiceStats", "ServiceTicket",
    "QosClass", "QosPolicy", "DEFAULT_CLASSES", "DEFAULT_STARVATION_BOUND",
    "FIFOS",
    "CompressionServer", "serve", "IdempotencyCache",
    "ServiceClient", "ClientResult", "RemoteServiceError", "RetryBudget",
    "ProtocolError", "send_message", "recv_message",
]
