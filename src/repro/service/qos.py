"""QoS classes: per-tenant service levels mapped onto the VAS FIFOs.

The accelerator front end has exactly two receive FIFOs (high priority
and normal — the E14 arbitration), so the service maps its QoS classes
onto that hardware reality: ``interactive`` rides the high FIFO, while
``batch`` and ``bulk`` share the normal FIFO and differ only in queue
bounds and coalescing depth.  Starvation is bounded the same way the
VAS arbitrates: after :data:`DEFAULT_STARVATION_BOUND` consecutive
high-FIFO picks with normal work waiting, one normal batch is served
(see :class:`repro.perf.priority.PriorityQueueSim`).

Every class carries its *admission bound* — the queue limits behind the
reject-with-retry-after backpressure — and its *coalescing depth*, the
number of requests folded into one async batch submission (E16: a few
in-flight jobs saturate an engine; deeper batches only add queueing and
head-of-line blocking for the high FIFO).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

#: The two hardware receive FIFOs behind the VAS front end.
FIFOS = ("high", "normal")

#: Consecutive high-FIFO dispatches before one normal batch is forced
#: through (mirrors the modelled VAS anti-starvation arbitration).
DEFAULT_STARVATION_BOUND = 8


@dataclass(frozen=True)
class QosClass:
    """One service level and its queue/batch envelope.

    ``rank`` orders classes within a FIFO (lower dispatches first);
    ``queue_limit``/``queue_bytes_limit`` bound admission;
    ``max_batch`` caps how many of this class's requests coalesce into
    one async batch submission.

    Dictionary-service knobs: ``cache_results`` opts this class's
    compress traffic into the content-addressed result cache (when the
    service mounts one), and ``dht_strategy`` pins a Huffman strategy
    for requests that arrive with ``strategy="auto"`` — e.g. an
    interactive class pinning ``"canned"`` to skip the DHT-generation
    bubble on its small buffers.
    """

    name: str
    fifo: str = "normal"
    rank: int = 1
    queue_limit: int = 256
    queue_bytes_limit: int = 64 << 20
    max_batch: int = 4
    default_deadline_s: float | None = None
    cache_results: bool = True
    dht_strategy: str | None = None

    def __post_init__(self) -> None:
        if self.fifo not in FIFOS:
            raise ConfigError(f"QoS class {self.name!r}: unknown FIFO "
                              f"{self.fifo!r}; have {FIFOS}")
        if self.queue_limit < 1 or self.max_batch < 1:
            raise ConfigError(f"QoS class {self.name!r}: queue_limit and "
                              "max_batch must be >= 1")
        if self.dht_strategy is not None and self.dht_strategy not in (
                "fixed", "dynamic", "canned", "auto"):
            raise ConfigError(
                f"QoS class {self.name!r}: unknown dht_strategy "
                f"{self.dht_strategy!r}")


#: The stock three-level policy: RPC-sized latency-sensitive traffic on
#: the high FIFO, throughput traffic on the normal FIFO, backup-window
#: bulk behind it with the deepest queue and batches.
DEFAULT_CLASSES = (
    QosClass("interactive", fifo="high", rank=0, queue_limit=64,
             queue_bytes_limit=8 << 20, max_batch=2),
    QosClass("batch", fifo="normal", rank=1, queue_limit=256,
             queue_bytes_limit=64 << 20, max_batch=4),
    QosClass("bulk", fifo="normal", rank=2, queue_limit=512,
             queue_bytes_limit=256 << 20, max_batch=8),
)


class QosPolicy:
    """Dispatch-order policy over a set of QoS classes.

    ``pick`` chooses the next class to serve given which classes have
    queued work, preferring the high FIFO but bounding starvation: a
    run of ``starvation_bound`` consecutive high picks with normal work
    waiting forces one normal dispatch, exactly like the modelled VAS
    arbitration in E14.
    """

    def __init__(self, classes: tuple[QosClass, ...] = DEFAULT_CLASSES,
                 starvation_bound: int = DEFAULT_STARVATION_BOUND) -> None:
        if not classes:
            raise ConfigError("need at least one QoS class")
        names = [c.name for c in classes]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate QoS class names in {names}")
        self.classes = tuple(classes)
        self.by_name = {c.name: c for c in classes}
        self.starvation_bound = starvation_bound
        self._consecutive_high = 0

    @property
    def default_class(self) -> QosClass:
        return self.classes[0]

    def resolve(self, name: str | None) -> QosClass:
        if name is None:
            return self.default_class
        try:
            return self.by_name[name]
        except KeyError:
            raise ConfigError(f"unknown QoS class {name!r}; "
                              f"have {sorted(self.by_name)}") from None

    def pick(self, waiting: dict[str, int]) -> QosClass | None:
        """Next class to dispatch given per-class queued counts."""
        ready = [self.by_name[name] for name, count in waiting.items()
                 if count > 0 and name in self.by_name]
        if not ready:
            return None
        high = [c for c in ready if c.fifo == "high"]
        normal = [c for c in ready if c.fifo == "normal"]
        take_normal = normal and (
            not high or self._consecutive_high >= self.starvation_bound)
        pool = normal if take_normal else (high or normal)
        if pool is normal or not high:
            self._consecutive_high = 0
        else:
            self._consecutive_high += 1
        return min(pool, key=lambda c: c.rank)
