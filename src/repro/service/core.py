"""CompressionService: the in-process multi-client job server.

This is the traffic-facing layer the pool lacks.  Client threads call
:meth:`CompressionService.submit` (or the blocking ``compress`` /
``decompress`` conveniences); requests land in bounded per-QoS-class
queues and a single dispatcher thread drives them through the shared
:class:`~repro.backend.pool.AcceleratorPool`:

* **Admission control** — each class's queue has request and byte
  bounds.  A full queue sheds the request immediately with
  :class:`~repro.errors.ServiceOverloaded` carrying a ``retry_after_s``
  estimate, so overload produces cheap, explicit rejections instead of
  unbounded buffering (the server never queues more than the configured
  envelope, no matter the offered load).
* **QoS scheduling** — dispatch order follows the VAS two-FIFO model
  via :class:`~repro.service.qos.QosPolicy`: the high FIFO preempts at
  batch granularity, the starvation bound keeps bulk moving.
* **Batch coalescing** — up to ``max_batch`` requests of one class are
  folded into one async batch submission (``submit``/``wait_all``),
  sized by the E16 saturation depth via
  :meth:`~repro.backend.pool.AcceleratorPool.suggested_batch_depth`.
* **Resilience** — breaker-aware routing, software rescue, and
  deadlines all come from the pool; a batch whose engine wedges is
  cancelled (:meth:`~repro.backend.pool.AcceleratorPool.cancel_in_flight`)
  and the abandoned jobs resolve through software rescue, so accepted
  requests still return correct bytes.  Requests that out-wait their
  deadline *in the queue* are expired without being executed.
* **Telemetry** — every request owns a detached ``service.request``
  span (opened at admission on the caller's thread, closed at
  fulfilment on the dispatcher's), adopted around the pool calls so
  ``pool.route``/``backend.submit`` nest under it; outcomes publish
  ``repro_service_*`` metrics.

Deadline semantics: a request's ``deadline_s`` bounds both its
wall-clock *queue wait* (expired requests are shed) and, once
dispatched, the *modelled* time the backend may spend on it (the pool's
per-job deadline contract).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from ..backend.pool import AcceleratorPool, PoolJob
from ..dictsvc.cache import ResultCache, result_key
from ..errors import (AcceleratorError, ChipUnavailable, ConfigError,
                      DeadlineExceeded, ReproError, ServiceClosed,
                      ServiceOverloaded)
from ..nx.params import POWER9, MachineParams
from ..obs.context import TraceContext
from ..obs.flight import FLIGHT as _FLIGHT
from ..obs.metrics import REGISTRY as _REGISTRY
from ..obs.metrics import record_service_request
from ..obs.trace import NULL_SPAN, Span, TRACE as _TRACE
from .qos import DEFAULT_CLASSES, DEFAULT_STARVATION_BOUND, QosPolicy

_OPS = ("compress", "decompress")

#: Floor/ceiling on the retry-after hint handed to shed clients.
_RETRY_AFTER_MIN_S = 0.001
_RETRY_AFTER_MAX_S = 5.0

#: Seed for the per-request wall service-time EWMA (retry-after hints
#: before the first completion lands).
_EWMA_SEED_S = 0.002
_EWMA_WEIGHT = 0.2


@dataclass
class ServiceResult:
    """One fulfilled request: the bytes plus where the time went."""

    output: bytes
    op: str
    qos: str
    modelled_seconds: float
    queue_wait_s: float
    wall_seconds: float
    batch_size: int = 1


class ServiceTicket:
    """Handle for one accepted request; fulfilled by the dispatcher."""

    __slots__ = ("request_id", "qos", "op", "tenant", "_event", "_result",
                 "_error")

    def __init__(self, request_id: int, qos: str, op: str,
                 tenant: str) -> None:
        self.request_id = request_id
        self.qos = qos
        self.op = op
        self.tenant = tenant
        self._event = threading.Event()
        self._result: ServiceResult | None = None
        self._error: Exception | None = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout_s: float | None = None) -> ServiceResult:
        """Block until fulfilled; raises the request's failure if any."""
        if not self._event.wait(timeout_s):
            raise TimeoutError(
                f"request {self.request_id} not fulfilled "
                f"within {timeout_s}s")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    # -- dispatcher side -----------------------------------------------------

    def _fulfil(self, result: ServiceResult) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: Exception) -> None:
        self._error = error
        self._event.set()


@dataclass
class _Queued:
    """One admitted request waiting for dispatch."""

    ticket: ServiceTicket
    op: str
    payload: bytes
    fmt: str
    strategy: str
    deadline_s: float | None
    enqueued_at: float
    span: object = NULL_SPAN
    #: Set when this request leads a result-cache singleflight: its
    #: fulfilment commits the blob and serves any parked followers.
    cache_key: tuple[str, str] | None = None


@dataclass(frozen=True)
class ServiceStats:
    """One consistent snapshot of service activity."""

    accepted: int = 0
    rejected: int = 0
    expired: int = 0
    completed: int = 0
    failed: int = 0
    queued: int = 0
    queued_bytes: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    batches: int = 0
    modelled_seconds: float = 0.0
    state: str = "running"
    per_class: dict = field(default_factory=dict)
    per_tenant: dict = field(default_factory=dict)
    #: Result-cache counters when a cache is mounted, else None.
    cache: dict | None = None

    @property
    def in_service(self) -> int:
        """Accepted but not yet resolved (queued + being executed)."""
        return self.accepted - self.completed - self.failed - self.expired


class CompressionService:
    """Multi-client compression-as-a-service over one accelerator pool.

    Thread-safe: any number of threads may ``submit``; one internal
    dispatcher owns the pool's async surface.  Use as a context manager
    for a guaranteed drain-and-close.
    """

    def __init__(self, pool: AcceleratorPool | None = None, *,
                 machine: MachineParams | str = POWER9,
                 chips: int = 1, backend: str | None = None,
                 policy: str = "round_robin",
                 qos: QosPolicy | None = None,
                 starvation_bound: int = DEFAULT_STARVATION_BOUND,
                 batching: bool = True,
                 verify: bool = False,
                 exec_workers: int | None = None,
                 result_cache: ResultCache | None = None,
                 cache_mb: float | None = None,
                 **pool_kwargs) -> None:
        if pool is not None:
            self.pool = pool
            self._own_pool = False
        else:
            # exec_workers enables the process-based execution layer on
            # the service's pool: batch submits on synchronous backends
            # run in persistent worker processes instead of on this
            # dispatcher thread, so the dispatcher stays an I/O loop.
            self.pool = AcceleratorPool(machine=machine, chips=chips,
                                        policy=policy, backend=backend,
                                        verify=verify,
                                        exec_workers=exec_workers,
                                        **pool_kwargs)
            self._own_pool = True
        self.qos = qos or QosPolicy(DEFAULT_CLASSES,
                                    starvation_bound=starvation_bound)
        self.batching = batching
        # The content-addressed result cache (dictionary service).
        # ``cache_mb`` is the serve-time knob; an explicit cache wins.
        if result_cache is None and cache_mb is not None:
            result_cache = ResultCache(
                max_bytes=max(1, int(cache_mb * (1 << 20))))
        self.cache = result_cache
        #: Dictionary-service epoch folded into every cache key, so a
        #: trained-table push invalidates cached results without flush.
        self.cache_epoch = 0
        self._cache_lock = threading.Lock()
        # (tenant, key) -> tickets parked on that key's leader.
        self._cache_followers: dict[tuple[str, str],
                                    list[ServiceTicket]] = {}
        self._cond = threading.Condition()
        self._queues: dict[str, deque[_Queued]] = {
            c.name: deque() for c in self.qos.classes}
        self._queued_bytes: dict[str, int] = {
            c.name: 0 for c in self.qos.classes}
        self._state = "running"
        self._ids = itertools.count(1)
        self._ewma_job_s = _EWMA_SEED_S
        # Counters (all mutated under self._cond).
        self._accepted = 0
        self._rejected = 0
        self._expired = 0
        self._completed = 0
        self._failed = 0
        self._batches = 0
        self._bytes_in = 0
        self._bytes_out = 0
        self._modelled_s = 0.0
        self._per_class: dict[str, dict[str, int]] = {
            c.name: {"accepted": 0, "rejected": 0, "completed": 0,
                     "expired": 0, "failed": 0}
            for c in self.qos.classes}
        self._per_tenant: dict[str, dict[str, int]] = {}
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatcher",
            daemon=True)
        self._dispatcher.start()

    # -- client surface ------------------------------------------------------

    def submit(self, op: str, payload: bytes, *, fmt: str | None = None,
               strategy: str = "auto", qos: str | None = None,
               tenant: str = "", deadline_s: float | None = None,
               traceparent: str | None = None,
               client_request_id: str | None = None) -> ServiceTicket:
        """Admit one request; returns a ticket to ``wait`` on.

        Raises :class:`ServiceOverloaded` (retryable, with a
        ``retry_after_s`` hint) when the class's queue is full, and
        :class:`ServiceClosed` once draining has begun.

        ``traceparent`` is the caller's wire trace context (the W3C-style
        header field the socket server forwards verbatim); the request's
        detached span joins that trace, so the client's span and every
        span this request produces — dispatcher, pool, exec workers —
        export as one tree.  Absent or malformed, the request roots a
        fresh wire trace.

        ``client_request_id`` is the wire idempotency key (when the
        request arrived over the socket with one): it is stamped on the
        request's span and flight records so a retried logical request
        can be tied back across reconnects, but the service itself
        executes whatever it admits — deduplication of resends happens
        at the socket layer, before admission.
        """
        if op not in _OPS:
            raise ConfigError(f"unknown op {op!r}; have {_OPS}")
        qcls = self.qos.resolve(qos)
        fmt = fmt or "gzip"
        deadline = (deadline_s if deadline_s is not None
                    else qcls.default_deadline_s)
        if strategy == "auto" and qcls.dht_strategy is not None:
            # The class pins a Huffman strategy for auto traffic (e.g.
            # interactive pinning "canned" to skip the DHT bubble).
            strategy = qcls.dht_strategy
        cache_key = None
        if (self.cache is not None and op == "compress"
                and qcls.cache_results):
            outcome = self._cache_begin(op, qcls, tenant, payload, fmt,
                                        strategy)
            if isinstance(outcome, ServiceTicket):
                return outcome  # served from cache or parked on a leader
            cache_key = outcome
        try:
            return self._admit(op, payload, fmt, strategy, qcls, tenant,
                               deadline, traceparent, client_request_id,
                               cache_key)
        except ReproError as exc:
            if cache_key is not None:
                # The leader was shed before dispatch: release the
                # singleflight claim so a retry (or a parked follower's
                # resend) can re-claim, and fail anyone already parked.
                self._cache_settle_fail_key(cache_key, exc)
            raise

    def _admit(self, op: str, payload: bytes, fmt: str, strategy: str,
               qcls, tenant: str, deadline: float | None,
               traceparent: str | None, client_request_id: str | None,
               cache_key: tuple[str, str] | None) -> ServiceTicket:
        with self._cond:
            if self._state != "running":
                raise ServiceClosed(
                    f"service is {self._state}; not accepting work")
            queue = self._queues[qcls.name]
            if (len(queue) >= qcls.queue_limit
                    or self._queued_bytes[qcls.name] + len(payload)
                    > qcls.queue_bytes_limit):
                retry_after = self._retry_after_locked()
                self._rejected += 1
                self._per_class[qcls.name]["rejected"] += 1
                if _REGISTRY.enabled:
                    record_service_request(
                        op=op, qos=qcls.name, outcome="rejected",
                        tenant=tenant, reason="queue_full")
                    _REGISTRY.window(
                        "repro_service_shed_window_ratio",
                        "shed fraction of recent admissions").observe(
                        1.0, qos=qcls.name)
                _FLIGHT.record("service.reject", op=op, qos=qcls.name,
                               nbytes=len(payload), depth=len(queue))
                raise ServiceOverloaded(
                    f"QoS class {qcls.name!r} queue full "
                    f"({len(queue)} requests); retry in "
                    f"{retry_after * 1e3:.1f} ms",
                    retry_after_s=retry_after, qos=qcls.name)
            ticket = ServiceTicket(next(self._ids), qcls.name, op, tenant)
            span = NULL_SPAN
            if _TRACE.enabled:
                parsed = TraceContext.parse(traceparent)
                ctx = parsed.child() if parsed else TraceContext.new()
                extra: dict[str, object] = {}
                if tenant:
                    extra["tenant"] = tenant
                if client_request_id:
                    # The wire idempotency key: one logical client
                    # request keeps one id across reconnect resends.
                    extra["wire_request_id"] = client_request_id
                span = _TRACE.span_detached(
                    "service.request", ctx=ctx, op=op, qos=qcls.name,
                    nbytes=len(payload), request_id=ticket.request_id,
                    **extra)
            queue.append(_Queued(ticket=ticket, op=op, payload=payload,
                                 fmt=fmt, strategy=strategy,
                                 deadline_s=deadline,
                                 enqueued_at=time.perf_counter(),
                                 span=span, cache_key=cache_key))
            self._queued_bytes[qcls.name] += len(payload)
            self._accepted += 1
            self._per_class[qcls.name]["accepted"] += 1
            if tenant:
                entry = self._per_tenant.setdefault(
                    tenant, {"accepted": 0, "bytes_in": 0})
                entry["accepted"] += 1
                entry["bytes_in"] += len(payload)
            self._publish_depth_locked(qcls.name)
            self._cond.notify_all()
        return ticket

    # -- result-cache integration --------------------------------------------

    def _cache_begin(self, op: str, qcls, tenant: str, payload: bytes,
                     fmt: str, strategy: str):
        """Consult the content-addressed cache before admission.

        Returns a :class:`ServiceTicket` when the request is already
        resolved (hit) or parked on an executing leader (wait), or the
        ``(tenant, key)`` pair this request must lead.
        """
        key = result_key(payload, op=op, fmt=fmt, strategy=strategy,
                         epoch=self.cache_epoch)
        ticket = None
        with self._cache_lock:
            state, value = self.cache.begin(tenant, key)
            if state == "wait":
                # Park inside the same critical section that observed
                # the in-flight claim, so the leader cannot commit and
                # collect followers between our begin and our park.
                ticket = ServiceTicket(next(self._ids), qcls.name, op,
                                       tenant)
                self._cache_followers.setdefault(
                    (tenant, key), []).append(ticket)
        if state == "leader":
            return (tenant, key)
        if state == "hit":
            ticket = ServiceTicket(next(self._ids), qcls.name, op, tenant)
        self._count_cache_admission(op, qcls.name, tenant, len(payload))
        if state == "hit":
            _FLIGHT.record("service.cache_hit", id=ticket.request_id,
                           qos=qcls.name, nbytes=len(payload))
            self._fulfil_from_cache(ticket, op, qcls.name, tenant,
                                    len(payload), value)
        else:
            _FLIGHT.record("service.cache_wait", id=ticket.request_id,
                           qos=qcls.name, nbytes=len(payload))
        return ticket

    def _count_cache_admission(self, op: str, qos: str, tenant: str,
                               nbytes: int) -> None:
        with self._cond:
            self._accepted += 1
            self._per_class[qos]["accepted"] += 1
            if tenant:
                entry = self._per_tenant.setdefault(
                    tenant, {"accepted": 0, "bytes_in": 0})
                entry["accepted"] += 1
                entry["bytes_in"] += nbytes

    def _fulfil_from_cache(self, ticket: ServiceTicket, op: str, qos: str,
                           tenant: str, nbytes_in: int,
                           output: bytes) -> None:
        """Resolve one request with cached bytes (no dispatch at all)."""
        with self._cond:
            self._completed += 1
            self._bytes_in += nbytes_in
            self._bytes_out += len(output)
            self._per_class[qos]["completed"] += 1
        if _REGISTRY.enabled:
            record_service_request(
                op=op, qos=qos, outcome="ok", tenant=tenant,
                nbytes_in=nbytes_in, nbytes_out=len(output),
                modelled_s=0.0, queue_wait_s=0.0)
        ticket._fulfil(ServiceResult(
            output=output, op=op, qos=qos, modelled_seconds=0.0,
            queue_wait_s=0.0, wall_seconds=0.0))

    def _cache_settle_ok(self, req: _Queued, output: bytes) -> None:
        """Leader succeeded: publish the blob and serve parked followers."""
        tenant, key = req.cache_key
        with self._cache_lock:
            self.cache.commit(tenant, key, output)
            followers = self._cache_followers.pop((tenant, key), [])
        for ticket in followers:
            self.cache.resolve_follower()
            self._fulfil_from_cache(ticket, req.op, ticket.qos,
                                    ticket.tenant, len(req.payload),
                                    output)

    def _cache_settle_fail(self, req: _Queued, error: Exception) -> None:
        self._cache_settle_fail_key(req.cache_key, error)

    def _cache_settle_fail_key(self, cache_key: tuple[str, str],
                               error: Exception) -> None:
        """Leader failed: free the key; parked followers share the error.

        The abort means the next request on this key re-claims and
        re-executes — a failed leader never poisons the key.
        """
        tenant, key = cache_key
        with self._cache_lock:
            self.cache.abort(tenant, key)
            followers = self._cache_followers.pop((tenant, key), [])
        for ticket in followers:
            with self._cond:
                self._failed += 1
                self._per_class[ticket.qos]["failed"] += 1
            if _REGISTRY.enabled:
                record_service_request(
                    op=ticket.op, qos=ticket.qos, outcome="failed",
                    tenant=ticket.tenant, reason=type(error).__name__)
            ticket._fail(error)

    def request(self, op: str, payload: bytes, *,
                timeout_s: float | None = 60.0,
                **kwargs) -> ServiceResult:
        """Blocking convenience: submit and wait for fulfilment."""
        return self.submit(op, payload, **kwargs).wait(timeout_s)

    def compress(self, payload: bytes, **kwargs) -> ServiceResult:
        return self.request("compress", payload, **kwargs)

    def decompress(self, payload: bytes, **kwargs) -> ServiceResult:
        return self.request("decompress", payload, **kwargs)

    # -- lifecycle -----------------------------------------------------------

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Stop admitting, serve everything queued, stop the dispatcher.

        Returns True when the backlog fully drained within the timeout.
        """
        with self._cond:
            if self._state == "running":
                self._state = "draining"
            self._cond.notify_all()
        self._dispatcher.join(timeout_s)
        return not self._dispatcher.is_alive()

    def close(self, drain: bool = True, timeout_s: float = 30.0) -> None:
        """Shut down; with ``drain`` queued work is served first,
        otherwise it is failed with :class:`ServiceClosed`."""
        if drain:
            self.drain(timeout_s)
        with self._cond:
            self._state = "stopped"
            abandoned = [req for name in self._queues
                         for req in self._queues[name]]
            for queue in self._queues.values():
                queue.clear()
            for name in self._queued_bytes:
                self._queued_bytes[name] = 0
            for req in abandoned:
                self._failed += 1
                self._per_class[req.ticket.qos]["failed"] += 1
            self._cond.notify_all()
        for req in abandoned:
            error = ServiceClosed("service stopped before dispatch")
            req.span.set(outcome="failed", error="ServiceClosed")
            req.span.end()
            req.ticket._fail(error)
            if req.cache_key is not None:
                self._cache_settle_fail(req, error)
        self._dispatcher.join(timeout_s)
        if self._own_pool:
            self.pool.close()

    def __enter__(self) -> "CompressionService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- introspection -------------------------------------------------------

    def stats(self) -> ServiceStats:
        """One mutually consistent snapshot (single critical section)."""
        with self._cond:
            return ServiceStats(
                accepted=self._accepted, rejected=self._rejected,
                expired=self._expired, completed=self._completed,
                failed=self._failed,
                queued=sum(len(q) for q in self._queues.values()),
                queued_bytes=sum(self._queued_bytes.values()),
                bytes_in=self._bytes_in, bytes_out=self._bytes_out,
                batches=self._batches,
                modelled_seconds=self._modelled_s,
                state=self._state,
                per_class={name: dict(c)
                           for name, c in self._per_class.items()},
                per_tenant={name: dict(t)
                            for name, t in self._per_tenant.items()},
                cache=(self.cache.stats() if self.cache is not None
                       else None))

    # -- admission internals -------------------------------------------------

    def _retry_after_locked(self) -> float:
        """Estimate when capacity frees up: backlog x recent job cost."""
        backlog = sum(len(q) for q in self._queues.values())
        return min(_RETRY_AFTER_MAX_S,
                   max(_RETRY_AFTER_MIN_S, backlog * self._ewma_job_s))

    def _publish_depth_locked(self, name: str) -> None:
        if _REGISTRY.enabled:
            _REGISTRY.gauge("repro_service_queue_depth",
                            "requests waiting per QoS class").set(
                len(self._queues[name]), qos=name)
            _REGISTRY.gauge("repro_service_queued_bytes",
                            "payload bytes waiting per QoS class").set(
                self._queued_bytes[name], qos=name)

    # -- the dispatcher ------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while True:
                    waiting = {name: len(q)
                               for name, q in self._queues.items()}
                    if any(waiting.values()):
                        break
                    if self._state != "running":
                        return
                    self._cond.wait(0.1)
                qcls = self.qos.pick(waiting)
                if qcls is None:  # pragma: no cover - pick of nonempty
                    continue
                depth = min(qcls.max_batch,
                            self.pool.suggested_batch_depth())
                queue = self._queues[qcls.name]
                batch = [queue.popleft()
                         for _ in range(min(depth, len(queue)))]
                for req in batch:
                    self._queued_bytes[qcls.name] -= len(req.payload)
                self._publish_depth_locked(qcls.name)
            self._run_batch(qcls, batch)

    def _run_batch(self, qcls, batch: list[_Queued]) -> None:
        """Execute one coalesced batch outside the admission lock."""
        now = time.perf_counter()
        live: list[_Queued] = []
        for req in batch:
            if (req.deadline_s is not None
                    and now - req.enqueued_at > req.deadline_s):
                self._resolve_expired(req, now)
            else:
                live.append(req)
        if not live:
            return
        with self._cond:
            self._batches += 1
        if _REGISTRY.enabled:
            _REGISTRY.histogram("repro_service_batch_size",
                                "requests coalesced per dispatch",
                                buckets=(1, 2, 4, 8, 16, 32)).observe(
                len(live), qos=qcls.name)
        # A singleton normally runs inline on the dispatcher thread, but
        # when the pool fronts a process execution layer even a batch of
        # one goes through submit/wait so the work leaves this I/O loop.
        use_batch = self.batching and (
            len(live) > 1 or getattr(self.pool, "exec_enabled", False))
        if use_batch:
            # The batch span hangs off the first live request's span (and
            # wire trace), so the exported tree nests client ->
            # service.request -> service.batch -> pool -> worker.  Pool
            # work is genuinely batch-scoped, so the other coalesced
            # requests link to it via request_ids rather than owning
            # duplicate copies of the pool spans.
            first = next((req.span for req in live
                          if isinstance(req.span, Span)), None)
            batch_ctx = None
            if first is not None and first.ctx is not None:
                batch_ctx = first.ctx.child()
            batch_span = _TRACE.span_detached(
                "service.batch", parent=first, ctx=batch_ctx,
                qos=qcls.name, size=len(live),
                request_ids=[req.ticket.request_id for req in live])
            try:
                with _TRACE.adopt(batch_span):
                    jobs = self._submit_batch(live)
                    self._await_batch(live, jobs)
            finally:
                batch_span.end()
        else:
            for req in live:
                self._run_sync(req)

    def _submit_batch(self, live: list[_Queued]) -> list[PoolJob | None]:
        # Runs under the adopted service.batch span: pool.route /
        # backend.submit / folded worker spans nest under the batch.
        jobs: list[PoolJob | None] = []
        for req in live:
            try:
                if req.op == "compress":
                    job = self.pool.submit_compress(
                        req.payload, strategy=req.strategy,
                        fmt=req.fmt, deadline_s=req.deadline_s)
                else:
                    job = self.pool.submit_decompress(
                        req.payload, fmt=req.fmt,
                        deadline_s=req.deadline_s)
            except ReproError as exc:
                # Any library failure — accelerator trouble, but also a
                # malformed payload (DeflateError on garbage input) —
                # fails this job; it must never fail the dispatcher.
                self._resolve_error(req, exc)
                job = None
            jobs.append(job)
        return jobs

    def _await_batch(self, live: list[_Queued],
                     jobs: list[PoolJob | None]) -> None:
        try:
            self.pool.wait_all()
        except AcceleratorError:
            # Wedged engine: abandon what's stuck — cancellation routes
            # the jobs through the rescue path, so most still resolve
            # with correct software-computed bytes.
            self.pool.cancel_in_flight()
        for req, job in zip(live, jobs):
            if job is None:
                continue  # already failed at submit
            if job.result is not None:
                self._resolve_ok(req, job.result.output,
                                 job.result.stats.elapsed_seconds,
                                 batch_size=len(live))
            else:
                error = job.error or AcceleratorError(
                    "batch job resolved without result or error")
                self._resolve_error(req, error)

    def _run_sync(self, req: _Queued) -> None:
        with _TRACE.adopt(req.span):
            try:
                if req.op == "compress":
                    result = self.pool.compress(
                        req.payload, strategy=req.strategy, fmt=req.fmt,
                        deadline_s=req.deadline_s)
                else:
                    result = self.pool.decompress(
                        req.payload, fmt=req.fmt,
                        deadline_s=req.deadline_s)
            except ReproError as exc:
                # Same contract as _submit_batch: a bad payload fails
                # the one request, never the dispatcher thread.
                self._resolve_error(req, exc)
                return
        self._resolve_ok(req, result.output,
                         result.stats.elapsed_seconds, batch_size=1)

    # -- fulfilment ----------------------------------------------------------

    def _resolve_ok(self, req: _Queued, output: bytes, modelled_s: float,
                    batch_size: int) -> None:
        done = time.perf_counter()
        queue_wait = max(0.0, done - req.enqueued_at)
        wall = queue_wait  # wait + service, measured at fulfilment
        with self._cond:
            self._completed += 1
            self._bytes_in += len(req.payload)
            self._bytes_out += len(output)
            self._modelled_s += modelled_s
            self._per_class[req.ticket.qos]["completed"] += 1
            per_job = wall / max(1, batch_size)
            self._ewma_job_s += _EWMA_WEIGHT * (per_job - self._ewma_job_s)
        if _REGISTRY.enabled:
            record_service_request(
                op=req.op, qos=req.ticket.qos, outcome="ok",
                tenant=req.ticket.tenant, nbytes_in=len(req.payload),
                nbytes_out=len(output), modelled_s=modelled_s,
                queue_wait_s=queue_wait)
            _REGISTRY.window(
                "repro_service_latency_window_seconds",
                "request wall latency (admission to fulfilment)").observe(
                wall, qos=req.ticket.qos)
            _REGISTRY.window(
                "repro_service_shed_window_ratio",
                "shed fraction of recent admissions").observe(
                0.0, qos=req.ticket.qos)
        _FLIGHT.record("service.ok", id=req.ticket.request_id, op=req.op,
                       qos=req.ticket.qos, nbytes=len(req.payload),
                       wall_s=round(wall, 6), batch=batch_size)
        req.span.set(outcome="ok", out_bytes=len(output),
                     modelled_s=modelled_s, batch_size=batch_size)
        req.span.end()
        req.ticket._fulfil(ServiceResult(
            output=output, op=req.op, qos=req.ticket.qos,
            modelled_seconds=modelled_s, queue_wait_s=queue_wait,
            wall_seconds=wall, batch_size=batch_size))
        if req.cache_key is not None:
            self._cache_settle_ok(req, output)

    def _resolve_expired(self, req: _Queued, now: float) -> None:
        waited = now - req.enqueued_at
        with self._cond:
            self._expired += 1
            self._per_class[req.ticket.qos]["expired"] += 1
        if _REGISTRY.enabled:
            record_service_request(
                op=req.op, qos=req.ticket.qos, outcome="expired",
                tenant=req.ticket.tenant, queue_wait_s=waited,
                reason="deadline_in_queue")
        _FLIGHT.auto_dump("deadline_exceeded", id=req.ticket.request_id,
                          op=req.op, qos=req.ticket.qos,
                          waited_s=round(waited, 6))
        req.span.set(outcome="expired", queue_wait_s=waited)
        req.span.end()
        error = DeadlineExceeded(
            f"request {req.ticket.request_id} waited "
            f"{waited * 1e3:.1f} ms in the {req.ticket.qos} queue, "
            f"past its {req.deadline_s * 1e3:.1f} ms deadline",
            elapsed_s=waited, deadline_s=req.deadline_s)
        req.ticket._fail(error)
        if req.cache_key is not None:
            self._cache_settle_fail(req, error)

    def _resolve_error(self, req: _Queued, error: Exception) -> None:
        outcome = ("expired" if isinstance(error, DeadlineExceeded)
                   else "failed")
        reason = type(error).__name__
        with self._cond:
            if outcome == "expired":
                self._expired += 1
            else:
                self._failed += 1
            self._per_class[req.ticket.qos][outcome] += 1
        if _REGISTRY.enabled:
            record_service_request(
                op=req.op, qos=req.ticket.qos, outcome=outcome,
                tenant=req.ticket.tenant, reason=reason)
        if outcome == "expired":
            _FLIGHT.auto_dump("deadline_exceeded",
                              id=req.ticket.request_id, op=req.op,
                              qos=req.ticket.qos, error=reason)
        else:
            _FLIGHT.record("service.fail", id=req.ticket.request_id,
                           op=req.op, qos=req.ticket.qos, error=reason)
        req.span.set(outcome=outcome, error=reason)
        req.span.end()
        if isinstance(error, ChipUnavailable):
            # Every breaker open is a capacity, not a correctness,
            # problem: tell the client to come back.
            error = ServiceOverloaded(
                f"no healthy chip for request {req.ticket.request_id}; "
                "retry after cooldown",
                retry_after_s=_RETRY_AFTER_MAX_S, qos=req.ticket.qos)
        req.ticket._fail(error)
        if req.cache_key is not None:
            self._cache_settle_fail(req, error)
