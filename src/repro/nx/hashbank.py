"""Banked, set-associative hash table model for the NX match pipeline.

The hardware scans W bytes per cycle and must perform W hash lookups and
W insertions in that cycle.  The table is therefore split into B banks;
positions whose hashes collide on a bank in the same cycle serialize,
costing stall cycles.  Capacity is limited: each set keeps the most
recent ``ways`` positions (FIFO), which is what bounds match-candidate
quality versus software's unbounded hash chains.
"""

from __future__ import annotations

from collections import Counter

from .params import EngineParams

_HASH_MULT = 0x9E3779B1  # Fibonacci hashing of the 3-byte prefix


class BankedHashTable:
    """Functional + conflict-accounting model of the match hash table."""

    def __init__(self, params: EngineParams) -> None:
        self.banks = params.hash_banks
        self.ports = params.hash_ports
        self.ways = params.hash_ways
        self.sets = 1 << params.hash_sets_log2
        self.window = params.window_bytes
        self._table: list[list[int]] = [
            [] for _ in range(self.banks * self.sets)
        ]
        self.lookups = 0
        self.insertions = 0
        self.conflict_stalls = 0

    def reset(self) -> None:
        """Clear table contents and statistics (new job, new history)."""
        for entry in self._table:
            entry.clear()
        self.lookups = 0
        self.insertions = 0
        self.conflict_stalls = 0

    @staticmethod
    def hash3(data: bytes, i: int) -> int:
        """Hash the 3-byte prefix at ``i`` into a 32-bit value."""
        prefix = data[i] | (data[i + 1] << 8) | (data[i + 2] << 16)
        return (prefix * _HASH_MULT) & 0xFFFFFFFF

    def _index(self, h: int) -> tuple[int, int]:
        bank = h % self.banks
        set_idx = (h // self.banks) % self.sets
        return bank, bank * self.sets + set_idx

    def lookup_insert(self, data: bytes, i: int) -> tuple[list[int], int]:
        """Return (candidate positions, bank id) and insert position ``i``.

        Candidates are returned most-recent first and filtered to the
        sliding window; the caller still validates the actual bytes (hash
        aliasing is allowed, exactly as in hardware).
        """
        h = self.hash3(data, i)
        bank, idx = self._index(h)
        entry = self._table[idx]
        low_limit = i - self.window
        candidates = [pos for pos in reversed(entry) if pos > low_limit]
        entry.append(i)
        if len(entry) > self.ways:
            entry.pop(0)
        self.lookups += 1
        self.insertions += 1
        return candidates, (bank, h)

    def charge_group_conflicts(self, accesses: list[tuple[int, int]]) -> int:
        """Account bank-conflict stalls for one scan group.

        ``accesses`` holds (bank, hash) pairs for the group.  Each bank
        serves ``ports`` accesses per cycle; accesses with the same hash
        hit the same set and are merged by the combining network, so only
        *distinct* hashes contend.  The group stalls until the worst bank
        has drained all its distinct accesses.
        """
        if not accesses:
            return 0
        per_bank: Counter[int] = Counter()
        for bank, _h in set(accesses):
            per_bank[bank] += 1
        worst = max(per_bank.values())
        stalls = max(0, -(-worst // self.ports) - 1)
        self.conflict_stalls += stalls
        return stalls
