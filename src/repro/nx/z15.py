"""The z15 DFLTCC instruction model (Integrated Accelerator for zEDC).

On z15 the accelerator is driven *synchronously*: the CPU issues the
DEFLATE CONVERSION CALL (DFLTCC) instruction, whose operands name an
input buffer, an output buffer, and a ~1.5 KB parameter block carrying
all cross-call state (continuation flag, carried history, check value,
the DHT).  Key architectural behaviours modelled here:

* **Function codes** — QAF (query), GDHT (generate a DHT from a sample),
  CMPR (compress), XPND (expand).
* **CPU-determined completion** — the instruction may return CC=3 after
  processing a bounded amount of data so the OS can take interrupts;
  software simply re-issues until CC=0.  This is why DFLTCC needs no
  driver, no queue and no completion interrupt — and why its invocation
  overhead is a fraction of a microsecond.
* **Continuation state** — history and the check value live in the
  parameter block, so a stream can be compressed chunk by chunk with
  full window carry (the synchronous analogue of the POWER9 history
  DDE protocol).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..deflate.checksums import crc32
from ..deflate.constants import WINDOW_SIZE
from ..errors import AcceleratorError
from .compressor import NxCompressor
from .decompressor import NxDecompressor
from .dht import GDHT_SCAN_WINDOW, DhtStrategy, select_canned_windowed
from .params import Z15, MachineParams

PARAMETER_BLOCK_BYTES = 1536  # architected size


class DfltccFunction(enum.IntEnum):
    """DFLTCC function codes (GR0 bits)."""

    QAF = 0    # query available functions
    GDHT = 1   # generate dynamic Huffman table
    CMPR = 2   # compress
    XPND = 4   # expand


class ConditionCode(enum.IntEnum):
    """Instruction condition codes."""

    DONE = 0          # operation completed
    OP1_FULL = 1      # first operand (output) exhausted
    OP2_EMPTY = 2     # second operand (input) exhausted mid-stream
    PARTIAL = 3       # CPU-determined completion: re-issue to continue


@dataclass
class ParameterBlock:
    """The in-memory state block both CMPR and XPND carry across calls."""

    continuation: bool = False
    new_task: bool = True
    history: bytes = b""
    check_value: int = 0
    dht_strategy: DhtStrategy = DhtStrategy.FIXED
    dht_sample: bytes = b""  # set by GDHT; CMPR uses it for canned pick
    total_in: int = 0
    total_out: int = 0

    def size_check(self) -> None:
        if len(self.history) > WINDOW_SIZE:
            raise AcceleratorError("parameter block history exceeds 32 KB")


@dataclass
class DfltccResult:
    """Outcome of one DFLTCC invocation."""

    cc: ConditionCode
    consumed: int          # bytes taken from the second operand
    produced: bytes        # bytes appended to the first operand
    seconds: float         # modelled synchronous execution time


@dataclass
class Dfltcc:
    """One CPU's view of the on-chip zEDC accelerator."""

    machine: MachineParams = Z15
    # CPU-determined completion bound: how many input bytes one
    # invocation may process before CC=3 forces a re-issue.
    processing_quantum: int = 1 << 20

    def __post_init__(self) -> None:
        if not self.machine.synchronous:
            raise AcceleratorError(
                f"{self.machine.name} has no synchronous DFLTCC facility")
        self._compressor = NxCompressor(self.machine.engine)
        self._decompressor = NxDecompressor(self.machine.engine)

    # -- function code dispatch -------------------------------------------

    def query_available_functions(self) -> set[DfltccFunction]:
        """QAF: which function codes this machine implements."""
        return {DfltccFunction.QAF, DfltccFunction.GDHT,
                DfltccFunction.CMPR, DfltccFunction.XPND}

    def generate_dht(self, block: ParameterBlock,
                     sample: bytes) -> DfltccResult:
        """GDHT: derive a Huffman table from a source sample.

        The real facility stores a compressed DHT in the parameter
        block; the model records the sample and switches the strategy
        to DYNAMIC, which regenerates the same table at CMPR time.
        """
        block.dht_sample = sample[:4096]
        block.dht_strategy = DhtStrategy.DYNAMIC
        seconds = (self.machine.engine.dht_base_cycles
                   / (self.machine.engine.clock_ghz * 1e9))
        return DfltccResult(cc=ConditionCode.DONE, consumed=len(sample),
                            produced=b"", seconds=seconds)

    def compress(self, block: ParameterBlock, data: bytes,
                 out_capacity: int = 1 << 62,
                 last: bool = True) -> DfltccResult:
        """CMPR: one synchronous compression invocation.

        Processes at most ``processing_quantum`` input bytes; returns
        CC=3 with the partial output if input remains (the caller
        re-issues with the rest), CC=1 if the output buffer cannot hold
        the produced bytes.
        """
        block.size_check()
        chunk = data[:self.processing_quantum]
        remaining_after = len(data) - len(chunk)
        chunk_last = last and remaining_after == 0

        # The GDHT sample drives the canned-table pick, but only when it
        # covers at least one full scan window: a shorter sample would
        # make the facility index past its end, so the architecture
        # degrades the request to a freshly generated dynamic DHT.
        strategy = block.dht_strategy
        canned_name = None
        if strategy in (DhtStrategy.CANNED, DhtStrategy.AUTO) \
                and block.dht_sample:
            if len(block.dht_sample) < GDHT_SCAN_WINDOW:
                strategy = DhtStrategy.DYNAMIC
            else:
                canned_name = select_canned_windowed(block.dht_sample)

        result = self._compressor.compress(
            chunk, strategy=strategy, fmt="raw",
            history=block.history, final=chunk_last,
            canned_name=canned_name)
        produced = result.data
        if len(produced) > out_capacity:
            return DfltccResult(cc=ConditionCode.OP1_FULL, consumed=0,
                                produced=b"",
                                seconds=self._issue_seconds())

        block.history = (block.history + chunk)[-WINDOW_SIZE:]
        block.check_value = crc32(chunk, block.check_value)
        block.total_in += len(chunk)
        block.total_out += len(produced)
        block.continuation = not chunk_last
        block.new_task = False

        cc = ConditionCode.DONE if remaining_after == 0 \
            else ConditionCode.PARTIAL
        return DfltccResult(cc=cc, consumed=len(chunk), produced=produced,
                            seconds=self._issue_seconds() + result.seconds)

    def expand(self, block: ParameterBlock, payload: bytes,
               out_capacity: int = 1 << 62) -> DfltccResult:
        """XPND: synchronous decompression of a complete raw stream.

        Output-side partial completion: if the first operand cannot hold
        the plaintext, CC=1 is returned with nothing consumed (the
        caller grows the buffer), matching the architecture's operand
        semantics at request granularity.
        """
        block.size_check()
        result = self._decompressor.decompress(payload, fmt="raw",
                                               history=block.history)
        if len(result.data) > out_capacity:
            return DfltccResult(cc=ConditionCode.OP1_FULL, consumed=0,
                                produced=b"",
                                seconds=self._issue_seconds())
        block.history = (block.history + result.data)[-WINDOW_SIZE:]
        block.check_value = crc32(result.data, block.check_value)
        block.total_in += len(payload)
        block.total_out += len(result.data)
        return DfltccResult(cc=ConditionCode.DONE, consumed=len(payload),
                            produced=result.data,
                            seconds=self._issue_seconds() + result.seconds)

    def _issue_seconds(self) -> float:
        """Per-invocation cost: issue + millicode entry, sub-microsecond."""
        return (self.machine.submit_overhead_us
                + self.machine.dispatch_overhead_us) * 1e-6


def dfltcc_compress(data: bytes, machine: MachineParams = Z15,
                    strategy: DhtStrategy = DhtStrategy.DYNAMIC,
                    quantum: int = 1 << 20) -> tuple[bytes, float, int]:
    """The software loop around CMPR: re-issue while CC=3.

    Returns ``(raw deflate stream, modelled seconds, invocations)``.
    """
    facility = Dfltcc(machine=machine, processing_quantum=quantum)
    block = ParameterBlock(dht_strategy=strategy)
    out = bytearray()
    seconds = 0.0
    invocations = 0
    offset = 0
    while True:
        result = facility.compress(block, data[offset:], last=True)
        out += result.produced
        seconds += result.seconds
        invocations += 1
        offset += result.consumed
        if result.cc is ConditionCode.DONE:
            return bytes(out), seconds, invocations
        if result.cc is not ConditionCode.PARTIAL:
            raise AcceleratorError(f"unexpected CC {result.cc!r}")


def dfltcc_expand(payload: bytes, machine: MachineParams = Z15
                  ) -> tuple[bytes, float]:
    """The software loop around XPND (with output-buffer growth)."""
    facility = Dfltcc(machine=machine)
    block = ParameterBlock()
    capacity = max(4096, 4 * len(payload))
    while True:
        result = facility.expand(block, payload, out_capacity=capacity)
        if result.cc is ConditionCode.DONE:
            return result.produced, result.seconds
        if result.cc is ConditionCode.OP1_FULL:
            capacity *= 2
            continue
        raise AcceleratorError(f"unexpected CC {result.cc!r}")
