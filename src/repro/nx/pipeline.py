"""The NX compression scan pipeline: hardware-policy LZ77 + cycle model.

Differences from the software matcher that shape the accelerator's
ratio/throughput trade-off (all documented properties of the product):

* the pipeline scans ``scan_bytes_per_cycle`` input positions per cycle
  and hashes *every* position into a banked table (bank conflicts stall);
* match candidates come from a small set-associative table
  (``hash_ways`` most-recent positions), not an unbounded chain;
* match selection is greedy — there is no lazy one-byte deferral;
* candidate comparison is ``compare_window`` bytes wide per cycle, which
  is at least twice the scan width, so match extension never becomes the
  bottleneck and costs no extra cycles.

The functional output is a real DEFLATE token stream; the timing output
is a cycle count for the scan phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..deflate.constants import MAX_MATCH, MIN_MATCH
from ..deflate.matcher import MatchStats, Token
from .hashbank import BankedHashTable
from .params import EngineParams


@dataclass
class ScanResult:
    """Functional and timing outcome of one scan pass."""

    tokens: list[Token]
    stats: MatchStats
    scan_cycles: int
    conflict_stalls: int
    candidate_probes: int
    history_cycles: int = 0  # loading a preset history through the pipe

    @property
    def total_cycles(self) -> int:
        return self.scan_cycles + self.conflict_stalls + self.history_cycles


@dataclass
class NxMatchPipeline:
    """Greedy, candidate-limited LZ77 scanner with cycle accounting."""

    params: EngineParams
    table: BankedHashTable = field(init=False)

    def __post_init__(self) -> None:
        self.table = BankedHashTable(self.params)

    def scan(self, data: bytes, history: bytes = b"") -> ScanResult:
        """Tokenize ``data`` with the hardware match policy.

        ``history`` models the NX history DDE: up to one window of prior
        plaintext is streamed through the hash pipe before the source so
        back-references can reach into it.  The load is charged at scan
        width, which is how the hardware brings history in.
        """
        self.table.reset()
        width = self.params.scan_bytes_per_cycle
        history = history[-self.params.window_bytes:]
        start = len(history)
        combined = history + data if history else data
        n = len(combined)
        tokens: list[Token] = []
        stats = MatchStats()
        conflict_stalls = 0
        candidate_probes = 0
        next_emit = start
        hash_limit = n - MIN_MATCH + 1
        data = combined

        for group_start in range(0, n, width):
            group_end = min(group_start + width, n)
            accesses: list[tuple[int, int]] = []
            for i in range(group_start, group_end):
                if i >= hash_limit:
                    if i >= next_emit:
                        tokens.append(data[i])
                        stats.literals += 1
                        next_emit = i + 1
                    continue
                candidates, access = self.table.lookup_insert(data, i)
                accesses.append(access)
                if i < next_emit:
                    continue  # inside a committed match: hash only
                best_len = 0
                best_dist = 0
                max_len = min(MAX_MATCH, n - i)
                for cand in candidates:
                    candidate_probes += 1
                    length = self._match_length(data, cand, i, max_len)
                    if length > best_len:
                        best_len = length
                        best_dist = i - cand
                if best_len >= MIN_MATCH:
                    tokens.append((best_len, best_dist))
                    stats.matches += 1
                    stats.match_bytes += best_len
                    next_emit = i + best_len
                else:
                    tokens.append(data[i])
                    stats.literals += 1
                    next_emit = i + 1
            conflict_stalls += self.table.charge_group_conflicts(accesses)

        history_cycles = (start + width - 1) // width
        scan_cycles = (n - start + width - 1) // width
        stats.chain_probes = candidate_probes
        return ScanResult(tokens=tokens, stats=stats,
                          scan_cycles=scan_cycles,
                          conflict_stalls=conflict_stalls,
                          candidate_probes=candidate_probes,
                          history_cycles=history_cycles)

    @staticmethod
    def _match_length(data: bytes, cand: int, pos: int, max_len: int) -> int:
        length = 0
        while length < max_len and data[cand + length] == data[pos + length]:
            length += 1
        return length
