"""The NX compression engine: functional bitstream + cycle-level timing.

One :class:`NxCompressor` models the compression side of the accelerator:
the scan pipeline produces real DEFLATE tokens, the DHT stage picks
Huffman tables per the requested strategy, and the encoder emits an
RFC-compliant bitstream.  Timing composes the documented pipeline
structure: the Huffman encoder runs concurrently with the scanner, but a
DYNAMIC table generation inserts a serialization bubble per block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..deflate.bitio import BitWriter
from ..deflate.compress import (
    BlockPlan,
    emit_block,
    payload_cost_bits,
    token_frequencies,
)
from ..deflate.constants import BTYPE_DYNAMIC, BTYPE_FIXED, BTYPE_STORED
from ..deflate.containers import wrap_gzip, wrap_zlib
from ..deflate.matcher import MatchStats, Token
from ..errors import AcceleratorError
from ..obs.trace import TRACE as _TRACE
from .dht import (
    DhtResult,
    DhtStrategy,
    canned_dht,
    dynamic_generation_cycles,
    fixed_dht,
    generate_dynamic,
    select_canned,
)
from .params import EngineParams

DEFAULT_BLOCK_BYTES = 65536


@dataclass(frozen=True)
class CycleBreakdown:
    """Where the compression cycles went."""

    pipeline_fill: int
    scan: int
    bank_stalls: int
    dht_generation: int
    encode_exposed: int  # encoder cycles not hidden behind the scan
    history_load: int = 0  # streaming a preset history through the pipe

    @property
    def total(self) -> int:
        return (self.pipeline_fill + self.scan + self.bank_stalls
                + self.dht_generation + self.encode_exposed
                + self.history_load)


@dataclass
class NxCompressResult:
    """Output of one accelerator compression request."""

    data: bytes
    input_bytes: int
    cycles: CycleBreakdown
    stats: MatchStats
    block_types: list[int]
    dht_sources: list[str]
    strategy: DhtStrategy
    clock_ghz: float

    @property
    def compressed_bytes(self) -> int:
        return len(self.data)

    @property
    def ratio(self) -> float:
        if not self.data:
            return 0.0
        return self.input_bytes / len(self.data)

    @property
    def seconds(self) -> float:
        return self.cycles.total / (self.clock_ghz * 1e9)

    @property
    def throughput_gbps(self) -> float:
        seconds = self.seconds
        return (self.input_bytes / 1e9) / seconds if seconds else 0.0


@dataclass
class NxCompressor:
    """Compression half of one NX/zEDC engine."""

    params: EngineParams
    block_bytes: int = DEFAULT_BLOCK_BYTES
    _pipeline: object = field(init=False, repr=False)

    def __post_init__(self) -> None:
        from .pipeline import NxMatchPipeline

        self._pipeline = NxMatchPipeline(self.params)

    def compress(self, data: bytes,
                 strategy: DhtStrategy = DhtStrategy.AUTO,
                 fmt: str = "raw", history: bytes = b"",
                 final: bool = True,
                 canned_name: str | None = None) -> NxCompressResult:
        """Run one compression request through the engine model.

        ``history`` primes the match window with prior plaintext (the NX
        history DDE).  ``final=False`` produces a *continuable* stream:
        no final block bit, terminated by an empty stored block that
        byte-aligns the output (zlib's Z_FULL_FLUSH), so per-request
        outputs concatenate into one valid DEFLATE stream.  An explicit
        ``canned_name`` (e.g. the GDHT facility's scan-window pick)
        overrides the per-request :func:`select_canned` classification.
        """
        if fmt not in ("raw", "gzip", "zlib"):
            raise AcceleratorError(f"unsupported wire format {fmt!r}")
        if not final and fmt != "raw":
            raise AcceleratorError(
                "container formats require a final (complete) stream")

        traced = _TRACE.enabled
        if traced:
            with _TRACE.span("engine.match", nbytes=len(data)) as span:
                scan = self._pipeline.scan(data, history=history)
                span.set(matches=scan.stats.matches,
                         literals=scan.stats.literals,
                         stalls=scan.conflict_stalls)
        else:
            scan = self._pipeline.scan(data, history=history)
        blocks = _split_by_input_bytes(scan.tokens, data, self.block_bytes)

        if canned_name is None and strategy in (DhtStrategy.CANNED,
                                                DhtStrategy.AUTO):
            canned_name = select_canned(data)

        # Plan every block first, then emit the planned stream — the two
        # hardware phases (DHT selection/generation vs encoder drain).
        if traced:
            with _TRACE.span("engine.huffman", blocks=len(blocks),
                             strategy=strategy.value) as span:
                plans = [self._plan_block(tokens, raw, strategy, canned_name)
                         for tokens, raw in blocks]
                span.set(dht_cycles=sum(
                    dht.generation_cycles if dht else 0
                    for _, dht in plans))
        else:
            plans = [self._plan_block(tokens, raw, strategy, canned_name)
                     for tokens, raw in blocks]

        if traced:
            with _TRACE.span("engine.emit", blocks=len(plans)) as span:
                body, block_types, dht_sources, dht_cycles = (
                    _emit_planned(plans, final))
                span.set(out_bytes=len(body))
        else:
            body, block_types, dht_sources, dht_cycles = (
                _emit_planned(plans, final))
        if fmt == "gzip":
            payload = wrap_gzip(body, data)
        elif fmt == "zlib":
            payload = wrap_zlib(body, data)
        else:
            payload = body

        encode_cycles = -(-len(body) * 8
                          // self.params.huffman_encode_bits_per_cycle)
        scan_total = scan.scan_cycles + scan.conflict_stalls
        encode_exposed = max(0, encode_cycles - scan_total)
        cycles = CycleBreakdown(
            pipeline_fill=self.params.pipeline_fill_cycles,
            scan=scan.scan_cycles,
            bank_stalls=scan.conflict_stalls,
            dht_generation=dht_cycles,
            encode_exposed=encode_exposed,
            history_load=scan.history_cycles,
        )
        return NxCompressResult(
            data=payload,
            input_bytes=len(data),
            cycles=cycles,
            stats=scan.stats,
            block_types=block_types,
            dht_sources=dht_sources,
            strategy=strategy,
            clock_ghz=self.params.clock_ghz,
        )

    # -- block planning -------------------------------------------------

    def _plan_block(self, tokens: list[Token], raw: bytes,
                    strategy: DhtStrategy,
                    canned_name: str | None) -> tuple[BlockPlan,
                                                      DhtResult | None]:
        lit_freq, dist_freq = token_frequencies(tokens)

        if strategy is DhtStrategy.FIXED:
            return BlockPlan(tokens=tokens, raw=raw,
                             btype=BTYPE_FIXED), fixed_dht()

        if strategy is DhtStrategy.DYNAMIC:
            dht = generate_dynamic(lit_freq, dist_freq, self.params)
            return self._dynamic_plan(tokens, raw, dht), dht

        if strategy is DhtStrategy.CANNED:
            dht = canned_dht(canned_name or select_canned(raw))
            tokens = _demote_uncovered(tokens, raw, dht)
            return self._dynamic_plan(tokens, raw, dht), dht

        # AUTO: evaluate all options by real bit cost, preferring cheaper
        # generation on near-ties (within 1 %).
        fixed = fixed_dht()
        canned = canned_dht(canned_name or select_canned(raw))
        canned_tokens = _demote_uncovered(tokens, raw, canned)
        canned_lit_freq, canned_dist_freq = (
            (lit_freq, dist_freq) if canned_tokens is tokens
            else token_frequencies(canned_tokens))
        dynamic = generate_dynamic(lit_freq, dist_freq, self.params)

        fixed_bits = payload_cost_bits(lit_freq, dist_freq,
                                       list(fixed.litlen_lengths),
                                       list(fixed.dist_lengths))
        canned_bits = (payload_cost_bits(canned_lit_freq, canned_dist_freq,
                                         list(canned.litlen_lengths),
                                         list(canned.dist_lengths))
                       + _header_bits(canned))
        dyn_bits = (payload_cost_bits(lit_freq, dist_freq,
                                      list(dynamic.litlen_lengths),
                                      list(dynamic.dist_lengths))
                    + _header_bits(dynamic))
        stored_bits = len(raw) * 8 + 40

        best = min(stored_bits, fixed_bits, canned_bits, dyn_bits)
        if stored_bits == best and stored_bits < fixed_bits:
            return BlockPlan(tokens=tokens, raw=raw,
                             btype=BTYPE_STORED), None
        if fixed_bits <= best * 1.01:
            return BlockPlan(tokens=tokens, raw=raw,
                             btype=BTYPE_FIXED), fixed
        if canned_bits <= best * 1.01:
            return self._dynamic_plan(canned_tokens, raw, canned), canned
        return self._dynamic_plan(tokens, raw, dynamic), dynamic

    @staticmethod
    def _dynamic_plan(tokens: list[Token], raw: bytes,
                      dht: DhtResult) -> BlockPlan:
        return BlockPlan(tokens=tokens, raw=raw, btype=BTYPE_DYNAMIC,
                         litlen_lengths=list(dht.litlen_lengths),
                         dist_lengths=list(dht.dist_lengths))

    def dynamic_cycles(self, tokens: list[Token]) -> int:
        """Expose the DHT cost model for ablation benches."""
        lit_freq, dist_freq = token_frequencies(tokens)
        return dynamic_generation_cycles(lit_freq, dist_freq, self.params)


def _demote_uncovered(tokens: list[Token], raw: bytes,
                      dht: DhtResult) -> list[Token]:
    """Demote matches a canned table cannot encode back to literals.

    A trained canned DHT only carries the length/distance codes its
    cluster's traffic used (zeros elsewhere keep the table header
    small).  Any match whose code is missing is re-emitted as the
    literal bytes it would have reproduced — literals 0..255 are always
    covered, so a canned table can encode *any* input at worst as a
    literal stream.  Returns ``tokens`` unchanged (same object) when
    the table covers everything.
    """
    from ..deflate.constants import DIST_TO_CODE, LENGTH_TO_CODE

    lit_lengths = dht.litlen_lengths
    dist_lengths = dht.dist_lengths
    out: list[Token] | None = None
    pos = 0
    for i, tok in enumerate(tokens):
        if type(tok) is int:
            if out is not None:
                out.append(tok)
            pos += 1
            continue
        length, dist = tok
        if (lit_lengths[LENGTH_TO_CODE[length]] == 0
                or dist_lengths[DIST_TO_CODE[dist]] == 0):
            if out is None:
                out = list(tokens[:i])
            out.extend(raw[pos:pos + length])
        elif out is not None:
            out.append(tok)
        pos += length
    return tokens if out is None else out


def _header_bits(dht: DhtResult) -> int:
    """Approximate dynamic-header bit cost for a DHT (for AUTO choice)."""
    from ..deflate.compress import (
        _codelen_frequencies,
        _ensure_decodable,
        dynamic_header_cost_bits,
        encode_code_lengths,
    )
    from ..deflate.constants import MAX_CODELEN_CODE_LENGTH
    from ..deflate.huffman import limited_code_lengths

    ops, _hlit, _hdist = encode_code_lengths(list(dht.litlen_lengths),
                                             list(dht.dist_lengths))
    cl_freq = _codelen_frequencies(ops)
    cl_lengths = limited_code_lengths(cl_freq, MAX_CODELEN_CODE_LENGTH)
    cl_lengths = _ensure_decodable(cl_freq, cl_lengths, (0, 18))
    return dynamic_header_cost_bits(ops, cl_lengths)


def _emit_planned(plans: list[tuple[BlockPlan, DhtResult | None]],
                  final: bool) -> tuple[bytes, list[int], list[str], int]:
    """Encode a planned block sequence into one DEFLATE body."""
    writer = BitWriter()
    block_types: list[int] = []
    dht_sources: list[str] = []
    dht_cycles = 0
    for idx, (plan, dht) in enumerate(plans):
        last = idx == len(plans) - 1
        emit_block(writer, plan, final=final and last)
        block_types.append(plan.btype)
        dht_sources.append(dht.source if dht else "stored")
        dht_cycles += dht.generation_cycles if dht else 0
    if not final:
        # Z_FULL_FLUSH: empty stored block byte-aligns the stream.
        writer.write_bits(0, 1)
        writer.write_bits(0, 2)
        writer.align_to_byte()
        writer.write_bytes(b"\x00\x00\xff\xff")
    return writer.getvalue(), block_types, dht_sources, dht_cycles


def _split_by_input_bytes(tokens: list[Token], raw: bytes,
                          block_bytes: int) -> list[tuple[list[Token],
                                                          bytes]]:
    """Split the token stream into blocks covering ~block_bytes input."""
    blocks: list[tuple[list[Token], bytes]] = []
    current: list[Token] = []
    start = 0
    pos = 0
    for tok in tokens:
        current.append(tok)
        pos += 1 if isinstance(tok, int) else tok[0]
        if pos - start >= block_bytes:
            blocks.append((current, raw[start:pos]))
            current = []
            start = pos
    if current or not blocks:
        blocks.append((current, raw[start:pos]))
    return blocks
