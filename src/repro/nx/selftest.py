"""Accelerator self-test: known-answer vectors through both pipes.

Production firmware runs a power-on self-test and the driver sanity-
checks the engine at window-open: canned vectors go through compress and
decompress, and checksums must match.  This module provides that
routine for the model — it doubles as the quickest possible "is the
whole stack wired correctly" check for users.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..deflate.checksums import crc32
from ..errors import AcceleratorError, ReproError
from ..obs.metrics import REGISTRY as _REGISTRY
from .compressor import NxCompressor
from .decompressor import NxDecompressor
from .dht import DhtStrategy
from .params import MachineParams

# Known-answer vectors: (name, plaintext, expected CRC-32).
_VECTORS: list[tuple[str, bytes]] = [
    ("ascii", b"IBM POWER9 and z15 on-chip compression accelerator"),
    ("runs", b"\x00" * 300 + b"\xff" * 300 + b"ab" * 150),
    ("binary", bytes(range(256)) * 4),
    ("single", b"x"),
    ("empty", b""),
]


@dataclass(frozen=True)
class SelfTestReport:
    """Outcome of one self-test run."""

    machine: str
    vectors_run: int
    strategies_run: int
    passed: bool
    compress_passed: bool = True
    decompress_passed: bool = True


def run_selftest(machine: MachineParams,
                 raise_on_failure: bool = True) -> SelfTestReport:
    """Push every vector through every strategy and verify roundtrips."""
    from ..deflate import inflate

    compressor = NxCompressor(machine.engine)
    decompressor = NxDecompressor(machine.engine)
    strategies = list(DhtStrategy)
    failures = []
    compress_ok = decompress_ok = True
    for name, plaintext in _VECTORS:
        expected_crc = crc32(plaintext)
        for strategy in strategies:
            payload = compressor.compress(plaintext,
                                          strategy=strategy).data
            restored = decompressor.decompress(payload).data
            if restored != plaintext or crc32(restored) != expected_crc:
                failures.append((name, strategy))
                # Attribute the failure: if the reference software
                # decoder can't restore the payload either, the
                # compressor produced a bad stream; otherwise the
                # decompressor misread a good one.
                try:
                    reference = inflate(payload)
                except Exception:
                    reference = None
                if reference != plaintext:
                    compress_ok = False
                else:
                    decompress_ok = False
    passed = not failures
    if _REGISTRY.enabled:
        gauge = _REGISTRY.gauge(
            "repro_nx_selftest_pass",
            "1 if the engine's known-answer vectors round-trip")
        gauge.set(float(compress_ok), machine=machine.name,
                  engine="compress")
        gauge.set(float(decompress_ok), machine=machine.name,
                  engine="decompress")
    if not passed and raise_on_failure:
        raise AcceleratorError(
            f"self-test failed on {machine.name}: {failures}")
    return SelfTestReport(machine=machine.name,
                          vectors_run=len(_VECTORS),
                          strategies_run=len(strategies),
                          passed=passed,
                          compress_passed=compress_ok,
                          decompress_passed=decompress_ok)


#: Known-answer input for :func:`probe_backend` — compressible but not
#: degenerate, so a corrupting engine is very unlikely to pass by luck.
_PROBE_VECTOR = (b"nx-health-probe " * 24) + bytes(range(128))


def probe_backend(backend) -> bool:
    """One known-answer job through a *live* backend instance.

    This is the half-open circuit-breaker probe: unlike
    :func:`run_selftest` (which tests the engine model in isolation) it
    goes through the full submission path of an existing backend, so a
    dead or corrupting chip is caught where it actually fails.  A result
    that only succeeded via the software fallback does **not** count —
    the probe asks whether the *hardware* is healthy again.
    """
    try:
        result = backend.compress(_PROBE_VECTOR)
    except ReproError:
        ok = False
    else:
        hardware = (result.csb is not None
                    and not result.stats.fallback_to_software)
        if hardware:
            from ..resilience.verify import verify_payload

            fmt = backend.capabilities().default_format
            ok = verify_payload(_PROBE_VECTOR, result.output, fmt)
        else:
            ok = False
    if _REGISTRY.enabled:
        _REGISTRY.counter(
            "repro_nx_probe_total",
            "half-open breaker probes by outcome").inc(
            1, backend=backend.name, outcome="pass" if ok else "fail")
    return ok
