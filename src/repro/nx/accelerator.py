"""Chip-level accelerator: VAS receive side + engines.

One :class:`NxAccelerator` owns the switchboard receive FIFO and a small
number of engines (the POWER9 NX has separate compress and decompress
pipes that operate concurrently).  ``drain`` processes pasted requests in
FIFO order, which is also the service discipline the queueing experiments
assume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sysstack.crb import CcCode, Crb, Csb, Op
from ..sysstack.mmu import AddressSpace
from ..sysstack.vas import PasteRecord, Vas
from .engine import JobOutcome, NxEngine
from .params import MachineParams


@dataclass
class CompletedJob:
    """A drained job: who submitted it, the request, and how it ended."""

    window_id: int
    outcome: JobOutcome
    crb: Crb | None = None


@dataclass
class NxAccelerator:
    """One on-chip accelerator instance: VAS + compress/decompress pipes."""

    machine: MachineParams
    vas: Vas = field(default_factory=Vas)
    #: Optional resilience fault-injection hook
    #: (:class:`repro.resilience.faults.FaultInjector`).
    chaos: object | None = None

    def __post_init__(self) -> None:
        self.compress_engine = NxEngine(self.machine)
        self.decompress_engine = NxEngine(self.machine)
        self.e842_engine = NxEngine(self.machine)  # the 842 pipes
        #: Requests a hung engine swallowed (credits still held).
        self.hung: list[PasteRecord] = []

    def engine_for(self, crb: Crb) -> NxEngine:
        if crb.function.op in (Op.COMPRESS_842, Op.DECOMPRESS_842):
            return self.e842_engine
        if crb.function.op is Op.COMPRESS:
            return self.compress_engine
        return self.decompress_engine

    def execute(self, crb: Crb, space: AddressSpace) -> JobOutcome:
        """Execute one request directly (bypassing the paste FIFO)."""
        return self.engine_for(crb).execute(crb, space)

    def drain(self, space: AddressSpace) -> list[CompletedJob]:
        """Process every pasted request in FIFO order.

        With a resilience :attr:`chaos` injector installed, each popped
        request first consults it: a *hang* swallows the request (the
        credit stays held until :meth:`recover_hung`), a *dead* chip
        answers every job with an engine-check CC, and a *translation
        storm* fabricates source-side faults the driver must fix up.
        """
        completed: list[CompletedJob] = []
        chaos = self.chaos
        while True:
            record = self.vas.pop_request()
            if record is None:
                break
            crb = record.crb()
            # Indirect DDE entry arrays live in memory: hydrate them.
            self._hydrate(crb, space)
            if chaos is not None:
                action = chaos.on_job_start(crb)
                if action == "hang":
                    self.hung.append(record)
                    continue
                if action == "dead":
                    outcome = self._fabricate(crb, space, CcCode.FUNCTION)
                elif action == "translation":
                    outcome = self._fabricate(
                        crb, space, CcCode.TRANSLATION,
                        fault_address=crb.source.address)
                else:
                    outcome = self.execute(crb, space)
                    chaos.on_outcome(crb, outcome, space)
            else:
                outcome = self.execute(crb, space)
            self.vas.return_credit(record.window_id)
            completed.append(CompletedJob(window_id=record.window_id,
                                          outcome=outcome, crb=crb))
        return completed

    def recover_hung(self) -> list[PasteRecord]:
        """Model an engine reset: release hung jobs' credits.

        The driver calls this when a submitted job never produced a
        completion — the RAS path on real hardware (kill the engine,
        reclaim its credits, resubmit or fall back).  The swallowed
        requests are returned for accounting; they are *not* re-run.
        """
        recovered = self.hung
        self.hung = []
        for record in recovered:
            self.vas.reclaim_credit(record.window_id)
        return recovered

    def _fabricate(self, crb: Crb, space: AddressSpace, cc: CcCode,
                   fault_address: int = 0) -> JobOutcome:
        """A chaos-injected abnormal completion (engine never ran)."""
        engine = self.engine_for(crb)
        busy = engine._abort_seconds()
        engine.counters.busy_seconds += busy
        csb = Csb(valid=True, cc=cc, fault_address=fault_address)
        if crb.csb_address:
            space.write(crb.csb_address, csb.pack())
        return JobOutcome(csb=csb, busy_seconds=busy,
                          faulted_address=(fault_address
                                           if cc is CcCode.TRANSLATION
                                           else None))

    def _hydrate(self, crb: Crb, space: AddressSpace) -> None:
        from ..sysstack.dde import DDE_BYTES, Dde

        for dde in (crb.source, crb.target):
            if dde.indirect and not dde.entries:
                count = getattr(dde, "_entry_count", 0)
                raw = space.read(dde.address, count * DDE_BYTES)
                dde.entries = Dde.unpack_entries(raw, count)

    @property
    def total_busy_seconds(self) -> float:
        return (self.compress_engine.counters.busy_seconds
                + self.decompress_engine.counters.busy_seconds
                + self.e842_engine.counters.busy_seconds)
