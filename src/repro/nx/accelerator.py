"""Chip-level accelerator: VAS receive side + engines.

One :class:`NxAccelerator` owns the switchboard receive FIFO and a small
number of engines (the POWER9 NX has separate compress and decompress
pipes that operate concurrently).  ``drain`` processes pasted requests in
FIFO order, which is also the service discipline the queueing experiments
assume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sysstack.crb import Crb, Op
from ..sysstack.mmu import AddressSpace
from ..sysstack.vas import Vas
from .engine import JobOutcome, NxEngine
from .params import MachineParams


@dataclass
class CompletedJob:
    """A drained job: who submitted it, the request, and how it ended."""

    window_id: int
    outcome: JobOutcome
    crb: Crb | None = None


@dataclass
class NxAccelerator:
    """One on-chip accelerator instance: VAS + compress/decompress pipes."""

    machine: MachineParams
    vas: Vas = field(default_factory=Vas)

    def __post_init__(self) -> None:
        self.compress_engine = NxEngine(self.machine)
        self.decompress_engine = NxEngine(self.machine)
        self.e842_engine = NxEngine(self.machine)  # the 842 pipes

    def engine_for(self, crb: Crb) -> NxEngine:
        if crb.function.op in (Op.COMPRESS_842, Op.DECOMPRESS_842):
            return self.e842_engine
        if crb.function.op is Op.COMPRESS:
            return self.compress_engine
        return self.decompress_engine

    def execute(self, crb: Crb, space: AddressSpace) -> JobOutcome:
        """Execute one request directly (bypassing the paste FIFO)."""
        return self.engine_for(crb).execute(crb, space)

    def drain(self, space: AddressSpace) -> list[CompletedJob]:
        """Process every pasted request in FIFO order."""
        completed: list[CompletedJob] = []
        while True:
            record = self.vas.pop_request()
            if record is None:
                break
            crb = record.crb()
            # Indirect DDE entry arrays live in memory: hydrate them.
            self._hydrate(crb, space)
            outcome = self.execute(crb, space)
            self.vas.return_credit(record.window_id)
            completed.append(CompletedJob(window_id=record.window_id,
                                          outcome=outcome, crb=crb))
        return completed

    def _hydrate(self, crb: Crb, space: AddressSpace) -> None:
        from ..sysstack.dde import DDE_BYTES, Dde

        for dde in (crb.source, crb.target):
            if dde.indirect and not dde.entries:
                count = getattr(dde, "_entry_count", 0)
                raw = space.read(dde.address, count * DDE_BYTES)
                dde.entries = Dde.unpack_entries(raw, count)

    @property
    def total_busy_seconds(self) -> float:
        return (self.compress_engine.counters.busy_seconds
                + self.decompress_engine.counters.busy_seconds
                + self.e842_engine.counters.busy_seconds)
