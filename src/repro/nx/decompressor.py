"""The NX decompression engine: functional inflate + cycle-level timing.

The decompressor's functional core is the from-scratch inflate; the cycle
model reflects the documented structure: a serial Huffman decode front
end (symbol-at-a-time, but multiple bits per cycle), a copy engine that
writes ``decomp_bytes_per_cycle`` output bytes per cycle, and a decode
table build at each dynamic block header.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..deflate.constants import BTYPE_DYNAMIC
from ..deflate.containers import gzip_decompress, zlib_decompress
from ..deflate.inflate import InflateStats, inflate_with_stats
from ..errors import AcceleratorError
from .params import EngineParams


@dataclass(frozen=True)
class NxDecompressResult:
    """Output of one accelerator decompression request."""

    data: bytes
    input_bytes: int
    cycles: int
    stats: InflateStats
    clock_ghz: float

    @property
    def output_bytes(self) -> int:
        return len(self.data)

    @property
    def seconds(self) -> float:
        return self.cycles / (self.clock_ghz * 1e9)

    @property
    def throughput_gbps(self) -> float:
        """Output-side throughput, the figure of merit for decompression."""
        seconds = self.seconds
        return (len(self.data) / 1e9) / seconds if seconds else 0.0


@dataclass
class NxDecompressor:
    """Decompression half of one NX/zEDC engine."""

    params: EngineParams
    decode_bits_per_cycle: int = 32  # front-end input consumption rate

    def decompress(self, payload: bytes, fmt: str = "raw",
                   max_output: int = 1 << 31,
                   history: bytes = b"") -> NxDecompressResult:
        """Run one decompression request through the engine model.

        ``history`` is the preset dictionary / carried window for raw
        streams (the containers never use one here).
        """
        if fmt == "gzip":
            data = gzip_decompress(payload)
            stats = self._restat(payload[10:])
        elif fmt == "zlib":
            data = zlib_decompress(payload)
            stats = self._restat(payload[2:])
        elif fmt == "raw":
            data, stats, _bits = inflate_with_stats(
                payload, max_output=max_output, history=history)
        else:
            raise AcceleratorError(f"unsupported wire format {fmt!r}")

        cycles = self._cycle_model(len(payload), len(data), stats)
        return NxDecompressResult(data=data, input_bytes=len(payload),
                                  cycles=cycles, stats=stats,
                                  clock_ghz=self.params.clock_ghz)

    def _restat(self, body: bytes) -> InflateStats:
        _data, stats, _bits = inflate_with_stats(body)
        return stats

    def _cycle_model(self, in_bytes: int, out_bytes: int,
                     stats: InflateStats) -> int:
        """Compose front-end, copy-engine and table-build cycle costs."""
        front_end = -(-in_bytes * 8 // self.decode_bits_per_cycle)
        copy = -(-out_bytes // self.params.decomp_bytes_per_cycle)
        tables = (self.params.decomp_dht_setup_cycles
                  * sum(1 for b in stats.blocks if b == BTYPE_DYNAMIC))
        return self.params.pipeline_fill_cycles + max(front_end, copy) + tables
