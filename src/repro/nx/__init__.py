"""The accelerator model: the paper's primary contribution.

Behavioural + cycle-approximate model of the POWER9 NX-GZIP and z15
Integrated-Accelerator-for-zEDC compression engines: the banked-hash
match pipeline, the DHT generator, the job engine with CRB/CSB/DDE
semantics, and the chip-level accelerator behind the VAS switchboard.
"""

from .accelerator import CompletedJob, NxAccelerator
from .compressor import CycleBreakdown, NxCompressor, NxCompressResult
from .decompressor import NxDecompressor, NxDecompressResult
from .dht import DhtStrategy, canned_dht, canned_names, select_canned
from .engine import EngineCounters, JobOutcome, NxEngine
from .params import (
    MACHINES,
    POWER9,
    Z15,
    EngineParams,
    MachineParams,
    Topology,
    get_machine,
    z15_max_config,
)
from .pipeline import NxMatchPipeline, ScanResult
from .selftest import SelfTestReport, run_selftest
from .z15 import (
    ConditionCode,
    Dfltcc,
    DfltccFunction,
    ParameterBlock,
    dfltcc_compress,
    dfltcc_expand,
)

__all__ = [
    "NxAccelerator",
    "CompletedJob",
    "NxCompressor",
    "NxCompressResult",
    "CycleBreakdown",
    "NxDecompressor",
    "NxDecompressResult",
    "DhtStrategy",
    "canned_dht",
    "canned_names",
    "select_canned",
    "NxEngine",
    "JobOutcome",
    "EngineCounters",
    "NxMatchPipeline",
    "ScanResult",
    "EngineParams",
    "MachineParams",
    "Topology",
    "MACHINES",
    "POWER9",
    "Z15",
    "get_machine",
    "z15_max_config",
    "Dfltcc",
    "DfltccFunction",
    "ConditionCode",
    "ParameterBlock",
    "dfltcc_compress",
    "dfltcc_expand",
    "run_selftest",
    "SelfTestReport",
]
